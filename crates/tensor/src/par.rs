//! Minimal data-parallel helpers built on `crossbeam` scoped threads.
//!
//! The workspace needs exactly two parallel patterns: "run this closure for
//! every index" (dataset synthesis, per-sample feature extraction) and "give
//! each thread a disjoint chunk of an output buffer" (batched conv / matmul).
//! Both are implemented here without a thread-pool dependency; threads are
//! scoped per call, which is cheap relative to the workloads involved.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Returns the worker count used by [`parallel_for`] and
/// [`parallel_zip_chunks`]: available parallelism capped at 8.
///
/// Overridable with the `THNT_THREADS` environment variable (values < 1 are
/// clamped to 1). The value is resolved once and cached for the process
/// lifetime — the hot kernels call this on every parallel dispatch, and an
/// environment read per matmul is measurable.
pub fn num_threads() -> usize {
    static NUM_THREADS: OnceLock<usize> = OnceLock::new();
    *NUM_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("THNT_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    })
}

/// Runs `f(i)` for every `i in 0..n`, distributing indices across threads via
/// an atomic work counter.
///
/// The closure must be `Sync` because it is shared by all workers. Indices are
/// claimed dynamically, so uneven per-index costs balance automatically.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use thnt_tensor::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(100, |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    })
    .expect("parallel_for worker panicked");
}

/// Splits `out` into contiguous chunks whose lengths are multiples of
/// `row_len`, and calls `f(first_row_index, chunk)` for each chunk on its own
/// thread.
///
/// This is the safe way to let multiple threads write disjoint regions of one
/// output tensor (e.g. rows of a matmul result, samples of a batch).
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `out.len()`.
pub fn parallel_zip_chunks<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "row_len must divide the buffer length");
    let rows = out.len() / row_len;
    let workers = num_threads().min(rows.max(1));
    if workers <= 1 || rows <= 1 {
        f(0, out);
        return;
    }
    let rows_per = rows.div_ceil(workers);
    crossbeam::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = row0;
            let func = &f;
            scope.spawn(move |_| func(start, head));
            row0 += take / row_len;
            rest = tail;
        }
    })
    .expect("parallel_zip_chunks worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_handles_zero_and_one() {
        parallel_for(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        parallel_for(1, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.into_inner(), 1);
    }

    #[test]
    fn chunks_cover_buffer_with_correct_offsets() {
        let mut buf = vec![0.0f32; 12 * 5];
        parallel_zip_chunks(&mut buf, 5, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(5).enumerate() {
                row.fill((row0 + r) as f32);
            }
        });
        for (r, row) in buf.chunks(5).enumerate() {
            assert!(row.iter().all(|&x| x == r as f32), "row {r} wrong: {row:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn chunks_validate_row_len() {
        let mut buf = vec![0.0f32; 7];
        parallel_zip_chunks(&mut buf, 2, |_, _| {});
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
