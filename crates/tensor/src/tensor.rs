//! The dense row-major `f32` tensor type.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::shape::Shape;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single data currency of the THNT workspace: activations,
/// weights, gradients, MFCC feature maps, and quantizer calibration buffers
/// are all `Tensor`s. The type is intentionally minimal — contiguous storage
/// only, no lazy views — so kernels stay easy to audit.
///
/// # Example
///
/// ```
/// use thnt_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self { data: vec![0.0; shape.numel()], shape }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self { data: vec![value; shape.numel()], shape }
    }

    /// Creates a tensor that owns `data`, interpreted with shape `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied by
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.numel()
        );
        Self { data, shape }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the underlying data as a flat slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable flat slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at the multi-dimensional index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Sets the element at the multi-dimensional index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.shape.flat_index(idx);
        self.data[flat] = value;
    }

    /// Returns a copy reshaped to `dims` (same number of elements).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {shape}",
            self.numel()
        );
        Tensor { data: self.data.clone(), shape }
    }

    /// Reinterprets the tensor in place with a new shape (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape element count mismatch");
        self.shape = shape;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise `self + alpha * other`, in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape.same_as(&other.shape),
            "axpy shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the minimum element (`f32::INFINITY` for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the maximum element (`f32::NEG_INFINITY` for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the index of the maximum element.
    ///
    /// Ties resolve to the first occurrence.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Returns the L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the number of elements with absolute value above `threshold`.
    pub fn count_above(&self, threshold: f32) -> usize {
        self.data.iter().filter(|x| x.abs() > threshold).count()
    }

    /// Returns a row of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a 2-D tensor");
        let cols = self.shape.dim(1);
        let start = row * cols;
        &self.data[start..start + cols]
    }

    /// Returns a mutable row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.shape.dim(1);
        let start = row * cols;
        &mut self.data[start..start + cols]
    }

    /// Returns the transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose() requires a 2-D tensor");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[cols, rows]);
        for i in 0..rows {
            for j in 0..cols {
                out.data[j * rows + i] = self.data[i * cols + j];
            }
        }
        out
    }

    /// Extracts sample `n` from a batched tensor (axis 0), dropping that axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank 0 or `n` is out of bounds.
    pub fn slice_batch(&self, n: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "slice_batch() requires rank >= 1");
        let batch = self.shape.dim(0);
        assert!(n < batch, "batch index {n} out of bounds (batch {batch})");
        let per = self.numel() / batch.max(1);
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        Tensor::from_vec(self.data[n * per..(n + 1) * per].to_vec(), &rest)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, ... {:.4}], mean={:.4})",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.mean()
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        assert!(self.shape.same_as(&rhs.shape), "add shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        assert!(self.shape.same_as(&rhs.shape), "sub shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect();
        Tensor { data, shape: self.shape.clone() }
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise (Hadamard) product — the `⊙` of the Strassen SPN.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        assert!(self.shape.same_as(&rhs.shape), "mul shape mismatch");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a * b).collect();
        Tensor { data, shape: self.shape.clone() }
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor with zero elements.
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * &b).data(), &[3.0, 10.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_ties_resolve_first() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0], &[3]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.transpose().data(), t.data());
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_validates_numel() {
        Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn slice_batch_extracts_sample() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let s = t.slice_batch(1);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.data(), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn count_above_threshold() {
        let t = Tensor::from_vec(vec![-2.0, 0.0, 0.5, 3.0], &[4]);
        assert_eq!(t.count_above(1.0), 2);
        assert_eq!(t.count_above(0.0), 3);
    }
}
