//! Weight initialisers.
//!
//! All initialisers take an explicit `SmallRng` so every model in the
//! workspace is reproducible from a single seed.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::tensor::Tensor;

/// Kaiming/He normal initialisation: `N(0, sqrt(2 / fan_in))`.
///
/// Used for convolution and fully-connected weights feeding ReLU units.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut SmallRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    gaussian(dims, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Used for tanh/sigmoid-activated parameters (Bonsai node matrices, RNN
/// recurrences).
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut SmallRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sum must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(dims, -a, a, rng)
}

/// Uniform initialisation over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_init(dims: &[usize], lo: f32, hi: f32, rng: &mut SmallRng) -> Tensor {
    assert!(lo < hi, "uniform_init requires lo < hi");
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), dims)
}

/// Gaussian initialisation with the given mean and standard deviation
/// (Box–Muller; no external distribution crate needed).
pub fn gaussian(dims: &[usize], mean: f32, std: f32, rng: &mut SmallRng) -> Tensor {
    let n: usize = dims.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_has_expected_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = kaiming_normal(&[64, 64], 64, &mut rng);
        let std = (2.0f32 / 64.0).sqrt();
        let sample_std = (t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32).sqrt();
        assert!((sample_std - std).abs() < 0.05 * std + 0.01, "{sample_std} vs {std}");
        assert!(t.mean().abs() < 0.02);
    }

    #[test]
    fn xavier_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = (6.0f32 / 128.0).sqrt();
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        assert!(t.max() < a && t.min() >= -a);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = SmallRng::seed_from_u64(42);
        let mut r2 = SmallRng::seed_from_u64(42);
        let a = gaussian(&[10], 0.0, 1.0, &mut r1);
        let b = gaussian(&[10], 0.0, 1.0, &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn gaussian_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = gaussian(&[10_000], 5.0, 0.5, &mut rng);
        assert!((t.mean() - 5.0).abs() < 0.05);
    }
}
