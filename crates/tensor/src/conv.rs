//! Convolution kernels: `im2col`/`col2im` and direct depthwise convolution.
//!
//! Layout conventions (row-major throughout):
//!
//! * activations: `[batch, channels, height, width]` (NCHW)
//! * standard conv weights: `[out_ch, in_ch, kh, kw]`
//! * depthwise conv weights: `[channels, multiplier, kh, kw]`
//!
//! Standard convolutions lower to a matmul over an `im2col` buffer whose rows
//! are ordered `[in_ch][kh][kw]` — exactly matching the flattened weight
//! layout, so `conv = W[oc, ic·kh·kw] · col[ic·kh·kw, oh·ow]`. This is also
//! the matrix-multiplication view that StrassenNets "strassenifies".

use crate::matmul::matmul_into;
use crate::par::parallel_for;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution: kernel size, stride and (possibly
/// asymmetric, TensorFlow-`SAME`-style) padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Padding rows added above the input.
    pub pad_top: usize,
    /// Padding rows added below the input.
    pub pad_bottom: usize,
    /// Padding columns added left of the input.
    pub pad_left: usize,
    /// Padding columns added right of the input.
    pub pad_right: usize,
}

impl Conv2dSpec {
    /// A valid-padding (no padding) convolution.
    pub fn valid(kh: usize, kw: usize, stride_h: usize, stride_w: usize) -> Self {
        Self { kh, kw, stride_h, stride_w, pad_top: 0, pad_bottom: 0, pad_left: 0, pad_right: 0 }
    }

    /// TensorFlow-style `SAME` padding for the given input size: the output is
    /// `ceil(in / stride)` and any odd padding surplus goes to the
    /// bottom/right, matching the DS-CNN reference implementation.
    pub fn same(
        in_h: usize,
        in_w: usize,
        kh: usize,
        kw: usize,
        stride_h: usize,
        stride_w: usize,
    ) -> Self {
        let out_h = in_h.div_ceil(stride_h);
        let out_w = in_w.div_ceil(stride_w);
        let pad_h = ((out_h - 1) * stride_h + kh).saturating_sub(in_h);
        let pad_w = ((out_w - 1) * stride_w + kw).saturating_sub(in_w);
        Self {
            kh,
            kw,
            stride_h,
            stride_w,
            pad_top: pad_h / 2,
            pad_bottom: pad_h - pad_h / 2,
            pad_left: pad_w / 2,
            pad_right: pad_w - pad_w / 2,
        }
    }

    /// Output spatial size for an `in_h × in_w` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_dims(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        let ph = in_h + self.pad_top + self.pad_bottom;
        let pw = in_w + self.pad_left + self.pad_right;
        assert!(ph >= self.kh && pw >= self.kw, "kernel larger than padded input");
        ((ph - self.kh) / self.stride_h + 1, (pw - self.kw) / self.stride_w + 1)
    }
}

/// Lowers one sample `[c, h, w]` to a column matrix `[c·kh·kw, oh·ow]`.
///
/// Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Panics if `input` is not 3-D.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    assert_eq!(input.shape().rank(), 3, "im2col expects [c, h, w]");
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (oh, ow) = spec.out_dims(h, w);
    let rows = c * spec.kh * spec.kw;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = input.data();
    let dst = out.data_mut();
    for ic in 0..c {
        for ki in 0..spec.kh {
            for kj in 0..spec.kw {
                let r = (ic * spec.kh + ki) * spec.kw + kj;
                let drow = &mut dst[r * cols..(r + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride_h + ki) as isize - spec.pad_top as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = (ic * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride_w + kj) as isize - spec.pad_left as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        drow[oy * ow + ox] = src[src_row + ix as usize];
                    }
                }
            }
        }
    }
    out
}

/// Scatter-adds a column matrix `[c·kh·kw, oh·ow]` back into a `[c, h, w]`
/// image — the adjoint of [`im2col`], used for input gradients.
///
/// # Panics
///
/// Panics if `cols` does not have the shape implied by `spec` and `(c, h, w)`.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, c: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.out_dims(h, w);
    assert_eq!(cols.dims(), &[c * spec.kh * spec.kw, oh * ow], "col2im shape mismatch");
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = cols.data();
    let dst = out.data_mut();
    let ncols = oh * ow;
    for ic in 0..c {
        for ki in 0..spec.kh {
            for kj in 0..spec.kw {
                let r = (ic * spec.kh + ki) * spec.kw + kj;
                let srow = &src[r * ncols..(r + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride_h + ki) as isize - spec.pad_top as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = (ic * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride_w + kj) as isize - spec.pad_left as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_row + ix as usize] += srow[oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// Standard 2-D convolution: `[n, c, h, w] * [oc, c, kh, kw] → [n, oc, oh, ow]`.
///
/// Samples are processed in parallel; each lowers to `W · im2col(x)`.
///
/// # Panics
///
/// Panics on rank or channel mismatches, or if `bias` (when provided) does not
/// have `oc` elements.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: &Conv2dSpec) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "conv2d input must be [n, c, h, w]");
    assert_eq!(weight.shape().rank(), 4, "conv2d weight must be [oc, ic, kh, kw]");
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (oc, ic) = (weight.dims()[0], weight.dims()[1]);
    assert_eq!(ic, c, "conv2d channel mismatch: input {c}, weight {ic}");
    assert_eq!(weight.dims()[2], spec.kh, "weight kernel height mismatch");
    assert_eq!(weight.dims()[3], spec.kw, "weight kernel width mismatch");
    if let Some(b) = bias {
        assert_eq!(b.numel(), oc, "bias must have {oc} elements");
    }
    let (oh, ow) = spec.out_dims(h, w);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let k = c * spec.kh * spec.kw;
    let cols_len = oh * ow;

    let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
    parallel_for(n, |s| {
        let sample = input.slice_batch(s);
        let cols = im2col(&sample, spec);
        // SAFETY: each iteration writes only its own disjoint [s] slice.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.get().add(s * oc * cols_len), oc * cols_len)
        };
        matmul_into(weight.data(), cols.data(), dst, oc, k, cols_len);
        if let Some(b) = bias {
            for ch in 0..oc {
                let bv = b.data()[ch];
                for v in &mut dst[ch * cols_len..(ch + 1) * cols_len] {
                    *v += bv;
                }
            }
        }
    });
    out
}

/// Depthwise 2-D convolution:
/// `[n, c, h, w] * [c, m, kh, kw] → [n, c·m, oh, ow]` where output channel
/// `c·m + j` convolves input channel `c` with its `j`-th filter.
///
/// # Panics
///
/// Panics on rank or channel mismatches, or if `bias` (when provided) does not
/// have `c·m` elements.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "depthwise input must be [n, c, h, w]");
    assert_eq!(weight.shape().rank(), 4, "depthwise weight must be [c, m, kh, kw]");
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (wc, m) = (weight.dims()[0], weight.dims()[1]);
    assert_eq!(wc, c, "depthwise channel mismatch: input {c}, weight {wc}");
    assert_eq!(weight.dims()[2], spec.kh, "weight kernel height mismatch");
    assert_eq!(weight.dims()[3], spec.kw, "weight kernel width mismatch");
    let oc = c * m;
    if let Some(b) = bias {
        assert_eq!(b.numel(), oc, "bias must have {oc} elements");
    }
    let (oh, ow) = spec.out_dims(h, w);
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let plane = oh * ow;

    let out_ptr = SendPtr(out.data_mut().as_mut_ptr());
    parallel_for(n, |s| {
        // SAFETY: each iteration writes only its own disjoint sample slice.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.get().add(s * oc * plane), oc * plane)
        };
        let src = &input.data()[s * c * h * w..(s + 1) * c * h * w];
        for ch in 0..c {
            let img = &src[ch * h * w..(ch + 1) * h * w];
            for j in 0..m {
                let fil = &weight.data()
                    [(ch * m + j) * spec.kh * spec.kw..(ch * m + j + 1) * spec.kh * spec.kw];
                let bv = bias.map(|b| b.data()[ch * m + j]).unwrap_or(0.0);
                let dplane = &mut dst[(ch * m + j) * plane..(ch * m + j + 1) * plane];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bv;
                        for ki in 0..spec.kh {
                            let iy = (oy * spec.stride_h + ki) as isize - spec.pad_top as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kj in 0..spec.kw {
                                let ix =
                                    (ox * spec.stride_w + kj) as isize - spec.pad_left as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += fil[ki * spec.kw + kj] * img[iy as usize * w + ix as usize];
                            }
                        }
                        dplane[oy * ow + ox] = acc;
                    }
                }
            }
        }
    });
    out
}

/// Raw pointer wrapper so disjoint per-sample writes can cross the
/// `crossbeam` scope boundary. The `get` accessor (rather than direct field
/// access) ensures 2021-edition closures capture the whole wrapper, keeping
/// its `Sync` impl in effect.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(), dims)
    }

    /// Direct (quadruple-loop) convolution reference.
    fn conv2d_reference(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
        let oc = weight.dims()[0];
        let (oh, ow) = spec.out_dims(h, w);
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b.data()[o]).unwrap_or(0.0);
                        for ic in 0..c {
                            for ki in 0..spec.kh {
                                for kj in 0..spec.kw {
                                    let iy =
                                        (oy * spec.stride_h + ki) as isize - spec.pad_top as isize;
                                    let ix =
                                        (ox * spec.stride_w + kj) as isize - spec.pad_left as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[s, ic, iy as usize, ix as usize])
                                        * weight.at(&[o, ic, ki, kj]);
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn same_padding_matches_tensorflow_geometry() {
        // The DS-CNN first layer: 49x10 input, 10x4 kernel, stride 2x2 -> 25x5.
        let spec = Conv2dSpec::same(49, 10, 10, 4, 2, 2);
        assert_eq!(spec.out_dims(49, 10), (25, 5));
        assert_eq!(spec.pad_top + spec.pad_bottom, 9);
        assert!(spec.pad_bottom >= spec.pad_top, "surplus goes to the bottom");
    }

    #[test]
    fn conv2d_matches_reference_valid() {
        let x = random(&[2, 3, 8, 7], 1);
        let w = random(&[4, 3, 3, 3], 2);
        let b = random(&[4], 3);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let got = conv2d(&x, &w, Some(&b), &spec);
        let want = conv2d_reference(&x, &w, Some(&b), &spec);
        assert_eq!(got.dims(), &[2, 4, 6, 5]);
        assert_close(got.data(), want.data(), 1e-5, 1e-5);
    }

    #[test]
    fn conv2d_matches_reference_same_strided() {
        let x = random(&[2, 1, 49, 10], 4);
        let w = random(&[8, 1, 10, 4], 5);
        let spec = Conv2dSpec::same(49, 10, 10, 4, 2, 2);
        let got = conv2d(&x, &w, None, &spec);
        let want = conv2d_reference(&x, &w, None, &spec);
        assert_eq!(got.dims(), &[2, 8, 25, 5]);
        assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn depthwise_matches_grouped_reference() {
        // A depthwise conv with multiplier 1 equals a standard conv whose
        // weight is block-diagonal over channels.
        let x = random(&[2, 3, 6, 6], 6);
        let dw = random(&[3, 1, 3, 3], 7);
        let spec = Conv2dSpec::same(6, 6, 3, 3, 1, 1);
        let got = depthwise_conv2d(&x, &dw, None, &spec);

        let mut full = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for ki in 0..3 {
                for kj in 0..3 {
                    full.set(&[c, c, ki, kj], dw.at(&[c, 0, ki, kj]));
                }
            }
        }
        let want = conv2d(&x, &full, None, &spec);
        assert_close(got.data(), want.data(), 1e-5, 1e-5);
    }

    #[test]
    fn depthwise_multiplier_two_shapes_and_values() {
        let x = random(&[1, 2, 5, 5], 8);
        let w = random(&[2, 2, 3, 3], 9);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let out = depthwise_conv2d(&x, &w, None, &spec);
        assert_eq!(out.dims(), &[1, 4, 3, 3]);
        // Output channel 3 = input channel 1 convolved with its filter 1.
        let mut acc = 0.0;
        for ki in 0..3 {
            for kj in 0..3 {
                acc += x.at(&[0, 1, ki, kj]) * w.at(&[1, 1, ki, kj]);
            }
        }
        assert!((out.at(&[0, 3, 0, 0]) - acc).abs() < 1e-5);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let spec = Conv2dSpec::same(5, 4, 3, 3, 1, 1);
        let x = random(&[2, 5, 4], 10);
        let cols = im2col(&x, &spec);
        let y = random(cols.dims(), 11);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 5, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_with_bias_adds_per_channel() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![0.5, -1.5], &[2]);
        let out = conv2d(&x, &w, Some(&b), &Conv2dSpec::valid(1, 1, 1, 1));
        assert!(out.data()[..9].iter().all(|&v| v == 0.5));
        assert!(out.data()[9..].iter().all(|&v| v == -1.5));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv2d_validates_channels() {
        conv2d(
            &Tensor::zeros(&[1, 3, 4, 4]),
            &Tensor::zeros(&[2, 2, 3, 3]),
            None,
            &Conv2dSpec::valid(3, 3, 1, 1),
        );
    }
}
