//! Pooling kernels over NCHW activations.

use crate::tensor::Tensor;

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// This is the reduction between the DS-CNN conv stack and its classifier
/// (and between the hybrid network's conv front-end and the Bonsai tree).
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "global_avg_pool expects [n, c, h, w]");
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let plane = h * w;
    let mut out = Tensor::zeros(&[n, c]);
    let src = input.data();
    let dst = out.data_mut();
    for s in 0..n {
        for ch in 0..c {
            let start = (s * c + ch) * plane;
            let sum: f32 = src[start..start + plane].iter().sum();
            dst[s * c + ch] = sum / plane as f32;
        }
    }
    out
}

/// Average pooling with a `ph × pw` window and matching stride (non-overlapping).
///
/// Trailing rows/columns that do not fill a window are dropped, matching
/// TensorFlow `VALID` pooling.
///
/// # Panics
///
/// Panics if the input is not 4-D or the window is empty.
pub fn avg_pool2d(input: &Tensor, ph: usize, pw: usize) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "avg_pool2d expects [n, c, h, w]");
    assert!(ph > 0 && pw > 0, "pool window must be non-empty");
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (oh, ow) = (h / ph, w / pw);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for s in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..ph {
                        for dx in 0..pw {
                            acc += input.at(&[s, ch, oy * ph + dy, ox * pw + dx]);
                        }
                    }
                    out.set(&[s, ch, oy, ox], acc / (ph * pw) as f32);
                }
            }
        }
    }
    out
}

/// Max pooling with a `ph × pw` window and matching stride; also returns the
/// flat argmax indices (into each sample's `[c, h, w]` block) for backprop.
///
/// # Panics
///
/// Panics if the input is not 4-D or the window is empty.
pub fn max_pool2d(input: &Tensor, ph: usize, pw: usize) -> (Tensor, Vec<usize>) {
    assert_eq!(input.shape().rank(), 4, "max_pool2d expects [n, c, h, w]");
    assert!(ph > 0 && pw > 0, "pool window must be non-empty");
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let (oh, ow) = (h / ph, w / pw);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    for s in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..ph {
                        for dx in 0..pw {
                            let (iy, ix) = (oy * ph + dy, ox * pw + dx);
                            let v = input.at(&[s, ch, iy, ix]);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + iy) * w + ix;
                            }
                        }
                    }
                    out.set(&[s, ch, oy, ox], best);
                    arg[((s * c + ch) * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_averages_planes() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let out = global_avg_pool(&x);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[1.5, 5.5]);
    }

    #[test]
    fn avg_pool_halves_dimensions() {
        let x = Tensor::ones(&[2, 3, 4, 6]);
        let out = avg_pool2d(&x, 2, 2);
        assert_eq!(out.dims(), &[2, 3, 2, 3]);
        assert!(out.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn avg_pool_drops_ragged_edge() {
        let x = Tensor::ones(&[1, 1, 5, 5]);
        let out = avg_pool2d(&x, 2, 2);
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn max_pool_tracks_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], &[1, 2, 2, 2]);
        let (out, arg) = max_pool2d(&x, 2, 2);
        assert_eq!(out.dims(), &[1, 2, 1, 1]);
        assert_eq!(out.data(), &[4.0, 8.0]);
        assert_eq!(arg, vec![3, 4]);
    }

    #[test]
    fn global_pool_equals_full_window_avg_pool() {
        let x = Tensor::from_vec((0..24).map(|v| (v as f32).sin()).collect(), &[2, 3, 2, 2]);
        let g = global_avg_pool(&x);
        let a = avg_pool2d(&x, 2, 2);
        for s in 0..2 {
            for c in 0..3 {
                assert!((g.at(&[s, c]) - a.at(&[s, c, 0, 0])).abs() < 1e-6);
            }
        }
    }
}
