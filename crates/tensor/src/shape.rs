//! Shape and index arithmetic for row-major tensors.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// Shapes are immutable once constructed; all tensors in this workspace are
/// contiguous row-major, so strides are derived rather than stored.
///
/// # Example
///
/// ```
/// use thnt_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// Zero-sized dimensions are allowed (they yield `numel() == 0`), but an
    /// empty dimension list denotes a scalar with `numel() == 1`.
    pub fn new(dims: &[usize]) -> Self {
        Self { dims: dims.to_vec() }
    }

    /// Returns the dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Returns row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank()` or any coordinate is out of bounds.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut flat = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                idx[axis] < self.dims[axis],
                "index {} out of bounds for axis {axis} with size {}",
                idx[axis],
                self.dims[axis]
            );
            flat += idx[axis] * stride;
            stride *= self.dims[axis];
        }
        flat
    }

    /// Returns `true` when both shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn zero_dim_shape_has_no_elements() {
        let s = Shape::new(&[3, 0, 5]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = [false; 24];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let f = s.flat_index(&[i, j, k]);
                    assert!(!seen[f], "duplicate flat index {f}");
                    seen[f] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds_checked() {
        Shape::new(&[2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn flat_index_rank_checked() {
        Shape::new(&[2, 2]).flat_index(&[1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[49, 10]).to_string(), "[49x10]");
    }
}
