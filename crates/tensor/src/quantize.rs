//! Fake (simulated) fixed-point quantization.
//!
//! Post-training quantization experiments evaluate accuracy by running the
//! model in `f32` while snapping tensors to the representable grid of a
//! `b`-bit symmetric fixed-point format — exactly what deployment on an
//! integer-only microcontroller would compute, without an integer kernel
//! implementation.

use crate::tensor::Tensor;

/// Returns the symmetric quantization scale for `bits`-bit signed storage of
/// values with the given maximum magnitude (`max_abs / (2^(bits−1) − 1)`).
///
/// A zero `max_abs` yields scale 1.0 so all-zero tensors round-trip exactly.
///
/// # Panics
///
/// Panics unless `2 <= bits <= 16`.
pub fn symmetric_scale(max_abs: f32, bits: u8) -> f32 {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
    let levels = ((1i32 << (bits - 1)) - 1) as f32;
    if max_abs <= 0.0 {
        1.0
    } else {
        max_abs / levels
    }
}

/// Snaps every element of `t` to the `bits`-bit symmetric grid implied by
/// the tensor's own max magnitude (dynamic per-tensor calibration).
pub fn fake_quantize(t: &Tensor, bits: u8) -> Tensor {
    let scale = symmetric_scale(t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs())), bits);
    fake_quantize_with_scale(t, bits, scale)
}

/// Snaps every element of `t` to the `bits`-bit grid with an explicit scale
/// (for calibrated ranges).
///
/// # Panics
///
/// Panics unless `2 <= bits <= 16` and `scale > 0`.
pub fn fake_quantize_with_scale(t: &Tensor, bits: u8, scale: f32) -> Tensor {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
    assert!(scale > 0.0, "scale must be positive");
    let limit = ((1i32 << (bits - 1)) - 1) as f32;
    t.map(|v| {
        let q = (v / scale).round().clamp(-limit - 1.0, limit);
        q * scale
    })
}

/// Snaps `t` to the `bits`-bit grid using an **MSE-optimal clip range**:
/// candidate clips `c = f·max|t|` for `f ∈ {1.0, 0.9, …, 0.3}` are searched
/// and the one minimising the squared quantization error is used (values
/// beyond the clip saturate). This is the "optimal min/max range for each
/// layer" selection the paper describes (following Qiu et al.).
pub fn fake_quantize_optimal(t: &Tensor, bits: u8) -> Tensor {
    let max_abs = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return t.clone();
    }
    let mut best: Option<(f32, Tensor)> = None;
    for step in 0..8 {
        let clip = max_abs * (1.0 - 0.1 * step as f32);
        let scale = symmetric_scale(clip, bits);
        let q = fake_quantize_with_scale(t, bits, scale);
        let mse: f32 = t.data().iter().zip(q.data()).map(|(a, b)| (a - b).powi(2)).sum();
        if best.as_ref().map(|(m, _)| mse < *m).unwrap_or(true) {
            best = Some((mse, q));
        }
    }
    best.expect("at least one candidate").1
}

/// Root-mean-square quantization error of `bits`-bit fake quantization.
pub fn quant_rmse(t: &Tensor, bits: u8) -> f32 {
    if t.numel() == 0 {
        return 0.0;
    }
    let q = fake_quantize(t, bits);
    let mse: f32 =
        t.data().iter().zip(q.data()).map(|(a, b)| (a - b).powi(2)).sum::<f32>() / t.numel() as f32;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_tensor_roundtrips_exactly() {
        let t = Tensor::zeros(&[5]);
        assert_eq!(fake_quantize(&t, 8).data(), t.data());
    }

    #[test]
    fn grid_values_are_multiples_of_scale() {
        let t = Tensor::from_vec(vec![0.11, -0.5, 0.73, 1.0], &[4]);
        let scale = symmetric_scale(1.0, 8);
        let q = fake_quantize(&t, 8);
        for &v in q.data() {
            let steps = v / scale;
            assert!((steps - steps.round()).abs() < 1e-4, "{v} not on grid");
        }
    }

    #[test]
    fn max_value_is_representable() {
        let t = Tensor::from_vec(vec![-3.0, 3.0], &[2]);
        let q = fake_quantize(&t, 8);
        assert!((q.data()[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let t = crate::gaussian(&[1000], 0.0, 1.0, &mut rng);
        let e8 = quant_rmse(&t, 8);
        let e4 = quant_rmse(&t, 4);
        let e16 = quant_rmse(&t, 16);
        assert!(e16 < e8 && e8 < e4, "{e16} < {e8} < {e4} violated");
    }

    #[test]
    fn eight_bit_error_bound() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let t = crate::gaussian(&[1000], 0.0, 1.0, &mut rng);
        let max_abs = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        // RMSE of rounding is at most scale/2 (uniform bound scale/sqrt(12)).
        let scale = symmetric_scale(max_abs, 8);
        assert!(quant_rmse(&t, 8) <= scale);
    }

    #[test]
    fn idempotent() {
        let t = Tensor::from_vec(vec![0.3, -0.9, 0.05], &[3]);
        let q1 = fake_quantize(&t, 8);
        let q2 = fake_quantize(&q1, 8);
        crate::assert_close(q1.data(), q2.data(), 1e-6, 1e-5);
    }

    #[test]
    fn optimal_clip_never_worse_than_max_abs() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        // By construction the search includes the max-abs candidate, so the
        // optimal clip can never lose — check across distributions and bits.
        for heavy in [false, true] {
            let mut t = crate::gaussian(&[800], 0.0, 1.0, &mut rng);
            if heavy {
                t.map_in_place(|v| v * v * v); // heavy-tailed
            }
            for bits in [4u8, 8] {
                let mse = |q: &Tensor| -> f32 {
                    t.data().iter().zip(q.data()).map(|(a, b)| (a - b).powi(2)).sum()
                };
                let naive = mse(&fake_quantize(&t, bits));
                let optimal = mse(&fake_quantize_optimal(&t, bits));
                assert!(optimal <= naive + 1e-6, "{optimal} > {naive} (bits {bits})");
            }
        }
    }

    #[test]
    fn optimal_clip_strictly_wins_on_heavy_tails_at_low_bits() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        // Cubed gaussian: many moderate outliers stretch the max-abs range;
        // at 4 bits the bulk resolution gain outweighs saturation error.
        let mut t = crate::gaussian(&[2000], 0.0, 1.0, &mut rng);
        t.map_in_place(|v| v * v * v);
        let mse = |q: &Tensor| -> f32 {
            t.data().iter().zip(q.data()).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let naive = mse(&fake_quantize(&t, 4));
        let optimal = mse(&fake_quantize_optimal(&t, 4));
        assert!(optimal < 0.95 * naive, "{optimal} not < 0.95x{naive}");
    }

    #[test]
    fn optimal_clip_handles_zero_tensor() {
        let t = Tensor::zeros(&[4]);
        assert_eq!(fake_quantize_optimal(&t, 8).data(), t.data());
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_invalid_bits() {
        fake_quantize(&Tensor::ones(&[1]), 40);
    }
}
