//! Blocked matrix multiplication kernels.
//!
//! Four variants cover every use in forward and backward passes without
//! materialising transposes:
//!
//! * [`matmul`]    — `C = A · B`
//! * [`matmul_tn`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_nt`] — `C = A · Bᵀ` (input gradients)
//! * [`matvec`]    — `y = A · x`
//!
//! The inner kernel uses an `i-k-j` loop order with a cache block over `k`,
//! which keeps the hot loop a contiguous AXPY over rows of `B`. Large outputs
//! are split across threads by row via [`crate::par::parallel_zip_chunks`].

use crate::par::parallel_zip_chunks;
use crate::tensor::Tensor;

/// Cache block along the reduction dimension, in elements.
const K_BLOCK: usize = 256;

/// Below this output element count the kernels stay single-threaded to avoid
/// thread-spawn overhead dominating tiny products.
const PAR_THRESHOLD: usize = 64 * 64;

fn check_2d(t: &Tensor, name: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{name} must be 2-D, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

/// Computes `C = A · B` for 2-D tensors.
///
/// # Panics
///
/// Panics if either operand is not 2-D or inner dimensions differ.
///
/// # Example
///
/// ```
/// use thnt_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = check_2d(a, "a");
    let (kb, n) = check_2d(b, "b");
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), c.data_mut(), m, ka, n);
    c
}

/// Computes `C = Aᵀ · B` where `A` is `k×m` and `B` is `k×n`.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the leading dimensions differ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = check_2d(a, "a");
    let (kb, n) = check_2d(b, "b");
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    // cᵢⱼ = Σ_k a[k,i]·b[k,j]; accumulate row k of B into row i of C.
    for k in 0..ka {
        let brow = &bd[k * n..(k + 1) * n];
        for i in 0..m {
            let av = ad[k * m + i];
            if av == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// Computes `C = A · Bᵀ` where `A` is `m×k` and `B` is `n×k`.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the trailing dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = check_2d(a, "a");
    let (n, kb) = check_2d(b, "b");
    assert_eq!(ka, kb, "matmul_nt trailing dimension mismatch: {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let crow = &mut cd[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            crow[j] = acc;
        }
    }
    c
}

/// Computes `y = A · x` for a 2-D `A` and 1-D `x`.
///
/// # Panics
///
/// Panics if `A` is not 2-D, `x` is not 1-D, or dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = check_2d(a, "a");
    assert_eq!(x.shape().rank(), 1, "x must be 1-D");
    assert_eq!(x.numel(), k, "matvec dimension mismatch");
    let mut y = Tensor::zeros(&[m]);
    let (ad, xd, yd) = (a.data(), x.data(), y.data_mut());
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (av, xv) in row.iter().zip(xd.iter()) {
            acc += av * xv;
        }
        yd[i] = acc;
    }
    y
}

/// Writes `C = A·B` into a raw output slice; shared by [`matmul`] and the
/// convolution kernels so im2col buffers avoid an extra copy.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer length mismatch");
    assert_eq!(b.len(), k * n, "B buffer length mismatch");
    assert_eq!(c.len(), m * n, "C buffer length mismatch");
    c.fill(0.0);
    if m * n >= PAR_THRESHOLD && m > 1 {
        parallel_zip_chunks(c, n, |row0, cchunk| {
            let rows = cchunk.len() / n;
            matmul_block(&a[row0 * k..(row0 + rows) * k], b, cchunk, rows, k, n);
        });
    } else {
        matmul_block(a, b, c, m, k, n);
    }
}

/// Single-threaded blocked kernel: `C[m×n] += A[m×k] · B[k×n]` (C pre-zeroed).
fn matmul_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for k0 in (0..k).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(k);
        for i in 0..m {
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// Naïve triple-loop reference used by tests and property checks.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = check_2d(a, "a");
    let (k2, n) = check_2d(b, "b");
    assert_eq!(k, k2, "reference matmul dimension mismatch");
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            c.data_mut()[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        let shape = crate::Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn matches_reference_small() {
        let a = random(&[7, 5], 1);
        let b = random(&[5, 9], 2);
        assert_close(matmul(&a, &b).data(), matmul_reference(&a, &b).data(), 1e-5, 1e-5);
    }

    #[test]
    fn matches_reference_large_parallel_path() {
        let a = random(&[70, 120], 3);
        let b = random(&[120, 90], 4);
        assert_close(matmul(&a, &b).data(), matmul_reference(&a, &b).data(), 1e-4, 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random(&[6, 6], 5);
        let c = matmul(&a, &Tensor::eye(6));
        assert_close(c.data(), a.data(), 1e-6, 0.0);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = random(&[8, 5], 6);
        let b = random(&[8, 7], 7);
        let expected = matmul(&a.transpose(), &b);
        assert_close(matmul_tn(&a, &b).data(), expected.data(), 1e-5, 1e-5);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = random(&[8, 5], 8);
        let b = random(&[7, 5], 9);
        let expected = matmul(&a, &b.transpose());
        assert_close(matmul_nt(&a, &b).data(), expected.data(), 1e-5, 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = random(&[6, 4], 10);
        let x = random(&[4], 11);
        let expected = matmul(&a, &x.reshape(&[4, 1]));
        assert_close(matvec(&a, &x).data(), expected.data(), 1e-5, 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn empty_matrices_work() {
        let c = matmul(&Tensor::zeros(&[0, 3]), &Tensor::zeros(&[3, 2]));
        assert_eq!(c.dims(), &[0, 2]);
        assert_eq!(c.numel(), 0);
    }
}
