//! Dense `f32` tensor kernels for the Ternary Hybrid Neural-Tree Network
//! (THNT) reproduction.
//!
//! This crate is the numeric substrate of the workspace: a compact row-major
//! [`Tensor`] type plus the handful of kernels every model in the paper needs —
//! blocked [`matmul`](crate::matmul::matmul), `im2col`-based convolutions,
//! depthwise convolutions, pooling, and a small batch-parallel helper built on
//! `crossbeam` scoped threads.
//!
//! Everything is deliberately simple: contiguous storage, no views with
//! arbitrary strides, no autograd (gradients live in `thnt-nn`). The kernels
//! are checked against naïve reference implementations in this crate's tests.
//!
//! # Example
//!
//! ```
//! use thnt_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod init;
pub mod matmul;
pub mod par;
pub mod pool;
pub mod quantize;
pub mod shape;
pub mod tensor;

pub use conv::{col2im, conv2d, depthwise_conv2d, im2col, Conv2dSpec};
pub use init::{gaussian, kaiming_normal, uniform_init, xavier_uniform};
pub use matmul::{matmul, matmul_nt, matmul_tn, matvec};
pub use par::{num_threads, parallel_for, parallel_zip_chunks};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};
pub use quantize::{
    fake_quantize, fake_quantize_optimal, fake_quantize_with_scale, quant_rmse, symmetric_scale,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Asserts that two floating-point slices are element-wise close.
///
/// Intended for tests; tolerance is `atol + rtol * |expected|` per element.
///
/// # Panics
///
/// Panics with a descriptive message if lengths differ or any element pair is
/// outside the tolerance.
pub fn assert_close(actual: &[f32], expected: &[f32], atol: f32, rtol: f32) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "length mismatch: {} vs {}",
        actual.len(),
        expected.len()
    );
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        let tol = atol + rtol * e.abs();
        assert!(
            (a - e).abs() <= tol,
            "element {i}: {a} vs {e} (|diff| = {} > tol {tol})",
            (a - e).abs()
        );
    }
}
