//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use thnt_tensor::matmul::matmul_reference;
use thnt_tensor::{matmul, matmul_nt, matmul_tn, Conv2dSpec, Shape, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matmul_matches_reference(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a = Tensor::from_vec((0..m*k).map(|_| rng.gen_range(-5.0..5.0)).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k*n).map(|_| rng.gen_range(-5.0..5.0)).collect(), &[k, n]);
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() <= 1e-3 + 1e-4 * y.abs());
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in tensor_strategy(4, 3), b in tensor_strategy(3, 5), c in tensor_strategy(3, 5)) {
        // A(B + C) == AB + AC
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-3 * y.abs());
        }
    }

    #[test]
    fn transpose_variants_agree(a in tensor_strategy(5, 4), b in tensor_strategy(5, 6)) {
        // matmul_tn(A, B) == Aᵀ·B
        let lhs = matmul_tn(&a, &b);
        let rhs = matmul(&a.transpose(), &b);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-3 * y.abs());
        }
        // matmul_nt(Aᵀ·ish...) check with compatible dims
        let lhs2 = matmul_nt(&a.transpose(), &b.transpose());
        let rhs2 = matmul(&a.transpose(), &b);
        for (x, y) in lhs2.data().iter().zip(rhs2.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-3 * y.abs());
        }
    }

    #[test]
    fn shape_flat_index_is_bijective(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims);
        let mut seen = vec![false; shape.numel()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let f = shape.flat_index(&idx);
            prop_assert!(!seen[f]);
            seen[f] = true;
            // odometer increment
            let mut axis = dims.len();
            loop {
                if axis == 0 { break; }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < dims[axis] { break; }
                idx[axis] = 0;
                if axis == 0 { break; }
            }
            if idx.iter().all(|&i| i == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conv_same_geometry_is_ceil_div(h in 4usize..30, w in 4usize..30, s in 1usize..3) {
        let spec = Conv2dSpec::same(h, w, 3, 3, s, s);
        let (oh, ow) = spec.out_dims(h, w);
        prop_assert_eq!(oh, h.div_ceil(s));
        prop_assert_eq!(ow, w.div_ceil(s));
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mk = |rng: &mut rand::rngs::SmallRng, dims: &[usize]| {
            let n: usize = dims.iter().product();
            Tensor::from_vec((0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(), dims)
        };
        let x1 = mk(&mut rng, &[1, 2, 6, 6]);
        let x2 = mk(&mut rng, &[1, 2, 6, 6]);
        let w = mk(&mut rng, &[3, 2, 3, 3]);
        let spec = Conv2dSpec::same(6, 6, 3, 3, 1, 1);
        let lhs = thnt_tensor::conv2d(&(&x1 + &x2), &w, None, &spec);
        let rhs = &thnt_tensor::conv2d(&x1, &w, None, &spec)
            + &thnt_tensor::conv2d(&x2, &w, None, &spec);
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() <= 1e-3 + 1e-3 * b.abs());
        }
    }
}
