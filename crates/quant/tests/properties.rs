//! Property-based tests for quantization invariants.

use proptest::prelude::*;
use thnt_quant::{activation_footprint_bytes, ActivationProfile, MemoryFootprint};
use thnt_tensor::{fake_quantize, quant_rmse, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fake_quant_error_bounded_by_step(
        values in proptest::collection::vec(-50.0f32..50.0, 1..200),
        bits in 4u8..16,
    ) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]);
        let q = fake_quantize(&t, bits);
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = thnt_tensor::symmetric_scale(max_abs, bits);
        for (a, b) in t.data().iter().zip(q.data()) {
            // The f32 divide+round+multiply round-trip costs a few ulp on top
            // of the half-step bound, which matters at 13+ bits.
            let tol = step / 2.0 + 1e-6 + 8.0 * f32::EPSILON * a.abs().max(b.abs());
            prop_assert!((a - b).abs() <= tol, "{a} -> {b} (step {step})");
        }
    }

    #[test]
    fn more_bits_never_increase_error(
        values in proptest::collection::vec(-10.0f32..10.0, 8..200),
    ) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]);
        let mut prev = f32::INFINITY;
        for bits in [4u8, 6, 8, 12, 16] {
            let e = quant_rmse(&t, bits);
            prop_assert!(e <= prev + 1e-6, "error rose at {bits} bits: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn footprint_is_max_over_pairs(
        sizes in proptest::collection::vec(1usize..10_000, 2..12),
    ) {
        let profiles: Vec<ActivationProfile> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| ActivationProfile::new(format!("l{i}"), n, 8))
            .collect();
        let fp = activation_footprint_bytes(&profiles);
        let manual = sizes.windows(2).map(|w| (w[0] + w[1]) as u64).max().unwrap();
        prop_assert_eq!(fp, manual);
    }

    #[test]
    fn footprint_monotone_in_bits(
        sizes in proptest::collection::vec(1usize..5_000, 2..8),
    ) {
        let mk = |bits: u32| -> u64 {
            let profiles: Vec<ActivationProfile> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| ActivationProfile::new(format!("l{i}"), n, bits))
                .collect();
            activation_footprint_bytes(&profiles)
        };
        prop_assert!(mk(8) <= mk(16));
        prop_assert!(mk(16) <= mk(32));
    }

    #[test]
    fn total_footprint_adds_model_and_activations(
        model_bytes in 0u64..100_000,
        n in 1usize..10_000,
    ) {
        let profiles = [ActivationProfile::new("only", n, 8)];
        let fp = MemoryFootprint::new(model_bytes, &profiles);
        prop_assert_eq!(fp.total_bytes(), model_bytes + n as u64);
    }
}
