//! Post-training fixed-point quantization and the memory-footprint model
//! (§4 "Quantization of activations and remaining full-precision weights",
//! Table 6).
//!
//! The paper quantizes the pre-trained ST-HybridNet layer by layer (weights
//! and activations) following Qiu et al. / Zhang et al.: symmetric
//! fixed-point with a per-tensor range. Accuracy is evaluated *without*
//! retraining. This crate provides:
//!
//! * [`quantize_weights`] — fake-quantizes every full-precision parameter of
//!   a model in place (ternary matrices are already 2-bit and are skipped)
//! * [`ActivationProfile`] / [`activation_footprint_bytes`] — the paper's
//!   activation-memory rule: buffers are reused across layers, so the
//!   requirement is the **maximum over consecutive layer pairs** of
//!   (output activations of layer *i*) + (output activations of layer *i+1*)
//! * [`MemoryFootprint`] — model size + activation memory, the Table 6
//!   "total memory footprint" column

use thnt_nn::Param;
use thnt_tensor::fake_quantize;

/// Size/precision of one layer's output activation buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationProfile {
    /// Layer name (for reports).
    pub name: String,
    /// Elements in the activation tensor (per inference, batch 1).
    pub numel: usize,
    /// Storage bits per element (8 or 16 in the paper).
    pub bits: u32,
}

impl ActivationProfile {
    /// Creates a profile entry.
    pub fn new(name: impl Into<String>, numel: usize, bits: u32) -> Self {
        Self { name: name.into(), numel, bits }
    }

    /// Buffer size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.numel as u64 * self.bits as u64).div_ceil(8)
    }
}

/// The paper's activation-memory rule: activation buffers are reused, so
/// the footprint is the maximum over consecutive layers of the two live
/// buffers (a layer's input is the previous layer's output).
///
/// The first entry should be the network input buffer.
pub fn activation_footprint_bytes(profiles: &[ActivationProfile]) -> u64 {
    if profiles.is_empty() {
        return 0;
    }
    if profiles.len() == 1 {
        return profiles[0].bytes();
    }
    profiles.windows(2).map(|w| w[0].bytes() + w[1].bytes()).max().unwrap_or(0)
}

/// Total inference memory: model weights + peak activation memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Model (weight) bytes.
    pub model_bytes: u64,
    /// Peak activation bytes per the reuse rule.
    pub activation_bytes: u64,
}

impl MemoryFootprint {
    /// Computes the footprint from a model size and activation profiles.
    pub fn new(model_bytes: u64, profiles: &[ActivationProfile]) -> Self {
        Self { model_bytes, activation_bytes: activation_footprint_bytes(profiles) }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.model_bytes + self.activation_bytes
    }

    /// Total in the paper's KB (1 KB = 1024 bytes).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

/// Fake-quantizes every trainable full-precision parameter to `bits` bits
/// (symmetric, per-tensor range), in place. Frozen ternary matrices
/// (`trainable == false` with values in {−1, 0, 1}) are left untouched —
/// they are already 2-bit entities.
///
/// Returns the number of tensors quantized.
pub fn quantize_weights(params: Vec<&mut Param>, bits: u8) -> usize {
    let mut count = 0;
    for p in params {
        let ternary =
            !p.trainable && p.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0);
        if ternary {
            continue;
        }
        p.value = fake_quantize(&p.value, bits);
        count += 1;
    }
    count
}

/// Per-tensor quantization report used by the table generators.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightQuantReport {
    /// Parameter name.
    pub name: String,
    /// RMS quantization error.
    pub rmse: f32,
    /// Parameter element count.
    pub numel: usize,
}

/// Measures (without applying) the quantization error of every parameter.
pub fn weight_quant_report(params: Vec<&Param>, bits: u8) -> Vec<WeightQuantReport> {
    params
        .into_iter()
        .map(|p| WeightQuantReport {
            name: p.name.clone(),
            rmse: thnt_tensor::quant_rmse(&p.value, bits),
            numel: p.numel(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thnt_tensor::Tensor;

    #[test]
    fn footprint_is_max_adjacent_pair() {
        let profiles = vec![
            ActivationProfile::new("input", 490, 8),
            ActivationProfile::new("conv1", 8000, 8),
            ActivationProfile::new("ds1", 8000, 8),
            ActivationProfile::new("pool", 64, 8),
        ];
        // max pair = conv1 + ds1 = 16000 bytes.
        assert_eq!(activation_footprint_bytes(&profiles), 16_000);
    }

    #[test]
    fn sixteen_bit_buffers_double_footprint() {
        let p8 = vec![ActivationProfile::new("a", 1000, 8), ActivationProfile::new("b", 1000, 8)];
        let p16 =
            vec![ActivationProfile::new("a", 1000, 16), ActivationProfile::new("b", 1000, 16)];
        assert_eq!(activation_footprint_bytes(&p16), 2 * activation_footprint_bytes(&p8));
    }

    #[test]
    fn empty_and_single_profiles() {
        assert_eq!(activation_footprint_bytes(&[]), 0);
        assert_eq!(activation_footprint_bytes(&[ActivationProfile::new("only", 100, 8)]), 100);
    }

    #[test]
    fn quantize_weights_snaps_to_grid_and_skips_ternary() {
        let mut fp = Param::new("w", Tensor::from_vec(vec![0.111, -0.52, 0.93], &[3]));
        let mut tern = Param::new("t", Tensor::from_vec(vec![1.0, -1.0, 0.0], &[3]));
        tern.freeze();
        let before_tern = tern.value.clone();
        let n = quantize_weights(vec![&mut fp, &mut tern], 8);
        assert_eq!(n, 1);
        assert_eq!(tern.value.data(), before_tern.data());
        // fp is now on the 8-bit grid.
        let q = fake_quantize(&fp.value, 8);
        thnt_tensor::assert_close(fp.value.data(), q.data(), 1e-6, 0.0);
    }

    #[test]
    fn footprint_totals_add_up() {
        let fp = MemoryFootprint::new(
            10_790,
            &[ActivationProfile::new("a", 8000, 8), ActivationProfile::new("b", 8000, 8)],
        );
        assert_eq!(fp.total_bytes(), 10_790 + 16_000);
        assert!((fp.total_kb() - 26.16).abs() < 0.05);
    }

    #[test]
    fn report_lists_every_param() {
        let a = Param::new("a", Tensor::from_vec(vec![0.3, 0.4], &[2]));
        let b = Param::new("b", Tensor::from_vec(vec![0.5], &[1]));
        let rep = weight_quant_report(vec![&a, &b], 8);
        assert_eq!(rep.len(), 2);
        assert!(rep.iter().all(|r| r.rmse >= 0.0));
    }
}
