//! Post-training fixed-point quantization and the memory-footprint model
//! (§4 "Quantization of activations and remaining full-precision weights",
//! Table 6).
//!
//! The paper quantizes the pre-trained ST-HybridNet layer by layer (weights
//! and activations) following Qiu et al. / Zhang et al.: symmetric
//! fixed-point with a per-tensor range. Accuracy is evaluated *without*
//! retraining. This crate provides:
//!
//! * [`quantize_weights`] — fake-quantizes every full-precision parameter of
//!   a model in place (ternary matrices are already 2-bit and are skipped)
//! * [`ActivationProfile`] / [`activation_footprint_bytes`] — the paper's
//!   activation-memory rule: buffers are reused across layers, so the
//!   requirement is the **maximum over consecutive layer pairs** of
//!   (output activations of layer *i*) + (output activations of layer *i+1*)
//! * [`MemoryFootprint`] — model size + activation memory, the Table 6
//!   "total memory footprint" column
//! * [`CalibrationMethod`] / [`RangeObserver`] — the activation-range
//!   calibration pass behind the bit-sliced int8 engine mode: observe a
//!   calibration batch layer by layer, pick a per-layer clip (moving-max or
//!   percentile), and derive the symmetric int8 scale

use thnt_nn::Param;
use thnt_tensor::fake_quantize;

/// How a quantized activation buffer is laid out in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivationLayout {
    /// One value per `bits`-bit slot, densely packed (`numel·bits` bits).
    #[default]
    Dense,
    /// Bit-sliced u64 planes ([`thnt_strassen::packed::bitslice`]'s layout):
    /// one plane of `numel.div_ceil(64)` words per bit, so the buffer is
    /// `bits · numel.div_ceil(64)` words — word padding included, which is
    /// what the quantized engine actually allocates.
    ///
    /// [`thnt_strassen::packed::bitslice`]: https://docs.rs/thnt-strassen
    BitSliced,
}

/// Size/precision of one layer's output activation buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationProfile {
    /// Layer name (for reports).
    pub name: String,
    /// Elements in the activation tensor (per inference, batch 1).
    pub numel: usize,
    /// Storage bits per element (8 or 16 in the paper).
    pub bits: u32,
    /// Physical layout of the buffer.
    pub layout: ActivationLayout,
}

impl ActivationProfile {
    /// Creates a densely packed profile entry.
    pub fn new(name: impl Into<String>, numel: usize, bits: u32) -> Self {
        Self { name: name.into(), numel, bits, layout: ActivationLayout::Dense }
    }

    /// Creates a bit-sliced profile entry: `bits` u64-word planes of
    /// `numel.div_ceil(64)` words each — the storage the popcount engine
    /// mode really holds, rather than an f32 (or dense byte) overstatement.
    pub fn bit_sliced(name: impl Into<String>, numel: usize, bits: u32) -> Self {
        Self { name: name.into(), numel, bits, layout: ActivationLayout::BitSliced }
    }

    /// Buffer size in bytes.
    pub fn bytes(&self) -> u64 {
        match self.layout {
            ActivationLayout::Dense => (self.numel as u64 * self.bits as u64).div_ceil(8),
            ActivationLayout::BitSliced => self.bits as u64 * (self.numel as u64).div_ceil(64) * 8,
        }
    }
}

/// The paper's activation-memory rule: activation buffers are reused, so
/// the footprint is the maximum over consecutive layers of the two live
/// buffers (a layer's input is the previous layer's output).
///
/// The first entry should be the network input buffer.
pub fn activation_footprint_bytes(profiles: &[ActivationProfile]) -> u64 {
    if profiles.is_empty() {
        return 0;
    }
    if profiles.len() == 1 {
        return profiles[0].bytes();
    }
    profiles.windows(2).map(|w| w[0].bytes() + w[1].bytes()).max().unwrap_or(0)
}

/// Total inference memory: model weights + peak activation memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Model (weight) bytes.
    pub model_bytes: u64,
    /// Peak activation bytes per the reuse rule.
    pub activation_bytes: u64,
}

impl MemoryFootprint {
    /// Computes the footprint from a model size and activation profiles.
    pub fn new(model_bytes: u64, profiles: &[ActivationProfile]) -> Self {
        Self { model_bytes, activation_bytes: activation_footprint_bytes(profiles) }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.model_bytes + self.activation_bytes
    }

    /// Total in the paper's KB (1 KB = 1024 bytes).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

/// How a [`RangeObserver`] turns the activation magnitudes it has seen into
/// a calibrated clip value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationMethod {
    /// Exponential moving average of per-observation max magnitudes:
    /// `running ← momentum·running + (1−momentum)·max|x|` (the first
    /// observation seeds `running` directly). `momentum = 0` keeps each
    /// observation's max outright; values near 1 converge to the typical
    /// per-sample peak, softly clipping one-off outliers.
    MovingMax {
        /// EMA momentum in `[0, 1)`.
        momentum: f32,
    },
    /// The `pct`-percentile of all observed magnitudes, from an
    /// order-independent integer histogram (256 exponent bins × 8 mantissa
    /// sub-bins): the clip is the upper edge of the first bin whose
    /// cumulative count reaches `pct`% of the observations. `pct = 100.0`
    /// covers everything (within one sub-bin, ≤ 12.5 % overestimate).
    Percentile {
        /// Coverage percentile in `(0, 100]`.
        pct: f32,
    },
}

impl CalibrationMethod {
    /// Moving-max with the given momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn moving_max(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1), got {momentum}");
        Self::MovingMax { momentum }
    }

    /// Percentile clipping at `pct` percent coverage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pct <= 100`.
    pub fn percentile(pct: f32) -> Self {
        assert!(pct > 0.0 && pct <= 100.0, "pct must be in (0, 100], got {pct}");
        Self::Percentile { pct }
    }
}

impl Default for CalibrationMethod {
    /// The engine default: moving-max with momentum 0.9.
    fn default() -> Self {
        Self::MovingMax { momentum: 0.9 }
    }
}

/// Histogram bins of [`RangeObserver`]: 256 exponent values × 8 mantissa
/// sub-bins, indexed by raw IEEE-754 bit fields — integer-only, so the
/// percentile is exactly order-independent.
const HIST_BINS: usize = 256 * 8;

/// Accumulates the magnitude distribution of one quantization point across
/// a calibration batch and derives the symmetric int8 scale.
///
/// Feed it one [`RangeObserver::observe`] call per calibration sample (the
/// granularity the moving-max momentum is defined over), then read
/// [`RangeObserver::scale`]. Zero and non-finite values are ignored — they
/// carry no range information.
///
/// # Examples
///
/// ```
/// use thnt_quant::{CalibrationMethod, RangeObserver};
///
/// let mut obs = RangeObserver::new(CalibrationMethod::percentile(100.0));
/// obs.observe(&[0.5, -2.0, 0.25]);
/// let scale = obs.scale();
/// assert!(scale >= 2.0 / 127.0); // the clip covers max |x|
/// ```
#[derive(Debug, Clone)]
pub struct RangeObserver {
    method: CalibrationMethod,
    /// Moving-max state; `None` until the first observation.
    running: Option<f32>,
    /// Percentile histogram (allocated lazily for `Percentile` only).
    hist: Vec<u64>,
    total: u64,
}

impl RangeObserver {
    /// A fresh observer for one quantization point.
    pub fn new(method: CalibrationMethod) -> Self {
        let hist = match method {
            CalibrationMethod::Percentile { .. } => vec![0; HIST_BINS],
            CalibrationMethod::MovingMax { .. } => Vec::new(),
        };
        Self { method, running: None, hist, total: 0 }
    }

    /// Folds one observation (typically one calibration sample's values at
    /// this quantization point) into the state.
    pub fn observe(&mut self, xs: &[f32]) {
        match self.method {
            CalibrationMethod::MovingMax { momentum } => {
                let batch_max =
                    xs.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0f32, f32::max);
                self.running = Some(match self.running {
                    None => batch_max,
                    Some(r) => momentum * r + (1.0 - momentum) * batch_max,
                });
            }
            CalibrationMethod::Percentile { .. } => {
                for &v in xs {
                    let a = v.abs();
                    if a > 0.0 && a.is_finite() {
                        self.hist[Self::bin_of(a)] += 1;
                        self.total += 1;
                    }
                }
            }
        }
    }

    /// Histogram bin of a positive finite magnitude: exponent byte × 8 +
    /// top 3 mantissa bits.
    fn bin_of(a: f32) -> usize {
        let bits = a.to_bits();
        (((bits >> 23) & 0xff) as usize) * 8 + (((bits >> 20) & 0x7) as usize)
    }

    /// Upper edge of histogram bin `bin` (the start of the next bin).
    fn bin_upper(bin: usize) -> f32 {
        let (exp, man) = ((bin / 8) as u32, (bin % 8) as u32);
        if man == 7 {
            f32::from_bits((exp + 1) << 23)
        } else {
            f32::from_bits((exp << 23) | ((man + 1) << 20))
        }
    }

    /// The calibrated clip magnitude. Zero if nothing (or only zeros) was
    /// observed.
    pub fn max_abs(&self) -> f32 {
        match self.method {
            CalibrationMethod::MovingMax { .. } => self.running.unwrap_or(0.0),
            CalibrationMethod::Percentile { pct } => {
                if self.total == 0 {
                    return 0.0;
                }
                let need = ((pct as f64 / 100.0 * self.total as f64).ceil() as u64).max(1);
                let mut seen = 0u64;
                for (bin, &count) in self.hist.iter().enumerate() {
                    seen += count;
                    if seen >= need {
                        return Self::bin_upper(bin);
                    }
                }
                Self::bin_upper(HIST_BINS - 1)
            }
        }
    }

    /// The symmetric int8 scale for the calibrated clip:
    /// `max_abs / 127` (1.0 when nothing was observed, so all-zero points
    /// still quantize losslessly).
    pub fn scale(&self) -> f32 {
        thnt_tensor::symmetric_scale(self.max_abs(), 8)
    }
}

/// Fake-quantizes every trainable full-precision parameter to `bits` bits
/// (symmetric, per-tensor range), in place. Frozen ternary matrices
/// (`trainable == false` with values in {−1, 0, 1}) are left untouched —
/// they are already 2-bit entities.
///
/// Returns the number of tensors quantized.
pub fn quantize_weights(params: Vec<&mut Param>, bits: u8) -> usize {
    let mut count = 0;
    for p in params {
        let ternary =
            !p.trainable && p.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0);
        if ternary {
            continue;
        }
        p.value = fake_quantize(&p.value, bits);
        count += 1;
    }
    count
}

/// Per-tensor quantization report used by the table generators.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightQuantReport {
    /// Parameter name.
    pub name: String,
    /// RMS quantization error.
    pub rmse: f32,
    /// Parameter element count.
    pub numel: usize,
}

/// Measures (without applying) the quantization error of every parameter.
pub fn weight_quant_report(params: Vec<&Param>, bits: u8) -> Vec<WeightQuantReport> {
    params
        .into_iter()
        .map(|p| WeightQuantReport {
            name: p.name.clone(),
            rmse: thnt_tensor::quant_rmse(&p.value, bits),
            numel: p.numel(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thnt_tensor::Tensor;

    #[test]
    fn footprint_is_max_adjacent_pair() {
        let profiles = vec![
            ActivationProfile::new("input", 490, 8),
            ActivationProfile::new("conv1", 8000, 8),
            ActivationProfile::new("ds1", 8000, 8),
            ActivationProfile::new("pool", 64, 8),
        ];
        // max pair = conv1 + ds1 = 16000 bytes.
        assert_eq!(activation_footprint_bytes(&profiles), 16_000);
    }

    #[test]
    fn sixteen_bit_buffers_double_footprint() {
        let p8 = vec![ActivationProfile::new("a", 1000, 8), ActivationProfile::new("b", 1000, 8)];
        let p16 =
            vec![ActivationProfile::new("a", 1000, 16), ActivationProfile::new("b", 1000, 16)];
        assert_eq!(activation_footprint_bytes(&p16), 2 * activation_footprint_bytes(&p8));
    }

    #[test]
    fn empty_and_single_profiles() {
        assert_eq!(activation_footprint_bytes(&[]), 0);
        assert_eq!(activation_footprint_bytes(&[ActivationProfile::new("only", 100, 8)]), 100);
    }

    #[test]
    fn quantize_weights_snaps_to_grid_and_skips_ternary() {
        let mut fp = Param::new("w", Tensor::from_vec(vec![0.111, -0.52, 0.93], &[3]));
        let mut tern = Param::new("t", Tensor::from_vec(vec![1.0, -1.0, 0.0], &[3]));
        tern.freeze();
        let before_tern = tern.value.clone();
        let n = quantize_weights(vec![&mut fp, &mut tern], 8);
        assert_eq!(n, 1);
        assert_eq!(tern.value.data(), before_tern.data());
        // fp is now on the 8-bit grid.
        let q = fake_quantize(&fp.value, 8);
        thnt_tensor::assert_close(fp.value.data(), q.data(), 1e-6, 0.0);
    }

    #[test]
    fn footprint_totals_add_up() {
        let fp = MemoryFootprint::new(
            10_790,
            &[ActivationProfile::new("a", 8000, 8), ActivationProfile::new("b", 8000, 8)],
        );
        assert_eq!(fp.total_bytes(), 10_790 + 16_000);
        assert!((fp.total_kb() - 26.16).abs() < 0.05);
    }

    #[test]
    fn bit_sliced_profile_counts_word_padded_planes() {
        // 490 elements → 8 words per plane → 8 planes × 8 words × 8 bytes.
        let p = ActivationProfile::bit_sliced("input", 490, 8);
        assert_eq!(p.bytes(), 8 * 8 * 8);
        // Dense 8-bit for comparison: one byte per element.
        assert_eq!(ActivationProfile::new("input", 490, 8).bytes(), 490);
        // Exactly at a word boundary there is no padding: 64 elements at
        // 8 bits is 64 bytes either way.
        assert_eq!(ActivationProfile::bit_sliced("x", 64, 8).bytes(), 64);
        assert_eq!(ActivationProfile::new("x", 64, 8).bytes(), 64);
    }

    #[test]
    fn calibration_is_deterministic() {
        let data: Vec<f32> = (0..500).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.013).collect();
        for method in [
            CalibrationMethod::moving_max(0.9),
            CalibrationMethod::moving_max(0.0),
            CalibrationMethod::percentile(99.0),
            CalibrationMethod::percentile(100.0),
        ] {
            let run = || {
                let mut obs = RangeObserver::new(method);
                for chunk in data.chunks(50) {
                    obs.observe(chunk);
                }
                obs.scale()
            };
            let (a, b) = (run(), run());
            assert_eq!(a.to_bits(), b.to_bits(), "{method:?} not bit-reproducible");
            assert!(a > 0.0);
        }
    }

    #[test]
    fn percentile_is_order_independent() {
        let data: Vec<f32> = (0..400).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.021).collect();
        let mut shuffled = data.clone();
        shuffled.reverse();
        shuffled.rotate_left(123);
        let scale_of = |xs: &[f32]| {
            let mut obs = RangeObserver::new(CalibrationMethod::percentile(99.5));
            for chunk in xs.chunks(17) {
                obs.observe(chunk);
            }
            obs.scale()
        };
        assert_eq!(scale_of(&data).to_bits(), scale_of(&shuffled).to_bits());
    }

    #[test]
    fn percentile_full_coverage_bounds_the_max() {
        let mut obs = RangeObserver::new(CalibrationMethod::percentile(100.0));
        obs.observe(&[0.1, -3.7, 2.2, 0.0, f32::NAN]);
        let clip = obs.max_abs();
        // Upper bin edge: covers the max, overestimates by at most one
        // mantissa sub-bin (12.5 %).
        assert!((3.7..=3.7 * 1.125).contains(&clip), "clip {clip}");
    }

    #[test]
    fn moving_max_blends_toward_recent_peaks() {
        let mut obs = RangeObserver::new(CalibrationMethod::moving_max(0.5));
        obs.observe(&[1.0]); // seeds running = 1
        obs.observe(&[3.0]); // 0.5·1 + 0.5·3 = 2
        assert!((obs.max_abs() - 2.0).abs() < 1e-6);
        assert!((obs.scale() - 2.0 / 127.0).abs() < 1e-6);
    }

    #[test]
    fn unobserved_points_quantize_losslessly() {
        for method in [CalibrationMethod::default(), CalibrationMethod::percentile(99.9)] {
            let obs = RangeObserver::new(method);
            assert_eq!(obs.max_abs(), 0.0);
            assert_eq!(obs.scale(), 1.0);
        }
    }

    #[test]
    fn report_lists_every_param() {
        let a = Param::new("a", Tensor::from_vec(vec![0.3, 0.4], &[2]));
        let b = Param::new("b", Tensor::from_vec(vec![0.5], &[1]));
        let rep = weight_quant_report(vec![&a, &b], 8);
        assert_eq!(rep.len(), 2);
        assert!(rep.iter().all(|r| r.rmse >= 0.0));
    }
}
