//! End-to-end inference latency of every model family — the runtime
//! counterpart of the paper's per-table operation counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_bonsai::{BonsaiConfig, BonsaiTree};
use thnt_core::{HybridConfig, HybridNet, PackedStHybrid, StHybridNet};
use thnt_models::{DsCnn, StDsCnn};
use thnt_nn::{Layer, Model};
use thnt_strassen::Strassenified;
use thnt_tensor::gaussian;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_1clip");
    let mut rng = SmallRng::seed_from_u64(0);
    let x = gaussian(&[1, 1, 49, 10], 0.0, 1.0, &mut rng);
    let flat = x.reshape(&[1, 490]);

    let mut ds = DsCnn::new(&mut rng);
    group.bench_function("ds_cnn", |b| b.iter(|| ds.forward(&x, false)));

    let mut st_ds = StDsCnn::new(0.75, &mut rng);
    st_ds.activate_quantization();
    // Freeze so inference uses genuinely ternary weights.
    st_ds.freeze_ternary();
    group.bench_function("st_ds_cnn_r075_frozen", |b| b.iter(|| st_ds.forward(&x, false)));

    let mut hybrid = HybridNet::new(HybridConfig::paper(), &mut rng);
    group.bench_function("hybrid_net", |b| b.iter(|| hybrid.forward(&x, false)));

    let mut st_hybrid = StHybridNet::new(HybridConfig::paper(), &mut rng);
    st_hybrid.activate_quantization();
    st_hybrid.freeze_ternary();
    group.bench_function("st_hybrid_net_frozen", |b| b.iter(|| st_hybrid.forward(&x, false)));

    // The compiled deployment form: bitplane-packed ternary weights served
    // through the word-level add-only engine.
    let engine = PackedStHybrid::compile(&st_hybrid);
    group.bench_function("st_hybrid_net_packed", |b| b.iter(|| engine.forward(&x)));
    let batch = gaussian(&[8, 1, 49, 10], 0.0, 1.0, &mut rng);
    group.bench_function("st_hybrid_net_packed_batch8", |b| b.iter(|| engine.forward(&batch)));

    let mut bonsai = BonsaiTree::new(
        BonsaiConfig { input_dim: 490, proj_dim: 64, depth: 2, ..Default::default() },
        &mut rng,
    );
    group.bench_function("bonsai_d64_t2", |b| b.iter(|| bonsai.forward(&flat, false)));
    group.finish();
}

criterion_group! {
    name = inference;
    config = Criterion::default().sample_size(20);
    targets = bench_inference
}
criterion_main!(inference);
