//! Ablation for the paper's §2.1.2 observation: strassenifying a 1×1
//! pointwise convolution costs proportionally far more additions than
//! strassenifying a 3×3 convolution, because the ternary `W_b` stage
//! duplicates the whole (already tiny) pointwise product.
//!
//! We measure wall-clock for plain vs strassenified convs of both kernel
//! shapes at r = c_out; the ST/plain runtime ratio should be markedly worse
//! for the pointwise layer, mirroring the paper's addition-count argument.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_nn::Layer;
use thnt_strassen::{StrassenConv2d, Strassenified};
use thnt_tensor::{conv2d, gaussian, Conv2dSpec};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("strassenify_ablation");
    let mut rng = SmallRng::seed_from_u64(0);
    let x = gaussian(&[1, 64, 25, 5], 0.0, 1.0, &mut rng);

    // Plain pointwise 1x1 (64 -> 64).
    let pw_spec = Conv2dSpec::valid(1, 1, 1, 1);
    let pw_w = gaussian(&[64, 64, 1, 1], 0.0, 0.1, &mut rng);
    group.bench_function("plain_pointwise", |b| {
        b.iter(|| conv2d(&x, &pw_w, None, &pw_spec));
    });
    // Strassenified pointwise, r = c_out.
    let mut st_pw = StrassenConv2d::new(64, 64, 64, pw_spec, &mut rng);
    st_pw.activate_quantization();
    st_pw.freeze_ternary();
    group.bench_function("st_pointwise_r64", |b| b.iter(|| st_pw.forward(&x, false)));

    // Plain 3x3 (64 -> 64).
    let k3_spec = Conv2dSpec::same(25, 5, 3, 3, 1, 1);
    let k3_w = gaussian(&[64, 64, 3, 3], 0.0, 0.1, &mut rng);
    group.bench_function("plain_3x3", |b| {
        b.iter(|| conv2d(&x, &k3_w, None, &k3_spec));
    });
    // Strassenified 3x3, r = c_out.
    let mut st_k3 = StrassenConv2d::new(64, 64, 64, k3_spec, &mut rng);
    st_k3.activate_quantization();
    st_k3.freeze_ternary();
    group.bench_function("st_3x3_r64", |b| b.iter(|| st_k3.forward(&x, false)));

    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation
}
criterion_main!(ablation);
