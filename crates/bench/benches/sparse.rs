//! §5's runtime claim, measured: sparse (CSR) matvec beats the dense kernel
//! only at high sparsity, because of irregular access and index chasing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use thnt_nn::Param;
use thnt_prune::{prune_to_sparsity, CsrMatrix};
use thnt_tensor::{gaussian, matvec, Tensor};

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_256x256");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let x = gaussian(&[256], 0.0, 1.0, &mut rng);

    let dense_w: Tensor = gaussian(&[256, 256], 0.0, 1.0, &mut rng);
    group.bench_function("dense", |b| b.iter(|| matvec(&dense_w, &x)));

    for sparsity in [50u32, 70, 90, 95] {
        let mut p = Param::new("w", dense_w.clone());
        prune_to_sparsity(&mut p, sparsity as f64 / 100.0);
        let csr = CsrMatrix::from_dense(&p.value);
        group.bench_with_input(
            BenchmarkId::new("csr", format!("{sparsity}pct")),
            &sparsity,
            |b, _| b.iter(|| csr.matvec(x.data())),
        );
    }
    group.finish();
}

criterion_group! {
    name = sparse;
    config = Criterion::default().sample_size(30);
    targets = bench_sparse_vs_dense
}
criterion_main!(sparse);
