//! Micro-benchmarks for the numeric kernels underlying every model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_dsp::{Mfcc, MfccConfig};
use thnt_strassen::{ternary_values, PackedTernary};
use thnt_tensor::{conv2d, depthwise_conv2d, gaussian, matmul, matmul_nt, matvec, Conv2dSpec};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SmallRng::seed_from_u64(0);
    for &n in &[32usize, 64, 128] {
        let a = gaussian(&[n, n], 0.0, 1.0, &mut rng);
        let b = gaussian(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv");
    let mut rng = SmallRng::seed_from_u64(1);
    // The DS-CNN first layer geometry: 49x10 input, 64 10x4 filters, s2x2.
    let x = gaussian(&[1, 1, 49, 10], 0.0, 1.0, &mut rng);
    let w = gaussian(&[64, 1, 10, 4], 0.0, 0.1, &mut rng);
    let spec = Conv2dSpec::same(49, 10, 10, 4, 2, 2);
    group.bench_function("ds_cnn_conv1", |bench| {
        bench.iter(|| conv2d(&x, &w, None, &spec));
    });
    // A DS block: depthwise 3x3 on the 25x5x64 feature map.
    let fx = gaussian(&[1, 64, 25, 5], 0.0, 1.0, &mut rng);
    let dw = gaussian(&[64, 1, 3, 3], 0.0, 0.1, &mut rng);
    let dspec = Conv2dSpec::same(25, 5, 3, 3, 1, 1);
    group.bench_function("depthwise_3x3_64ch", |bench| {
        bench.iter(|| depthwise_conv2d(&fx, &dw, None, &dspec));
    });
    // Pointwise 1x1, 64 -> 64 (dominates DS-CNN compute).
    let pw = gaussian(&[64, 64, 1, 1], 0.0, 0.1, &mut rng);
    let pspec = Conv2dSpec::valid(1, 1, 1, 1);
    group.bench_function("pointwise_64to64", |bench| {
        bench.iter(|| conv2d(&fx, &pw, None, &pspec));
    });
    group.finish();
}

fn bench_packed(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    // Ternary matvec kernels at the tree/dense layer scale.
    let mut group = c.benchmark_group("ternary_matvec_256x256");
    let w = ternary_values(&gaussian(&[256, 256], 0.0, 1.0, &mut rng)).values;
    let packed = PackedTernary::from_tensor(&w);
    let x = gaussian(&[256], 0.0, 1.0, &mut rng);
    group.bench_function("dense_f32", |b| b.iter(|| matvec(&w, &x)));
    group.bench_function("packed_per_entry", |b| b.iter(|| packed.matvec_per_entry(x.data())));
    group.bench_function("packed_word", |b| b.iter(|| packed.matvec(x.data())));
    group.finish();

    // Batched activations: the engine's dense-layer hot path.
    let mut group = c.benchmark_group("ternary_matmul_64x256x256");
    let xb = gaussian(&[64, 256], 0.0, 1.0, &mut rng);
    group.bench_function("dense_f32", |b| b.iter(|| matmul_nt(&xb, &w)));
    group.bench_function("packed_word", |b| b.iter(|| packed.matmul(&xb)));
    group.finish();

    // Column-matrix form: the engine's conv hot path (W · im2col).
    let mut group = c.benchmark_group("ternary_matmul_rhs_48x40x1250");
    let wc = ternary_values(&gaussian(&[48, 40], 0.0, 1.0, &mut rng)).values;
    let pc = PackedTernary::from_tensor(&wc);
    let m = gaussian(&[40, 1250], 0.0, 1.0, &mut rng);
    group.bench_function("dense_f32", |b| b.iter(|| matmul(&wc, &m)));
    group.bench_function("packed_word", |b| b.iter(|| pc.matmul_rhs(&m)));
    group.finish();
}

fn bench_mfcc(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let audio: Vec<f32> = (0..16_000)
        .map(|t| {
            (t as f32 * 0.3).sin() * 0.5 + {
                use rand::Rng;
                rng.gen_range(-0.01f32..0.01)
            }
        })
        .collect();
    let mfcc = Mfcc::new(MfccConfig::paper());
    c.bench_function("mfcc_1s_clip", |bench| {
        bench.iter(|| mfcc.compute(&audio));
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_packed, bench_mfcc
}
criterion_main!(kernels);
