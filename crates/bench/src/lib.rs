//! Table rendering for the paper-reproduction binaries.
//!
//! Each `table{1..7}` / `figure1` binary (see `src/bin/`) runs the matching
//! experiment from [`thnt_core::experiments`] and prints the paper's row
//! values next to the measured ones. [`TextTable`] does the monospace
//! alignment.

/// A simple monospace table renderer.
///
/// # Example
///
/// ```
/// use thnt_bench::TextTable;
///
/// let mut t = TextTable::new(&["network", "acc"]);
/// t.row(&["DS-CNN", "94.4"]);
/// let s = t.render();
/// assert!(s.contains("DS-CNN"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            out.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats an op count as the paper prints it (e.g. `2.70M`).
pub fn mops(ops: u64) -> String {
    format!("{:.2}M", ops as f64 / 1e6)
}

/// Formats a KB value (`{:.2}KB`).
pub fn kb(v: f64) -> String {
    format!("{v:.2}KB")
}

/// Formats a percentage (`{:.2}`).
pub fn pct(v: f32) -> String {
    format!("{v:.2}")
}

/// Prints the standard banner for a table binary: paper context plus the
/// active experiment profile.
pub fn banner(table: &str, caption: &str, profile: thnt_core::Profile) {
    println!("==============================================================");
    println!("{table} — {caption}");
    println!("(reproduction of Gope et al., MLSys 2019; synthetic dataset,");
    println!(" profile {profile:?} — set THNT_PROFILE=smoke|quick|paper)");
    println!("==============================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn rejects_wrong_cell_count() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(mops(2_700_000), "2.70M");
        assert_eq!(kb(22.07), "22.07KB");
        assert_eq!(pct(94.4), "94.40");
    }
}
