//! Machine-readable kernel timings for CI and the README bench table.
//!
//! Times the dense-vs-packed ternary kernels, end-to-end hybrid inference
//! through the [`InferenceBackend`] trait, and the streaming detection path
//! (MFCC + model per window), then writes `BENCH_kernels.json` to the
//! working directory — a flat list of `{name, iters, mean_ns, median_ns,
//! windows_per_sec}` rows that CI can diff and dashboards can ingest
//! without parsing criterion output (`windows_per_sec` is non-zero only for
//! streaming rows).
//!
//! Iteration counts scale with `THNT_PROFILE` (`smoke` keeps the whole run
//! under a few seconds; the default profile measures long enough for stable
//! medians).

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use thnt_core::{HybridConfig, PackedStHybrid, StHybridNet, StreamingConfig, StreamingDetector};
use thnt_nn::InferenceBackend;
use thnt_strassen::{ternary_values, PackedTernary, Strassenified};
use thnt_tensor::{gaussian, matmul_nt, matvec};

/// One timed kernel.
#[derive(Debug, Clone, Serialize)]
struct BenchRow {
    name: String,
    iters: usize,
    mean_ns: f64,
    median_ns: f64,
    /// Streaming-path throughput (inference windows per second); 0 for
    /// non-streaming rows.
    windows_per_sec: f64,
}

/// Times `f` for `iters` iterations after `iters / 10 + 1` warmup runs.
fn time<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> BenchRow {
    for _ in 0..iters / 10 + 1 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!("{name:<42} {median:>12.0} ns (median of {iters})");
    BenchRow {
        name: name.to_string(),
        iters,
        mean_ns: mean,
        median_ns: median,
        windows_per_sec: 0.0,
    }
}

/// Times one streaming window (MFCC + normalize + model) on `backend`:
/// prefills the detector's one-second ring, then feeds hop-sized chunks so
/// every push triggers exactly one inference.
fn time_streaming(backend: &dyn InferenceBackend, iters: usize) -> BenchRow {
    let config = StreamingConfig::default();
    let mut det = StreamingDetector::new(backend, config, vec![0.0; 10], vec![1.0; 10]);
    let mut rng = SmallRng::seed_from_u64(42);
    let prefill = gaussian(&[16_000], 0.0, 0.1, &mut rng);
    det.push(prefill.data());
    let chunk = gaussian(&[config.hop], 0.0, 0.1, &mut rng);
    let name = format!("streaming_window/{}_backend", backend.backend_name());
    let mut row = time(&name, iters, || det.push(chunk.data()));
    row.windows_per_sec = 1e9 / row.median_ns;
    println!("{:<42} {:>12.1} windows/sec", "", row.windows_per_sec);
    row
}

fn main() {
    let smoke = matches!(std::env::var("THNT_PROFILE").as_deref(), Ok("smoke") | Ok("SMOKE"));
    let (kernel_iters, e2e_iters) = if smoke { (50, 3) } else { (400, 20) };
    let mut rng = SmallRng::seed_from_u64(0);
    let mut rows = Vec::new();

    // Ternary matvec: dense f32 vs per-entry decode vs word-level bitplanes.
    let w = ternary_values(&gaussian(&[256, 256], 0.0, 1.0, &mut rng)).values;
    let packed = PackedTernary::from_tensor(&w);
    let x = gaussian(&[256], 0.0, 1.0, &mut rng);
    rows.push(time("matvec_256x256/dense_f32", kernel_iters, || matvec(&w, &x)));
    rows.push(time("matvec_256x256/packed_per_entry", kernel_iters, || {
        packed.matvec_per_entry(x.data())
    }));
    rows.push(time("matvec_256x256/packed_word", kernel_iters, || packed.matvec(x.data())));

    // Batched activations.
    let xb = gaussian(&[64, 256], 0.0, 1.0, &mut rng);
    rows.push(time("matmul_64x256x256/dense_f32", kernel_iters, || matmul_nt(&xb, &w)));
    rows.push(time("matmul_64x256x256/packed_word", kernel_iters, || packed.matmul(&xb)));

    // End-to-end through the unified InferenceBackend trait: the dense
    // frozen path vs the compiled packed engine, swappable behind &dyn.
    let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
    net.activate_quantization();
    net.freeze_ternary();
    let engine = PackedStHybrid::compile(&net);
    let clip = gaussian(&[1, 1, 49, 10], 0.0, 1.0, &mut rng);
    let dense_backend = net.dense_backend();
    let backends: [&dyn InferenceBackend; 2] = [&dense_backend, &engine];
    for backend in backends {
        let name = format!("st_hybrid_1clip/{}_backend", backend.backend_name());
        rows.push(time(&name, e2e_iters, || backend.infer(&clip)));
    }

    // Sanity: the two paths must agree before the numbers mean anything.
    let dense = dense_backend.infer(&clip);
    let fast = engine.infer(&clip);
    let max_err =
        dense.data().iter().zip(fast.data()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(max_err < 1e-4, "packed engine diverged from dense path: {max_err}");

    // Streaming-path throughput (MFCC + normalize + model per window),
    // dense vs packed backend.
    for backend in backends {
        rows.push(time_streaming(backend, e2e_iters));
    }

    let json = serde_json::to_string_pretty(&rows).expect("serialize bench rows");
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    println!(
        "\n{} rows written to BENCH_kernels.json (max packed-vs-dense error {max_err:.2e})",
        rows.len()
    );
}
