//! Machine-readable kernel timings for CI and the README bench table.
//!
//! Times the dense-vs-packed ternary kernels, end-to-end hybrid inference
//! through the [`InferenceBackend`] trait, the streaming detection path
//! (MFCC + model per window), and the multi-session serving layer (many
//! streams batched through one backend), then writes `BENCH_kernels.json`
//! to the working directory — a flat list of `{name, iters, mean_ns,
//! median_ns}` rows that CI can diff and dashboards can ingest without
//! parsing criterion output. Streaming rows additionally carry
//! `windows_per_sec`; non-streaming rows omit the field entirely instead of
//! claiming a zero throughput.
//!
//! Iteration counts scale with `THNT_PROFILE` (`smoke` keeps the whole run
//! under a few seconds; the default profile measures long enough for stable
//! medians). With `THNT_BENCH_ASSERT_STREAMING=1` the run fails unless the
//! packed backend's streaming windows/sec beats the dense backend's — the
//! regression the old O(window × hop) ring buffer hid — and unless the `streaming_overload` rows (offered
//! load at twice the per-tick budget) sustain positive throughput with a
//! shed rate strictly between 0 and 1. With
//! `THNT_BENCH_ASSERT_DSP=1` it fails unless the planned MFCC front-end is
//! at least 3x the legacy straight-line pipeline on a one-second window
//! (`streaming_window` rows also carry `mfcc_ns`/`infer_ns` stage fields,
//! and `mfcc_window/*` rows time the front-end in isolation). With
//! `THNT_BENCH_ASSERT_QUANT=1` it fails unless the bit-sliced popcount
//! matvec (`quantized_matvec_256x256/bitsliced/*` rows) is at least 2x the
//! f32-lane packed matvec on the widest backend — the quantized engine
//! (`st_hybrid_1clip/quantized_backend` and the streaming quantized rows)
//! only earns its keep if pure AND+popcount beats f32 lanes.
//!
//! The `streaming_multi{64,256,1024}/…/shards{1,4}` rows time the sharded
//! multi-threaded serving layer and carry `shards` plus feed-to-vote
//! `p50_ns`/`p99_ns` latency quantiles. With `THNT_BENCH_ASSERT_SCALING=1`
//! the run fails unless 4 shards serve at least 2x the 1-shard windows/sec
//! at 256 sessions on the packed engine — only meaningful on a host with
//! >= 4 hardware threads, so CI arms it conditionally.
//!
//! The `artifact_load/{owned,borrowed,owned_rle}` rows time a cold model
//! load from a `.thnt2` blob and carry `model_bytes` (in-memory size) and
//! `bytes_on_disk` (serialized size). With `THNT_BENCH_ASSERT_LOAD=1` the
//! run fails unless an aligned v3 `load_ref` borrowed every bitplane and
//! the zero-copy cold start is at least 10x faster than the owning cold
//! start of the deployment (RLE) artifact — the whole point of the aligned
//! v3 container.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_core::{
    save_thnt2_with, AlignedBytes, HybridConfig, ModelSpec, PackedStHybrid, QuantizedStHybrid,
    SaveOptions, ServeConfig, ShardedStreamServer, StHybridNet, StreamServer, StreamingConfig,
    StreamingDetector,
};
use thnt_dsp::{DspDispatch, Mfcc, MfccConfig, ReferenceMfcc};
use thnt_nn::InferenceBackend;
use thnt_quant::CalibrationMethod;
use thnt_strassen::{
    ternary_values, BitSliced, Kernel, KernelDispatch, PackedTernary, Strassenified,
};
use thnt_tensor::{gaussian, matmul_nt, matvec};

/// One timed kernel.
#[derive(Debug, Clone)]
struct BenchRow {
    name: String,
    iters: usize,
    mean_ns: f64,
    median_ns: f64,
    /// Streaming-path throughput (inference windows per second); absent on
    /// non-streaming rows.
    windows_per_sec: Option<f64>,
    /// Which dispatch backend (`scalar` | `avx2` | `neon`) executed a
    /// packed-kernel row; absent on dense/per-entry rows.
    kernel: Option<&'static str>,
    /// Median time of the MFCC stage of a streaming window; present only on
    /// `streaming_window` rows.
    mfcc_ns: Option<f64>,
    /// Median time of the backend-inference stage of a streaming window;
    /// present only on `streaming_window` rows.
    infer_ns: Option<f64>,
    /// Fraction of offered windows the server dropped or shed to hold its
    /// latency budget; present only on `streaming_overload` rows.
    shed_rate: Option<f64>,
    /// In-memory size of the loaded packed model; present only on
    /// `artifact_load` rows.
    model_bytes: Option<usize>,
    /// Serialized `.thnt2` size the row loaded from; present only on
    /// `artifact_load` rows. Smaller than `model_bytes` when the artifact
    /// run-length codes its weights.
    bytes_on_disk: Option<usize>,
    /// Worker-shard count of the sharded serving layer; present only on
    /// `streaming_multi*/…/shards*` rows.
    shards: Option<usize>,
    /// Median feed-to-vote window latency over the whole run; present only
    /// on sharded serving rows.
    p50_ns: Option<u64>,
    /// 99th-percentile feed-to-vote window latency; present only on sharded
    /// serving rows.
    p99_ns: Option<u64>,
}

// Hand-written so `windows_per_sec` / `kernel` are omitted (not null) on
// rows they do not apply to; the vendored serde stub has no
// `skip_serializing_if`.
impl serde::Serialize for BenchRow {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.serialize_value()),
            ("iters".to_string(), self.iters.serialize_value()),
            ("mean_ns".to_string(), self.mean_ns.serialize_value()),
            ("median_ns".to_string(), self.median_ns.serialize_value()),
        ];
        if let Some(wps) = self.windows_per_sec {
            fields.push(("windows_per_sec".to_string(), wps.serialize_value()));
        }
        if let Some(kernel) = self.kernel {
            fields.push(("kernel".to_string(), kernel.to_string().serialize_value()));
        }
        if let Some(ns) = self.mfcc_ns {
            fields.push(("mfcc_ns".to_string(), ns.serialize_value()));
        }
        if let Some(ns) = self.infer_ns {
            fields.push(("infer_ns".to_string(), ns.serialize_value()));
        }
        if let Some(rate) = self.shed_rate {
            fields.push(("shed_rate".to_string(), rate.serialize_value()));
        }
        if let Some(b) = self.model_bytes {
            fields.push(("model_bytes".to_string(), b.serialize_value()));
        }
        if let Some(b) = self.bytes_on_disk {
            fields.push(("bytes_on_disk".to_string(), b.serialize_value()));
        }
        if let Some(s) = self.shards {
            fields.push(("shards".to_string(), s.serialize_value()));
        }
        if let Some(ns) = self.p50_ns {
            fields.push(("p50_ns".to_string(), ns.serialize_value()));
        }
        if let Some(ns) = self.p99_ns {
            fields.push(("p99_ns".to_string(), ns.serialize_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Runs `f` for `iters` iterations after `iters / 10 + 1` warmup runs and
/// returns `(mean_ns, median_ns)` without printing or building a row.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    for _ in 0..iters / 10 + 1 {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    (mean, median)
}

/// Times `f` for `iters` iterations after `iters / 10 + 1` warmup runs.
fn time<T>(name: &str, iters: usize, f: impl FnMut() -> T) -> BenchRow {
    let (mean, median) = measure(iters, f);
    println!("{name:<42} {median:>12.0} ns (median of {iters})");
    BenchRow {
        name: name.to_string(),
        iters,
        mean_ns: mean,
        median_ns: median,
        windows_per_sec: None,
        kernel: None,
        mfcc_ns: None,
        infer_ns: None,
        shed_rate: None,
        model_bytes: None,
        bytes_on_disk: None,
        shards: None,
        p50_ns: None,
        p99_ns: None,
    }
}

/// [`time`] for a packed-kernel row pinned to one dispatch backend: the row
/// is named `<base>/<kernel>` and carries the `kernel` field.
fn time_kernel<T>(base: &str, d: &KernelDispatch, iters: usize, f: impl FnMut() -> T) -> BenchRow {
    let mut row = time(&format!("{base}/{}", d.kernel()), iters, f);
    row.kernel = Some(d.kernel().name());
    row
}

/// Times one streaming window (MFCC + normalize + model) on `backend`:
/// prefills the detector's one-second ring, then feeds hop-sized chunks so
/// every push triggers exactly one inference. The row also carries
/// `mfcc_ns`/`infer_ns` — the two stages of the same window timed in
/// isolation (planned parallel extraction of a one-second window, and one
/// single-clip backend call), so regressions attribute to a stage instead
/// of hiding in the end-to-end number.
fn time_streaming(backend: &dyn InferenceBackend, iters: usize) -> BenchRow {
    let config = StreamingConfig::default();
    let mut det = StreamingDetector::new(backend, config, vec![0.0; 10], vec![1.0; 10]);
    let mut rng = SmallRng::seed_from_u64(42);
    let prefill = gaussian(&[16_000], 0.0, 0.1, &mut rng);
    det.push(prefill.data());
    let chunk = gaussian(&[config.hop], 0.0, 0.1, &mut rng);
    let name = format!("streaming_window/{}_backend", backend.backend_name());
    let mut row = time(&name, iters, || det.push(chunk.data()));
    row.windows_per_sec = Some(1e9 / row.median_ns);
    let mfcc = Mfcc::new(MfccConfig::paper());
    let mut scratch = mfcc.plan().scratch();
    let mut feats = vec![0.0f32; 49 * 10];
    let (_, mfcc_ns) =
        measure(iters, || mfcc.plan().compute_into_par(&mut scratch, prefill.data(), &mut feats));
    let clip = gaussian(&[1, 1, 49, 10], 0.0, 1.0, &mut rng);
    let (_, infer_ns) = measure(iters, || backend.infer(&clip));
    row.mfcc_ns = Some(mfcc_ns);
    row.infer_ns = Some(infer_ns);
    println!(
        "{:<42} {:>12.1} windows/sec (mfcc {:.0} ns + infer {:.0} ns)",
        "",
        1e9 / row.median_ns,
        mfcc_ns,
        infer_ns
    );
    row
}

/// Times the multi-session serving layer: `sessions` concurrent streams fed
/// one hop each per round, every round's due windows batched through a
/// single `tick`. Reported throughput is aggregate windows/sec across all
/// sessions.
fn time_multi_stream(backend: &dyn InferenceBackend, sessions: usize, iters: usize) -> BenchRow {
    let config = StreamingConfig::default();
    let mut server = StreamServer::new(backend, config, vec![0.0; 10], vec![1.0; 10]);
    let mut rng = SmallRng::seed_from_u64(43);
    let ids: Vec<_> =
        (0..sessions).map(|_| server.try_open().expect("open bench session")).collect();
    let prefill = gaussian(&[16_000], 0.0, 0.1, &mut rng);
    for &id in &ids {
        server.try_feed(id, prefill.data()).expect("prefill bench session");
    }
    server.tick();
    let chunk = gaussian(&[config.hop], 0.0, 0.1, &mut rng);
    let name = format!("streaming_multi{}/{}_backend", sessions, backend.backend_name());
    let mut row = time(&name, iters, || {
        for &id in &ids {
            server.try_feed(id, chunk.data()).expect("feed bench session");
        }
        server.tick()
    });
    let wps = sessions as f64 * 1e9 / row.median_ns;
    row.windows_per_sec = Some(wps);
    println!("{:<42} {wps:>12.1} windows/sec ({sessions} sessions)", "");
    row
}

/// Times the serving layer under deliberate overload: `sessions` streams
/// each offer one window per round while `tick_budget` caps a tick at half
/// that, so the server must shed to hold its latency budget. The row's
/// `windows_per_sec` is the *sustained* rate (windows actually served, not
/// offered) and `shed_rate` is the fraction of offered windows dropped or
/// shed — the overload contract is that both stay positive and bounded
/// instead of the queue growing without limit.
fn time_overload(backend: &dyn InferenceBackend, sessions: usize, iters: usize) -> BenchRow {
    let config = StreamingConfig::default();
    let budget = (sessions / 2).max(1);
    let mut server = StreamServer::new(backend, config, vec![0.0; 10], vec![1.0; 10])
        .queue_bound(2)
        .tick_budget(budget);
    let mut rng = SmallRng::seed_from_u64(45);
    let ids: Vec<_> =
        (0..sessions).map(|_| server.try_open().expect("open bench session")).collect();
    let prefill = gaussian(&[16_000], 0.0, 0.1, &mut rng);
    for &id in &ids {
        server.try_feed(id, prefill.data()).expect("prefill bench session");
    }
    server.tick();
    let chunk = gaussian(&[config.hop], 0.0, 0.1, &mut rng);
    let before = server.stats();
    let name = format!("streaming_overload{sessions}/{}_backend", backend.backend_name());
    let (mean, median) = measure(iters, || {
        for &id in &ids {
            server.try_feed(id, chunk.data()).expect("feed bench session");
        }
        server.tick()
    });
    let after = server.stats();
    // `measure` warms up with `iters / 10 + 1` extra rounds on the same
    // server, so per-round accounting must divide by every round run.
    let rounds = (iters + iters / 10 + 1) as f64;
    let offered = (after.windows_fed - before.windows_fed) as f64;
    let served = (after.windows_served - before.windows_served) as f64;
    let discarded = ((after.windows_dropped - before.windows_dropped)
        + (after.windows_shed - before.windows_shed)) as f64;
    let shed_rate = if offered > 0.0 { discarded / offered } else { 0.0 };
    let wps = (served / rounds) * 1e9 / median;
    println!("{name:<42} {median:>12.0} ns (median of {iters})");
    println!(
        "{:<42} {wps:>12.1} windows/sec sustained (shed {:.0}% of offered load)",
        "",
        shed_rate * 100.0
    );
    BenchRow {
        name,
        iters,
        mean_ns: mean,
        median_ns: median,
        windows_per_sec: Some(wps),
        kernel: None,
        mfcc_ns: None,
        infer_ns: None,
        shed_rate: Some(shed_rate),
        model_bytes: None,
        bytes_on_disk: None,
        shards: None,
        p50_ns: None,
        p99_ns: None,
    }
}

/// Times the sharded serving layer: `sessions` streams pinned across
/// `shard_count` worker threads, one hop fed per session per round, every
/// round's windows flushed through a barrier so one iteration serves
/// exactly `sessions` windows. Throughput is aggregate windows/sec; the row
/// also carries the run's feed-to-vote p50/p99 window latency. The backend
/// must be `Sync` (shards share it by reference), which is why the dense
/// interpreter is absent from these rows.
fn time_sharded_multi<B: InferenceBackend + Sync>(
    backend: &B,
    sessions: usize,
    shard_count: usize,
    iters: usize,
) -> BenchRow {
    let config = StreamingConfig::default();
    let serve = ServeConfig {
        // Barrier-driven rounds: no size or deadline trigger mid-round.
        max_batch: 0,
        channel_capacity: 256,
        ..ServeConfig::with_shards(shard_count)
    };
    let spec = ModelSpec::new(backend, MfccConfig::paper(), vec![0.0; 10], vec![1.0; 10]);
    ShardedStreamServer::run(vec![spec], config, serve, |server| {
        let mut rng = SmallRng::seed_from_u64(43);
        let ids: Vec<_> =
            (0..sessions).map(|_| server.try_open().expect("open bench session")).collect();
        let prefill = gaussian(&[16_000], 0.0, 0.1, &mut rng);
        for &id in &ids {
            server.try_feed(id, prefill.data()).expect("prefill bench session");
        }
        server.flush();
        let chunk = gaussian(&[config.hop], 0.0, 0.1, &mut rng);
        let name = format!(
            "streaming_multi{sessions}/{}_backend/shards{shard_count}",
            backend.backend_name()
        );
        let mut row = time(&name, iters, || {
            for &id in &ids {
                server.try_feed(id, chunk.data()).expect("feed bench session");
            }
            server.flush()
        });
        let wps = sessions as f64 * 1e9 / row.median_ns;
        row.windows_per_sec = Some(wps);
        row.shards = Some(shard_count);
        let latency = server.latency();
        row.p50_ns = Some(latency.p50_ns);
        row.p99_ns = Some(latency.p99_ns);
        println!(
            "{:<42} {wps:>12.1} windows/sec ({sessions} sessions, {shard_count} shards, \
             p50 {:.0} µs, p99 {:.0} µs)",
            "",
            latency.p50_ns as f64 / 1e3,
            latency.p99_ns as f64 / 1e3
        );
        row
    })
}

fn windows_per_sec(rows: &[BenchRow], name: &str) -> f64 {
    rows.iter()
        .find(|r| r.name == name)
        .and_then(|r| r.windows_per_sec)
        .unwrap_or_else(|| panic!("missing streaming row {name}"))
}

fn main() {
    let smoke = matches!(std::env::var("THNT_PROFILE").as_deref(), Ok("smoke") | Ok("SMOKE"));
    // Kernel rows are µs-scale, so even smoke can afford enough iterations
    // for medians stable enough to back the SIMD>=2x-scalar CI gate.
    let (kernel_iters, e2e_iters) = if smoke { (200, 3) } else { (400, 20) };
    // Streaming windows are ~ms-scale after the ring-buffer fix, so even the
    // smoke profile can afford enough iterations for a median stable enough
    // to back the packed-beats-dense CI gate on noisy shared runners.
    let stream_iters = if smoke { 30 } else { 60 };
    let mut rng = SmallRng::seed_from_u64(0);
    let mut rows = Vec::new();

    // Every dispatch backend this host supports, widest first; the first
    // entry is what `KernelDispatch::get()` routes production traffic to
    // (absent a THNT_KERNEL override).
    let kernels: Vec<KernelDispatch> =
        Kernel::available().into_iter().map(|k| KernelDispatch::new(k).unwrap()).collect();
    println!(
        "kernel backends: {} (active: {})\n",
        kernels.iter().map(|d| d.kernel().name()).collect::<Vec<_>>().join(", "),
        KernelDispatch::get().kernel()
    );

    // Ternary matvec: dense f32 vs per-entry decode vs word-level bitplanes,
    // the latter once per dispatch backend.
    let w = ternary_values(&gaussian(&[256, 256], 0.0, 1.0, &mut rng)).values;
    let packed = PackedTernary::from_tensor(&w);
    let x = gaussian(&[256], 0.0, 1.0, &mut rng);
    rows.push(time("matvec_256x256/dense_f32", kernel_iters, || matvec(&w, &x)));
    rows.push(time("matvec_256x256/packed_per_entry", kernel_iters, || {
        packed.matvec_per_entry(x.data())
    }));
    let mut y = vec![0.0f32; 256];
    for d in &kernels {
        rows.push(time_kernel("matvec_256x256/packed_word", d, kernel_iters, || {
            packed.matvec_into_with(d, x.data(), &mut y)
        }));
    }

    // Bit-sliced int8 popcount matvec on the same bitplanes: the activation
    // vector is sliced once up front (exactly how the quantized engine reuses
    // planes per layer), so the row times pure AND+popcount work with no f32
    // lanes at all.
    let sliced = BitSliced::quantize(x.data(), 256, 1.0 / 64.0);
    let mut yq = vec![0i32; 256];
    for d in &kernels {
        rows.push(time_kernel("quantized_matvec_256x256/bitsliced", d, kernel_iters, || {
            packed.bitsliced_matvec_into_with(d, &sliced, &mut yq)
        }));
    }

    // Batched activations.
    let xb = gaussian(&[64, 256], 0.0, 1.0, &mut rng);
    rows.push(time("matmul_64x256x256/dense_f32", kernel_iters, || matmul_nt(&xb, &w)));
    for d in &kernels {
        rows.push(time_kernel("matmul_64x256x256/packed_word", d, kernel_iters, || {
            packed.matmul_with(d, &xb)
        }));
    }

    // The conv engine's column-matrix kernel at the hybrid net's first-layer
    // shape (`W_b · im2col`: r=48 rows, 40-tap patches, 490 output positions).
    let wconv = ternary_values(&gaussian(&[48, 40], 0.0, 1.0, &mut rng)).values;
    let pconv = PackedTernary::from_tensor(&wconv);
    let cols_m = gaussian(&[40, 490], 0.0, 1.0, &mut rng);
    let mut rhs_out = vec![0.0f32; 48 * 490];
    for d in &kernels {
        rows.push(time_kernel("matmul_rhs_48x40x490/packed_word", d, kernel_iters, || {
            pconv.matmul_rhs_into_with(d, &cols_m, &mut rhs_out)
        }));
    }

    // End-to-end through the unified InferenceBackend trait: the dense
    // frozen path vs the compiled packed engine vs the calibrated quantized
    // popcount engine, all swappable behind &dyn.
    let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
    net.activate_quantization();
    net.freeze_ternary();
    let engine = PackedStHybrid::compile(&net);
    let calib = gaussian(&[8, 1, 49, 10], 0.0, 1.0, &mut rng);
    let quantized =
        QuantizedStHybrid::calibrate_and_compile(&engine, &calib, CalibrationMethod::default())
            .expect("calibrate quantized bench engine");
    let clip = gaussian(&[1, 1, 49, 10], 0.0, 1.0, &mut rng);
    let dense_backend = net.dense_backend();
    let backends: [&dyn InferenceBackend; 3] = [&dense_backend, &engine, &quantized];
    let active = KernelDispatch::get().kernel().name();
    let on_dispatch = |name: &str| matches!(name, "packed" | "quantized").then_some(active);
    for backend in backends {
        let name = format!("st_hybrid_1clip/{}_backend", backend.backend_name());
        let mut row = time(&name, e2e_iters, || backend.infer(&clip));
        // End-to-end packed/quantized rows execute on the process-wide
        // dispatch.
        row.kernel = on_dispatch(backend.backend_name());
        rows.push(row);
    }

    // Sanity: the two paths must agree before the numbers mean anything.
    let dense = dense_backend.infer(&clip);
    let fast = engine.infer(&clip);
    let max_err =
        dense.data().iter().zip(fast.data()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(max_err < 1e-4, "packed engine diverged from dense path: {max_err}");

    // Cold-start artifact loading: the owning loader copies (and
    // re-validates) every bitplane out of the blob; the zero-copy loader
    // borrows them straight from the aligned buffer, so its cost is O(header
    // validation). The RLE row shows what the smallest on-disk format pays
    // at load time for its size.
    {
        let model_bytes = engine.model_bytes();
        let mut v3 = Vec::new();
        save_thnt2_with(&engine, None, SaveOptions::v3(), &mut v3).expect("save v3 bench blob");
        let mut rle = Vec::new();
        save_thnt2_with(&engine, None, SaveOptions::v3_rle(), &mut rle)
            .expect("save v3-rle bench blob");
        let aligned = AlignedBytes::from_slice(&v3);
        let loads = [
            ("artifact_load/owned", &v3, false),
            ("artifact_load/borrowed", &v3, true),
            ("artifact_load/owned_rle", &rle, false),
        ];
        for (name, blob, borrow) in loads {
            let mut row = if borrow {
                time(name, kernel_iters, || {
                    PackedStHybrid::load_ref(&aligned).expect("bench load_ref")
                })
            } else {
                time(name, kernel_iters, || {
                    PackedStHybrid::load(blob.as_slice()).expect("bench load")
                })
            };
            row.model_bytes = Some(model_bytes);
            row.bytes_on_disk = Some(blob.len());
            println!(
                "{:<42} {:>12.1} µs ({} bytes on disk, {model_bytes} in memory)",
                "",
                row.median_ns / 1e3,
                blob.len()
            );
            rows.push(row);
        }
        let median = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing load row {name}"))
                .median_ns
        };
        let inline_ratio = median("artifact_load/owned") / median("artifact_load/borrowed");
        let rle_ratio = median("artifact_load/owned_rle") / median("artifact_load/borrowed");
        println!(
            "\nartifact_load: borrowed is {inline_ratio:.1}x owned (same inline blob), \
             {rle_ratio:.1}x the owning RLE cold start"
        );
        if std::env::var("THNT_BENCH_ASSERT_LOAD").as_deref() == Ok("1") {
            // The gate pins down two things about the zero-copy path. First,
            // structurally: an aligned v3 load must not copy a single
            // bitplane. Second, as a cold-start ratio: each deployment
            // strategy loads its natural artifact — owning processes ship
            // the RLE-compressed blob (they decode into fresh planes either
            // way, so they take the smaller file), while a mapped fleet
            // ships inline v3 and borrows it. The borrowed cold start must
            // beat the owning one by >= 10x; on the standard net it is
            // >~40x, so the margin also absorbs timer noise on small
            // containers. The same-format `inline_ratio` is reported above
            // for reference but not gated: both of those loads walk the
            // same section structure, so their gap only measures copy
            // bandwidth on a ~20 KB blob.
            let (loaded, _) = PackedStHybrid::load_ref(&aligned).expect("bench load_ref");
            assert!(loaded.bitplanes_borrowed(), "aligned v3 load_ref must borrow every bitplane");
            assert!(
                rle_ratio >= 10.0,
                "zero-copy cold start must be >= 10x the owning (RLE artifact) cold start, \
                 measured {rle_ratio:.1}x"
            );
            println!("load assertion: planes borrowed, borrowed >= 10x owning cold start ✓");
        }
    }

    // The MFCC front-end itself, one one-second window per iteration:
    // the retired straight-line pipeline vs the planned pipeline (serial
    // per-window driver as used by the batched server, and the parallel
    // single-stream driver the detector uses). All planned rows execute on
    // the process-wide DSP dispatch.
    let dsp_kernel = DspDispatch::get().kernel().name();
    {
        let mut rng = SmallRng::seed_from_u64(44);
        let window = gaussian(&[16_000], 0.0, 0.1, &mut rng);
        let legacy = ReferenceMfcc::new(MfccConfig::paper());
        let mut row = time("mfcc_window/legacy", stream_iters, || legacy.compute(window.data()));
        row.windows_per_sec = Some(1e9 / row.median_ns);
        rows.push(row);
        let mfcc = Mfcc::new(MfccConfig::paper());
        let mut scratch = mfcc.plan().scratch();
        let mut feats = vec![0.0f32; 49 * 10];
        let mut row = time("mfcc_window/planned", stream_iters, || {
            mfcc.plan().compute_into(&mut scratch, window.data(), &mut feats)
        });
        row.windows_per_sec = Some(1e9 / row.median_ns);
        row.kernel = Some(dsp_kernel);
        rows.push(row);
        let mut row = time("mfcc_window/planned_par", stream_iters, || {
            mfcc.plan().compute_into_par(&mut scratch, window.data(), &mut feats)
        });
        row.windows_per_sec = Some(1e9 / row.median_ns);
        row.kernel = Some(dsp_kernel);
        rows.push(row);
    }

    // Streaming-path throughput (MFCC + normalize + model per window),
    // dense vs packed backend — with the O(1) ring buffer the backend
    // choice is visible here instead of drowning in per-sample memmoves.
    for backend in backends {
        let mut row = time_streaming(backend, stream_iters);
        row.kernel = on_dispatch(backend.backend_name());
        rows.push(row);
    }

    // Multi-session serving: 8 concurrent streams batched through one
    // shared backend per tick.
    for backend in backends {
        let mut row = time_multi_stream(backend, 8, stream_iters);
        row.kernel = on_dispatch(backend.backend_name());
        rows.push(row);
    }

    // The same 8 streams under deliberate overload (offered load is twice
    // the per-tick budget): sustained throughput and shed rate.
    for backend in backends {
        let mut row = time_overload(backend, 8, stream_iters);
        row.kernel = on_dispatch(backend.backend_name());
        rows.push(row);
    }

    // Sharded serving: the same barrier-driven round shape as
    // `streaming_multi8`, but sessions pinned across worker threads. The
    // dense interpreter is absent — shards share the backend by reference,
    // which requires `Sync`, and the interpreter's scratch state is not.
    // Iteration counts scale down with the session count so one row serves
    // roughly the same number of windows regardless of fan-out.
    for &sessions in &[64usize, 256, 1024] {
        let iters = (stream_iters * 64 / sessions).max(3);
        for &shard_count in &[1usize, 4] {
            let mut row = time_sharded_multi(&engine, sessions, shard_count, iters);
            row.kernel = on_dispatch(engine.backend_name());
            rows.push(row);
            let mut row = time_sharded_multi(&quantized, sessions, shard_count, iters);
            row.kernel = on_dispatch(quantized.backend_name());
            rows.push(row);
        }
    }

    // SIMD-vs-scalar report (and optional CI gate): the widest backend's
    // matvec against the scalar reference on the same bitplanes. A host
    // with no SIMD backend cannot satisfy the gate — asserting there must
    // fail loudly, not skip silently and report green.
    let assert_kernel = std::env::var("THNT_BENCH_ASSERT_KERNEL").as_deref() == Ok("1");
    if kernels.len() > 1 {
        let median = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing kernel row {name}"))
                .median_ns
        };
        let simd = kernels[0].kernel();
        let ratio = median("matvec_256x256/packed_word/scalar")
            / median(&format!("matvec_256x256/packed_word/{simd}"));
        println!("\nmatvec_256x256: {simd} is {ratio:.2}x scalar");
        if assert_kernel {
            assert!(
                ratio >= 2.0,
                "SIMD kernel ({simd}) must be >= 2x the scalar matvec, measured {ratio:.2}x"
            );
            println!("kernel assertion: {simd} >= 2x scalar ✓");
        }
    } else if assert_kernel {
        panic!(
            "THNT_BENCH_ASSERT_KERNEL=1 but this host has no SIMD kernel backend \
             (only {}): the gate cannot run",
            kernels[0].kernel()
        );
    }

    // Popcount-vs-f32 report (and optional CI gate): the bit-sliced int8
    // matvec against the f32-lane packed matvec on the *same* dispatch
    // backend — the widest this host has — at the same 256x256 shape. The
    // quantized engine's whole premise is that AND+popcount beats f32
    // multiply-accumulate lanes; this is where that premise is measured
    // instead of assumed.
    {
        let median = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing kernel row {name}"))
                .median_ns
        };
        let widest = kernels[0].kernel();
        let quant_ratio = median(&format!("matvec_256x256/packed_word/{widest}"))
            / median(&format!("quantized_matvec_256x256/bitsliced/{widest}"));
        println!("\nquantized_matvec_256x256: popcount ({widest}) is {quant_ratio:.2}x f32 lanes");
        if std::env::var("THNT_BENCH_ASSERT_QUANT").as_deref() == Ok("1") {
            assert!(
                quant_ratio >= 2.0,
                "bit-sliced popcount matvec must be >= 2x the f32-lane packed matvec \
                 on the widest backend ({widest}), measured {quant_ratio:.2}x"
            );
            println!("quant assertion: popcount >= 2x f32 lanes ✓");
        }
    }

    // CI gate: the planned MFCC front-end must hold its speedup over the
    // retired straight-line pipeline (serial driver vs serial driver —
    // no thread-count credit).
    let median = |rows: &[BenchRow], name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench row {name}"))
            .median_ns
    };
    let dsp_ratio = median(&rows, "mfcc_window/legacy") / median(&rows, "mfcc_window/planned");
    println!("\nmfcc_window: planned ({dsp_kernel}) is {dsp_ratio:.2}x legacy");
    if std::env::var("THNT_BENCH_ASSERT_DSP").as_deref() == Ok("1") {
        assert!(
            dsp_ratio >= 3.0,
            "planned MFCC must be >= 3x the legacy per-call pipeline, measured {dsp_ratio:.2}x"
        );
        println!("dsp assertion: planned >= 3x legacy ✓");
    }

    // CI gate: packed streaming must beat dense now that the ring buffer is
    // no longer the bottleneck.
    let dense_wps = windows_per_sec(&rows, "streaming_window/dense_backend");
    let packed_wps = windows_per_sec(&rows, "streaming_window/packed_backend");
    if std::env::var("THNT_BENCH_ASSERT_STREAMING").as_deref() == Ok("1") {
        assert!(
            packed_wps > dense_wps,
            "packed streaming ({packed_wps:.1} w/s) must beat dense ({dense_wps:.1} w/s) — \
             the ring-buffer regression is back"
        );
        println!("\nstreaming assertion: packed {packed_wps:.1} w/s > dense {dense_wps:.1} w/s ✓");
        // Overload gate: with offered load at twice the tick budget the
        // server must keep serving (sustained throughput stays positive)
        // AND keep shedding (the excess is discarded, not queued forever).
        for row in rows.iter().filter(|r| r.name.starts_with("streaming_overload")) {
            let wps = row.windows_per_sec.unwrap_or(0.0);
            let shed = row.shed_rate.unwrap_or(0.0);
            assert!(
                wps > 0.0 && shed > 0.0 && shed < 1.0,
                "{}: overload must shed some but not all load \
                 (sustained {wps:.1} w/s, shed rate {shed:.2})",
                row.name
            );
        }
        println!("overload assertion: sustained throughput with bounded shedding ✓");
    }

    // CI gate: sharding must actually buy parallel throughput. Compared on
    // the packed engine at 256 sessions — enough concurrent streams that
    // per-round fixed costs are amortised and the shards stay busy. Only
    // asserted where CI has verified >= 4 hardware threads; a single-core
    // host serialises the shards and the ratio is meaningless there.
    let shard1_wps = windows_per_sec(&rows, "streaming_multi256/packed_backend/shards1");
    let shard4_wps = windows_per_sec(&rows, "streaming_multi256/packed_backend/shards4");
    let scaling = shard4_wps / shard1_wps;
    println!("\nstreaming_multi256: 4 shards are {scaling:.2}x 1 shard");
    if std::env::var("THNT_BENCH_ASSERT_SCALING").as_deref() == Ok("1") {
        assert!(
            scaling >= 2.0,
            "4-shard serving ({shard4_wps:.1} w/s) must be >= 2x 1-shard \
             ({shard1_wps:.1} w/s) at 256 sessions, measured {scaling:.2}x"
        );
        println!("scaling assertion: 4 shards >= 2x 1 shard ✓");
    }

    let json = serde_json::to_string_pretty(&rows).expect("serialize bench rows");
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    println!(
        "\n{} rows written to BENCH_kernels.json (max packed-vs-dense error {max_err:.2e})",
        rows.len()
    );
}
