//! Regenerates Table 6: post-training quantization of ST-HybridNet.

use thnt_bench::{banner, kb, mops, pct, TextTable};
use thnt_core::experiments::table6;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 6", "quantized ST-HybridNet weights/activations + memory footprint", profile);
    let rows = table6(&profile.settings());
    let mut t = TextTable::new(&[
        "network",
        "acc(%)",
        "ops",
        "model",
        "footprint",
        "| paper acc",
        "paper model",
        "paper footprint",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.network.clone(),
            pct(r.acc),
            mops(r.ops),
            kb(r.model_kb),
            kb(r.footprint_kb),
            format!("| {}", pct(r.paper_acc)),
            kb(r.paper_model_kb),
            kb(r.paper_footprint_kb),
        ]);
    }
    println!("{}", t.render());
    if rows.len() >= 2 {
        let ds = &rows[0];
        let q8 = &rows[1];
        println!(
            "Headline check: model size reduced {:.1}% (paper 52.2%), footprint {:.1}% (paper 30.6%).",
            100.0 * (1.0 - q8.model_kb / ds.model_kb),
            100.0 * (1.0 - q8.footprint_kb / ds.footprint_kb),
        );
    }
    println!("JSON written to target/experiments/table6.json");
}
