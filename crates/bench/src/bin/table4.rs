//! Regenerates Table 4: ST-HybridNet vs HybridNet, DS-CNN and ST-DS-CNN.

use thnt_bench::{banner, kb, mops, pct, TextTable};
use thnt_core::experiments::table4;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 4", "strassenified hybrid network (ST-HybridNet) vs ancestors", profile);
    let rows = table4(&profile.settings());
    let mut t = TextTable::new(&[
        "network",
        "acc(%)",
        "muls",
        "adds",
        "ops",
        "model",
        "| paper acc",
        "paper ops",
        "paper model",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.network.clone(),
            pct(r.acc),
            if r.muls > 0 { mops(r.muls) } else { "-".into() },
            if r.adds > 0 { mops(r.adds) } else { "-".into() },
            mops(r.ops),
            kb(r.model_kb),
            format!("| {}", pct(r.paper_acc)),
            format!("{:.2}M", r.paper_ops_m),
            kb(r.paper_model_kb),
        ]);
    }
    println!("{}", t.render());
    if let (Some(ds), Some(st)) = (
        rows.iter().find(|r| r.network == "DS-CNN"),
        rows.iter().find(|r| r.network.contains("without KD")),
    ) {
        let dmuls = 100.0 * (1.0 - st.muls as f64 / ds.macs as f64);
        let dops = 100.0 * (1.0 - st.ops as f64 / ds.ops as f64);
        println!("Headline check vs DS-CNN: muls reduced {dmuls:.2}% (paper 98.89%),");
        println!("total ops reduced {dops:.1}% (paper 11.1%).");
    }
    println!("JSON written to target/experiments/table4.json");
}
