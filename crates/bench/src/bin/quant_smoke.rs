//! CI accuracy gate for the quantized popcount engine: train a
//! profile-sized ST-HybridNet, compile the f32 packed engine and the
//! calibrated bit-sliced quantized engine from the *same* frozen net, score
//! both on the test set through the shared [`InferenceBackend`] surface,
//! and fail (panic, non-zero exit) unless the quantized accuracy lands
//! within 1.0 point of the f32 packed engine's — the paper's post-training
//! quantization claim, enforced on every CI run instead of asserted once.
//!
//! Also round-trips the quantized engine through its `.thnt2` artifact and
//! requires the reload to be bitwise identical, so the accuracy that was
//! just gated is provably the accuracy a deployed artifact serves.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_core::train::train_st_hybrid;
use thnt_core::{HybridConfig, PackedStHybrid, Profile, QuantizedStHybrid, StHybridNet};
use thnt_data::{DatasetConfig, SpeechCommands, Split};
use thnt_nn::{evaluate_backend, InferenceBackend, StepDecay};
use thnt_quant::CalibrationMethod;
use thnt_tensor::Tensor;

fn main() {
    let mut profile = Profile::from_env().settings();
    // The generic smoke profile (36 test clips, 1 epoch/phase) cannot even
    // express a 1.0-point accuracy delta — one clip is 2.8 points — so this
    // gate runs its own floor: enough test clips that a clip flip is 0.28
    // points, and enough epochs that both engines are far from chance.
    if profile.dataset.per_class_test < 25 {
        profile.dataset = DatasetConfig {
            per_class_train: 30,
            per_class_val: 6,
            per_class_test: 25,
            ..profile.dataset
        };
        profile.st_epochs_per_phase = profile.st_epochs_per_phase.max(3);
    }
    let data = SpeechCommands::generate(profile.dataset);
    let (xt, yt) = data.features(Split::Train);
    let (xv, yv) = data.features(Split::Val);
    let (xe, ye) = data.features(Split::Test);

    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut st = StHybridNet::new(HybridConfig::paper(), &mut rng);
    let schedule = StepDecay {
        initial: 0.004,
        factor: 0.3,
        every: profile.st_epochs_per_phase.div_ceil(3).max(1),
    };
    // Ends with quantization activated and ternary weights frozen — the
    // state both engines compile from.
    train_st_hybrid(
        &mut st,
        None,
        &xt,
        &yt,
        &xv,
        &yv,
        profile.st_epochs_per_phase,
        schedule,
        profile.seed + 11,
    );
    let packed = PackedStHybrid::compile(&st);

    // Calibrate activation scales on (up to) 64 training clips — held-out
    // test data never informs the schedule.
    let clip = 49 * 10;
    let n_calib = (xt.data().len() / clip).min(64);
    let calib = Tensor::from_vec(xt.data()[..n_calib * clip].to_vec(), &[n_calib, 1, 49, 10]);
    let quantized =
        QuantizedStHybrid::calibrate_and_compile(&packed, &calib, CalibrationMethod::default())
            .expect("calibrate quantized engine");

    let packed_acc = evaluate_backend(&packed, &xe, &ye, 64) * 100.0;
    let quant_acc = evaluate_backend(&quantized, &xe, &ye, 64) * 100.0;
    let delta = packed_acc - quant_acc;
    println!("quant smoke: packed {packed_acc:.2}% vs quantized {quant_acc:.2}% (delta {delta:+.2} points)");
    // One-sided: quantization must not *cost* more than 1.0 point; landing
    // above the f32 engine is fine.
    assert!(
        delta <= 1.0,
        "quantized accuracy must stay within 1.0 point of the f32 packed engine: \
         packed {packed_acc:.2}% vs quantized {quant_acc:.2}%"
    );

    // The gated accuracy must be the deployable accuracy: save, reload,
    // demand bitwise equality (scales and bitplanes), and spot-check logits.
    let mut blob = Vec::new();
    quantized.save(None, &mut blob).expect("save quantized .thnt2");
    let (reloaded, _) = QuantizedStHybrid::load(blob.as_slice()).expect("load quantized .thnt2");
    assert_eq!(reloaded, quantized, "quantized artifact round-trip must be bitwise identical");
    let probe = Tensor::from_vec(xe.data()[..2 * clip].to_vec(), &[2, 1, 49, 10]);
    let a = quantized.infer(&probe);
    let b = reloaded.infer(&probe);
    assert_eq!(
        a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "reloaded quantized engine must produce bit-identical logits"
    );

    println!(
        "quant smoke OK: artifact {} bytes, {} adds/sample, accuracy gate <= 1.0 point ✓",
        blob.len(),
        quantized.adds_per_sample()
    );
}
