//! Regenerates Table 3: the baseline zoo vs the uncompressed HybridNet.

use thnt_bench::{banner, kb, mops, pct, TextTable};
use thnt_core::experiments::table3;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 3", "HybridNet vs DS-CNN and prior KWS baselines", profile);
    let rows = table3(&profile.settings());
    let mut t = TextTable::new(&[
        "network",
        "acc(%)",
        "macs",
        "model",
        "| paper acc",
        "paper ops",
        "paper model",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.network.clone(),
            pct(r.acc),
            mops(r.macs),
            kb(r.model_kb),
            format!("| {}", pct(r.paper_acc)),
            format!("{:.2}M", r.paper_ops_m),
            kb(r.paper_model_kb),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: HybridNet matches DS-CNN accuracy with ~44% fewer ops");
    println!("but a larger (fp32) model — the motivation for strassenifying it (Table 4).");
    println!("JSON written to target/experiments/table3.json");
}
