//! CI smoke test for the `.thnt2` artifact path: compile a frozen
//! ST-HybridNet, save it, reload it with no training stack involved, and
//! assert the reloaded engine's logits match both the in-memory compile and
//! the dense frozen path — then run the streaming detector end-to-end on
//! the loaded backend through the [`InferenceBackend`] trait.
//!
//! Exits non-zero (panics) on any mismatch, so CI fails loudly if the
//! serialization ever drifts from the engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_core::{
    HybridConfig, InferenceMeta, PackedStHybrid, StHybridNet, StreamingConfig, StreamingDetector,
};
use thnt_dsp::MfccConfig;
use thnt_nn::{InferenceBackend, Model};
use thnt_strassen::Strassenified;
use thnt_tensor::gaussian;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0);
    let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
    net.activate_quantization();
    net.freeze_ternary();
    let engine = PackedStHybrid::compile(&net);

    let meta = InferenceMeta {
        mfcc: MfccConfig::paper(),
        norm_mean: vec![0.0; 10],
        norm_std: vec![1.0; 10],
    };
    let path = std::path::Path::new("target").join("thnt2_smoke.thnt2");
    std::fs::create_dir_all("target").expect("create target dir");
    engine.save_file(Some(&meta), &path).expect("save .thnt2");
    let artifact_bytes = std::fs::metadata(&path).expect("stat artifact").len();

    let (loaded, loaded_meta) = PackedStHybrid::load_file(&path).expect("load .thnt2");
    assert_eq!(loaded, engine, "reloaded engine must be bitwise identical");
    let loaded_meta = loaded_meta.expect("artifact carries serving metadata");

    // Logits: in-memory compile vs reloaded artifact (must be exact — same
    // bitplanes, same kernels) and vs the dense frozen path (<= 1e-4).
    let x = gaussian(&[4, 1, 49, 10], 0.0, 1.0, &mut rng);
    let compiled = engine.infer(&x);
    let reloaded = loaded.infer(&x);
    let vs_compile = max_abs_diff(compiled.data(), reloaded.data());
    assert!(vs_compile <= 1e-6, "reloaded logits diverged from in-memory compile: {vs_compile}");
    let dense = net.forward(&x, false);
    let vs_dense = max_abs_diff(dense.data(), reloaded.data());
    assert!(vs_dense <= 1e-4, "reloaded logits diverged from dense path: {vs_dense}");

    // The always-on loop runs end-to-end on the loaded backend.
    let mut det = StreamingDetector::from_meta(&loaded, StreamingConfig::default(), &loaded_meta);
    let audio = gaussian(&[32_000], 0.0, 0.1, &mut rng);
    let detections = det.push(audio.data());

    println!("thnt2 smoke OK");
    println!("  artifact: {} bytes ({} packed weight bytes)", artifact_bytes, loaded.model_bytes());
    println!("  adds/sample: {}", loaded.adds_per_sample());
    println!("  max |logit diff| vs compile: {vs_compile:.2e}, vs dense: {vs_dense:.2e}");
    println!("  streaming: 2 s of audio -> {} detection(s)", detections.len());
}
