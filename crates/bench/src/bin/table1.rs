//! Regenerates Table 1: test accuracy, op counts and model size for DS-CNN
//! and strassenified DS-CNN at r ∈ {0.5, 0.75, 1, 2}·c_out.

use thnt_bench::{banner, kb, mops, pct, TextTable};
use thnt_core::experiments::table1;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 1", "DS-CNN vs strassenified DS-CNN (ST-DS-CNN) on KWS", profile);
    let rows = table1(&profile.settings());
    let mut t = TextTable::new(&[
        "network",
        "acc(%)",
        "muls",
        "adds",
        "ops",
        "model",
        "| paper acc",
        "paper ops",
        "paper model",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.network.clone(),
            pct(r.acc),
            if r.muls > 0 { mops(r.muls) } else { "-".into() },
            if r.adds > 0 { mops(r.adds) } else { "-".into() },
            mops(r.ops),
            kb(r.model_kb),
            format!("| {}", pct(r.paper_acc)),
            format!("{:.2}M", r.paper_ops_m),
            kb(r.paper_model_kb),
        ]);
    }
    println!("{}", t.render());
    println!("JSON written to target/experiments/table1.json");
}
