//! Regenerates Table 5: ST-HybridNet hyper-parameter ablation.

use thnt_bench::{banner, mops, pct, TextTable};
use thnt_core::experiments::table5;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 5", "ST-HybridNet hyper-parameter search", profile);
    let rows = table5(&profile.settings());
    let mut t = TextTable::new(&["hyperparameters", "acc(%)", "ops", "| paper acc", "paper ops"]);
    for r in &rows {
        t.row_owned(vec![
            r.hyperparameters.clone(),
            pct(r.acc),
            mops(r.ops),
            format!("| {}", pct(r.paper_acc)),
            format!("{:.2}M", r.paper_ops_m),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: the 2-conv and depth-1 variants trade accuracy for ops;");
    println!("3 convs + depth-2 tree is the sweet spot the paper ships.");
    println!("JSON written to target/experiments/table5.json");
}
