//! §6 future-work exploration: "constrain the number of additions in a
//! strassenified network dominated with DS layers".
//!
//! The TWN threshold factor Δ = `f`·E|w| controls the sparsity of the
//! ternary matrices: larger `f` zeroes more entries, and every zero entry is
//! one addition a microcontroller never executes. This binary trains one
//! ST-DS-CNN per threshold and reports the measured ternary non-zeros
//! (= per-use additions) against accuracy — the trade-off curve the paper
//! leaves for future work.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use thnt_bench::{banner, pct, TextTable};
use thnt_core::Profile;
use thnt_data::{SpeechCommands, Split};
use thnt_models::StDsCnn;
use thnt_nn::{evaluate, Loss, StepDecay};

fn main() {
    let profile = Profile::from_env();
    banner("Ablation (§6)", "ternary-threshold sweep: additions vs accuracy on ST-DS-CNN", profile);
    let settings = profile.settings();
    let data = SpeechCommands::generate(settings.dataset);
    let (xt, yt) = data.features(Split::Train);
    let (xv, yv) = data.features(Split::Val);
    let (xe, ye) = data.features(Split::Test);

    let mut t = TextTable::new(&["threshold", "ternary nonzeros", "sparsity(%)", "acc(%)"]);
    for factor in [0.3f32, 0.5, 0.7, 1.0, 1.3] {
        let mut rng = SmallRng::seed_from_u64(settings.seed);
        // A narrower model keeps the sweep affordable; the trade-off shape is
        // architecture-independent.
        let mut st = StDsCnn::with_geometry(32, 2, 0.75, &mut rng);
        st.set_ternary_threshold(factor);
        thnt_core::train_st_generic(
            &mut st,
            None,
            &xt,
            &yt,
            &xv,
            &yv,
            settings.st_epochs_per_phase,
            StepDecay {
                initial: 0.004,
                factor: 0.3,
                every: settings.st_epochs_per_phase.div_ceil(3).max(1),
            },
            Loss::CrossEntropy,
            settings.seed + 11,
            |_, _, _| {},
        );
        let nonzeros = st.measured_ternary_nonzeros().expect("model is frozen");
        let total: u64 = {
            use thnt_nn::Model;
            st.params_mut()
                .iter()
                .filter(|p| p.name.contains(".wb") || p.name.contains(".wc"))
                .map(|p| p.numel() as u64)
                .sum()
        };
        let acc = evaluate(&mut st, &xe, &ye, 64) * 100.0;
        t.row_owned(vec![
            format!("{factor:.1}"),
            nonzeros.to_string(),
            format!("{:.1}", 100.0 * (1.0 - nonzeros as f64 / total as f64)),
            pct(acc),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: additions (non-zeros) fall monotonically with the");
    println!("threshold; accuracy holds initially, then degrades — the knob the");
    println!("paper proposes exploring to make strassenified DS layers affordable.");
}
