//! Renders Figure 1: the hybrid neural-tree architecture diagram.

use thnt_core::{describe_hybrid, HybridConfig};

fn main() {
    println!("{}", describe_hybrid(&HybridConfig::paper()));
    println!("\nTable 5 variants:\n");
    println!("{}", describe_hybrid(&HybridConfig::two_convs()));
    println!("{}", describe_hybrid(&HybridConfig::shallow_tree()));
}
