//! Regenerates Table 7: gradual magnitude pruning of DS-CNN, plus the §5
//! ternary-weight-quantization comparison row.

use thnt_bench::{banner, pct, TextTable};
use thnt_core::experiments::table7;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 7", "model size / accuracy trade-off when pruning DS-CNN", profile);
    let rows = table7(&profile.settings());
    let mut t = TextTable::new(&["sparsity", "nonzero params", "acc(%)", "| paper acc"]);
    for r in &rows {
        t.row_owned(vec![
            r.label.clone(),
            format!("{:.2}K", r.nonzero_params_k),
            pct(r.acc),
            format!("| {}", pct(r.paper_acc)),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: accuracy degrades slowly to 50% sparsity, then sharply");
    println!("by 90% — and CSR index overhead means 50% sparse loses to dense storage (§5).");
    println!("JSON written to target/experiments/table7.json");
}
