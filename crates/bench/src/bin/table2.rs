//! Regenerates Table 2: standalone Bonsai trees vs DS-CNN.

use thnt_bench::{banner, kb, mops, pct, TextTable};
use thnt_core::experiments::table2;
use thnt_core::Profile;

fn main() {
    let profile = Profile::from_env();
    banner("Table 2", "DS-CNN vs Bonsai tree variants on KWS", profile);
    let rows = table2(&profile.settings());
    let mut t =
        TextTable::new(&["network", "acc(%)", "macs", "model", "| paper acc", "paper model"]);
    for r in &rows {
        t.row_owned(vec![
            r.network.clone(),
            pct(r.acc),
            mops(r.macs),
            kb(r.model_kb),
            format!("| {}", pct(r.paper_acc)),
            kb(r.paper_model_kb),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: Bonsai saturates far below DS-CNN despite growing");
    println!("projection/depth — the expressiveness limit motivating the hybrid (§2.2).");
    println!("JSON written to target/experiments/table2.json");
}
