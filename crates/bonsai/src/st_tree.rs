//! The strassenified Bonsai tree — the tree section of ST-HybridNet.
//!
//! Every matrix product in the tree (the projection `Z`, each node's `W`/`V`
//! and each internal node's branching `θ`) is replaced by a
//! [`StrassenDense`] sum-product network. Following §3 of the paper, the
//! hidden width `r` of the tree-node SPNs is set to the number of targets
//! `L` by default.

use rand::rngs::SmallRng;
use thnt_nn::{Layer, Param};
use thnt_strassen::{LayerCost, QuantMode, StrassenDense, Strassenified};
use thnt_tensor::Tensor;

use crate::topology::TreeTopology;
use crate::tree::BonsaiConfig;

/// Strassenified Bonsai tree layer (`[n, D] → [n, L]`).
#[derive(Debug)]
pub struct StrassenBonsai {
    config: BonsaiConfig,
    topo: TreeTopology,
    z: StrassenDense,
    theta: Vec<StrassenDense>,
    w: Vec<StrassenDense>,
    v: Vec<StrassenDense>,
    node_r: usize,
    sharpness: f32,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    n: usize,
    gates: Vec<Vec<f32>>,
    probs: Vec<Vec<f32>>,
    a: Vec<Tensor>,
    t: Vec<Tensor>,
}

impl StrassenBonsai {
    /// Creates a strassenified Bonsai tree. `node_r` is the SPN hidden width
    /// used for node matrices, branching vectors and the projection (the
    /// paper sets it to `L`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(config: BonsaiConfig, node_r: usize, rng: &mut SmallRng) -> Self {
        assert!(node_r > 0, "node_r must be positive");
        let topo = TreeTopology::new(config.depth);
        let z = StrassenDense::new(config.input_dim, config.proj_dim, node_r, rng);
        let theta = (0..topo.num_internal())
            .map(|_| StrassenDense::new(config.proj_dim, 1, node_r, rng))
            .collect();
        let w = (0..topo.num_nodes())
            .map(|_| StrassenDense::new(config.proj_dim, config.num_classes, node_r, rng))
            .collect();
        let v = (0..topo.num_nodes())
            .map(|_| StrassenDense::new(config.proj_dim, config.num_classes, node_r, rng))
            .collect();
        Self {
            config,
            topo,
            z,
            theta,
            w,
            v,
            node_r,
            sharpness: config.branch_sharpness,
            cache: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BonsaiConfig {
        &self.config
    }

    /// The tree topology.
    pub fn topology(&self) -> &TreeTopology {
        &self.topo
    }

    /// The SPN hidden width used throughout the tree.
    pub fn node_r(&self) -> usize {
        self.node_r
    }

    /// Sets the branching sharpness.
    pub fn set_branch_sharpness(&mut self, s: f32) {
        assert!(s > 0.0, "sharpness must be positive");
        self.sharpness = s;
    }

    /// Current branching sharpness (annealed during training).
    pub fn branch_sharpness(&self) -> f32 {
        self.sharpness
    }

    /// The projection SPN `Z` — read by the packed inference compiler.
    pub fn projection(&self) -> &StrassenDense {
        &self.z
    }

    /// The internal nodes' branching SPNs `θ`, in breadth-first node order.
    pub fn branch_nodes(&self) -> &[StrassenDense] {
        &self.theta
    }

    /// Every node's score SPN `W`, in breadth-first node order.
    pub fn score_nodes(&self) -> &[StrassenDense] {
        &self.w
    }

    /// Every node's gating SPN `V`, in breadth-first node order.
    pub fn gate_nodes(&self) -> &[StrassenDense] {
        &self.v
    }

    /// Sets the TWN threshold factor on every SPN in the tree.
    pub fn set_ternary_threshold(&mut self, factor: f32) {
        for l in self.sublayers_mut() {
            l.set_ternary_threshold(factor);
        }
    }

    /// Cost descriptors (identical geometry to the plain tree; callers apply
    /// the strassenified accounting with `r = node_r`).
    pub fn cost_layers(&self) -> Vec<LayerCost> {
        let d = self.config.input_dim as u64;
        let dh = self.config.proj_dim as u64;
        let l = self.config.num_classes as u64;
        let mut out = vec![LayerCost::Dense { in_dim: d, out_dim: dh }];
        for _ in 0..self.topo.num_nodes() {
            out.push(LayerCost::Dense { in_dim: dh, out_dim: l });
            out.push(LayerCost::Dense { in_dim: dh, out_dim: l });
        }
        for _ in 0..self.topo.num_internal() {
            out.push(LayerCost::Dense { in_dim: dh, out_dim: 1 });
        }
        out
    }

    fn sublayers_mut(&mut self) -> Vec<&mut StrassenDense> {
        let mut ls: Vec<&mut StrassenDense> = vec![&mut self.z];
        ls.extend(self.theta.iter_mut());
        ls.extend(self.w.iter_mut());
        ls.extend(self.v.iter_mut());
        ls
    }

    fn sublayers(&self) -> Vec<&StrassenDense> {
        let mut ls: Vec<&StrassenDense> = vec![&self.z];
        ls.extend(self.theta.iter());
        ls.extend(self.w.iter());
        ls.extend(self.v.iter());
        ls
    }
}

impl Layer for StrassenBonsai {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims()[1], self.config.input_dim, "StrassenBonsai input width mismatch");
        let n = x.dims()[0];
        let l = self.config.num_classes;
        let zhat = self.z.forward(x, train);
        // Routing.
        let num_nodes = self.topo.num_nodes();
        let mut probs = vec![vec![0.0f32; n]; num_nodes];
        probs[0] = vec![1.0; n];
        let mut gates = Vec::with_capacity(self.topo.num_internal());
        for j in 0..self.topo.num_internal() {
            let u = self.theta[j].forward(&zhat, train);
            let mut g = vec![0.0f32; n];
            for s in 0..n {
                g[s] = 1.0 / (1.0 + (-self.sharpness * u.data()[s]).exp());
            }
            let (lc, rc) = (self.topo.left(j), self.topo.right(j));
            for s in 0..n {
                probs[lc][s] = probs[j][s] * (1.0 - g[s]);
                probs[rc][s] = probs[j][s] * g[s];
            }
            gates.push(g);
        }
        // Node scores.
        let mut y = Tensor::zeros(&[n, l]);
        let mut a_cache = Vec::with_capacity(num_nodes);
        let mut t_cache = Vec::with_capacity(num_nodes);
        for k in 0..num_nodes {
            let a = self.w[k].forward(&zhat, train);
            let t = self.v[k].forward(&zhat, train).map(|b| (self.config.sigma * b).tanh());
            {
                let yd = y.data_mut();
                for s in 0..n {
                    let p = probs[k][s];
                    for c in 0..l {
                        yd[s * l + c] += p * a.data()[s * l + c] * t.data()[s * l + c];
                    }
                }
            }
            if train {
                a_cache.push(a);
                t_cache.push(t);
            }
        }
        if train {
            self.cache = Some(Cache { n, gates, probs, a: a_cache, t: t_cache });
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("StrassenBonsai::backward without training forward");
        let n = cache.n;
        let l = self.config.num_classes;
        let num_nodes = self.topo.num_nodes();
        let dh = self.config.proj_dim;
        let mut dzhat = Tensor::zeros(&[n, dh]);
        let mut d_p = vec![vec![0.0f32; n]; num_nodes];

        for k in 0..num_nodes {
            let (a, t) = (&cache.a[k], &cache.t[k]);
            let mut d_a = Tensor::zeros(&[n, l]);
            let mut d_b = Tensor::zeros(&[n, l]);
            {
                let gd = grad.data();
                let (ad, td) = (a.data(), t.data());
                let (dad, dbd) = (d_a.data_mut(), d_b.data_mut());
                for s in 0..n {
                    let p = cache.probs[k][s];
                    let mut acc = 0.0f32;
                    for c in 0..l {
                        let g = gd[s * l + c];
                        acc += g * ad[s * l + c] * td[s * l + c];
                        let ds = p * g;
                        dad[s * l + c] = ds * td[s * l + c];
                        dbd[s * l + c] = ds
                            * ad[s * l + c]
                            * self.config.sigma
                            * (1.0 - td[s * l + c] * td[s * l + c]);
                    }
                    d_p[k][s] = acc;
                }
            }
            dzhat.axpy(1.0, &self.w[k].backward(&d_a));
            dzhat.axpy(1.0, &self.v[k].backward(&d_b));
        }

        for j in (0..self.topo.num_internal()).rev() {
            let (lc, rc) = (self.topo.left(j), self.topo.right(j));
            let g = &cache.gates[j];
            let mut d_u = Tensor::zeros(&[n, 1]);
            for s in 0..n {
                let dl = d_p[lc][s];
                let dr = d_p[rc][s];
                d_p[j][s] += dl * (1.0 - g[s]) + dr * g[s];
                let d_g = cache.probs[j][s] * (dr - dl);
                d_u.data_mut()[s] = d_g * self.sharpness * g[s] * (1.0 - g[s]);
            }
            dzhat.axpy(1.0, &self.theta[j].backward(&d_u));
        }

        self.z.backward(&dzhat)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.sublayers_mut().into_iter().flat_map(|l| l.params_mut()).collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.sublayers().into_iter().flat_map(|l| l.params()).collect()
    }

    fn name(&self) -> &'static str {
        "strassen_bonsai"
    }
}

impl Strassenified for StrassenBonsai {
    fn mode(&self) -> QuantMode {
        self.z.mode()
    }

    fn activate_quantization(&mut self) {
        for l in self.sublayers_mut() {
            l.activate_quantization();
        }
    }

    fn freeze_ternary(&mut self) {
        for l in self.sublayers_mut() {
            l.freeze_ternary();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small(depth: usize) -> StrassenBonsai {
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = BonsaiConfig {
            input_dim: 10,
            proj_dim: 6,
            depth,
            num_classes: 3,
            sigma: 1.0,
            branch_sharpness: 1.0,
        };
        StrassenBonsai::new(cfg, 3, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut tree = small(2);
        let y = tree.forward(&Tensor::zeros(&[4, 10]), false);
        assert_eq!(y.dims(), &[4, 3]);
    }

    #[test]
    fn gradients_check() {
        let mut tree = small(1);
        let mut rng = SmallRng::seed_from_u64(1);
        let x = thnt_tensor::gaussian(&[2, 10], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut tree, &x, 1e-2, 3e-2, 20, 2);
    }

    #[test]
    fn phase_transitions_propagate_to_all_sublayers() {
        let mut tree = small(2);
        assert_eq!(tree.mode(), QuantMode::FullPrecision);
        tree.activate_quantization();
        assert_eq!(tree.mode(), QuantMode::Quantized);
        tree.freeze_ternary();
        assert_eq!(tree.mode(), QuantMode::Frozen);
        // Every ternary matrix is now actually ternary and frozen.
        for p in tree.params_mut() {
            if p.name.contains(".wb") || p.name.contains(".wc") {
                assert!(!p.trainable, "{} not frozen", p.name);
                assert!(
                    p.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0),
                    "{} not ternary",
                    p.name
                );
            }
        }
    }

    #[test]
    fn freeze_preserves_quantized_function() {
        let mut tree = small(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[3, 10], 0.0, 1.0, &mut rng);
        tree.activate_quantization();
        let before = tree.forward(&x, false);
        tree.freeze_ternary();
        let after = tree.forward(&x, false);
        thnt_tensor::assert_close(after.data(), before.data(), 1e-4, 1e-3);
    }

    #[test]
    fn cost_layers_match_plain_tree_geometry() {
        let tree = small(2);
        assert_eq!(tree.cost_layers().len(), 1 + 14 + 3);
    }
}
