//! The plain (full-precision) Bonsai tree.

use rand::rngs::SmallRng;
use thnt_nn::{Layer, Param};
use thnt_strassen::LayerCost;
use thnt_tensor::{matmul, matmul_nt, matmul_tn, xavier_uniform, Tensor};

use crate::topology::TreeTopology;

/// Hyper-parameters of a Bonsai tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BonsaiConfig {
    /// Input dimensionality `D`.
    pub input_dim: usize,
    /// Projected dimensionality `D̂` (`Z: [D̂, D]`).
    pub proj_dim: usize,
    /// Tree depth `T` (depth 2 → 3 internal + 4 leaf nodes).
    pub depth: usize,
    /// Number of classification targets `L`.
    pub num_classes: usize,
    /// Prediction non-linearity scale `σ` in `tanh(σ Vᵀẑ)`.
    pub sigma: f32,
    /// Initial branching sharpness `s` in `sigmoid(s θᵀẑ)`; annealed upward
    /// during training.
    pub branch_sharpness: f32,
}

impl Default for BonsaiConfig {
    fn default() -> Self {
        Self {
            input_dim: 490,
            proj_dim: 64,
            depth: 2,
            num_classes: 12,
            sigma: 1.0,
            branch_sharpness: 1.0,
        }
    }
}

/// A Bonsai decision tree as a differentiable [`Layer`]
/// (`[n, D] → [n, L]`).
///
/// All nodes are evaluated on every input; routing is the soft path
/// indicator described in the crate docs.
#[derive(Debug)]
pub struct BonsaiTree {
    config: BonsaiConfig,
    topo: TreeTopology,
    z: Param,
    theta: Vec<Param>,
    w: Vec<Param>,
    v: Vec<Param>,
    sharpness: f32,
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    x: Tensor,
    zhat: Tensor,
    /// Per internal node: gate activations `g_j` `[n]`.
    gates: Vec<Vec<f32>>,
    /// Per node: path probability `[n]`.
    probs: Vec<Vec<f32>>,
    /// Per node: `a_k = ẑ W_kᵀ` and `t_k = tanh(σ ẑ V_kᵀ)`.
    a: Vec<Tensor>,
    t: Vec<Tensor>,
}

impl BonsaiTree {
    /// Creates a Bonsai tree with Xavier-initialised parameters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(config: BonsaiConfig, rng: &mut SmallRng) -> Self {
        assert!(
            config.input_dim > 0 && config.proj_dim > 0 && config.num_classes > 0,
            "dimensions must be positive"
        );
        let topo = TreeTopology::new(config.depth);
        let z = Param::new(
            "bonsai.z",
            xavier_uniform(
                &[config.proj_dim, config.input_dim],
                config.input_dim,
                config.proj_dim,
                rng,
            ),
        );
        let theta = (0..topo.num_internal())
            .map(|j| {
                Param::new(
                    format!("bonsai.theta{j}"),
                    xavier_uniform(&[config.proj_dim], config.proj_dim, 1, rng),
                )
            })
            .collect();
        let w = (0..topo.num_nodes())
            .map(|k| {
                Param::new(
                    format!("bonsai.w{k}"),
                    xavier_uniform(
                        &[config.num_classes, config.proj_dim],
                        config.proj_dim,
                        config.num_classes,
                        rng,
                    ),
                )
            })
            .collect();
        let v = (0..topo.num_nodes())
            .map(|k| {
                Param::new(
                    format!("bonsai.v{k}"),
                    xavier_uniform(
                        &[config.num_classes, config.proj_dim],
                        config.proj_dim,
                        config.num_classes,
                        rng,
                    ),
                )
            })
            .collect();
        Self { config, topo, z, theta, w, v, sharpness: config.branch_sharpness, cache: None }
    }

    /// The configuration.
    pub fn config(&self) -> &BonsaiConfig {
        &self.config
    }

    /// The tree topology.
    pub fn topology(&self) -> &TreeTopology {
        &self.topo
    }

    /// Current branching sharpness.
    pub fn branch_sharpness(&self) -> f32 {
        self.sharpness
    }

    /// Sets the branching sharpness (annealed upward by trainers).
    pub fn set_branch_sharpness(&mut self, s: f32) {
        assert!(s > 0.0, "sharpness must be positive");
        self.sharpness = s;
    }

    /// Path probabilities of every node for inputs `x`: `[n, num_nodes]`.
    ///
    /// Row sums over **leaves** equal 1 (probability mass conservation).
    pub fn path_probabilities(&self, x: &Tensor) -> Tensor {
        let zhat = matmul_nt(x, &self.z.value);
        let (probs, _) = self.route(&zhat);
        let n = x.dims()[0];
        let mut out = Tensor::zeros(&[n, self.topo.num_nodes()]);
        for (k, p) in probs.iter().enumerate() {
            for (s, &v) in p.iter().enumerate() {
                out.set(&[s, k], v);
            }
        }
        out
    }

    /// Computes per-node gates and path probabilities from projections.
    fn route(&self, zhat: &Tensor) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let n = zhat.dims()[0];
        let num_nodes = self.topo.num_nodes();
        let mut probs = vec![vec![0.0f32; n]; num_nodes];
        probs[0] = vec![1.0; n];
        let mut gates = Vec::with_capacity(self.topo.num_internal());
        for j in 0..self.topo.num_internal() {
            let theta = &self.theta[j].value;
            let mut g = vec![0.0f32; n];
            for s in 0..n {
                let u: f32 = zhat.row(s).iter().zip(theta.data()).map(|(a, b)| a * b).sum();
                g[s] = 1.0 / (1.0 + (-self.sharpness * u).exp());
            }
            let (l, r) = (self.topo.left(j), self.topo.right(j));
            for s in 0..n {
                probs[l][s] = probs[j][s] * (1.0 - g[s]);
                probs[r][s] = probs[j][s] * g[s];
            }
            gates.push(g);
        }
        (probs, gates)
    }

    /// Descriptors for the analytic cost model: the projection, every node's
    /// `W`/`V` products and every internal node's branching dot product.
    pub fn cost_layers(&self) -> Vec<LayerCost> {
        let d = self.config.input_dim as u64;
        let dh = self.config.proj_dim as u64;
        let l = self.config.num_classes as u64;
        let mut out = vec![LayerCost::Dense { in_dim: d, out_dim: dh }];
        for _ in 0..self.topo.num_nodes() {
            out.push(LayerCost::Dense { in_dim: dh, out_dim: l });
            out.push(LayerCost::Dense { in_dim: dh, out_dim: l });
        }
        for _ in 0..self.topo.num_internal() {
            out.push(LayerCost::Dense { in_dim: dh, out_dim: 1 });
        }
        out
    }
}

impl Layer for BonsaiTree {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims()[1], self.config.input_dim, "BonsaiTree input width mismatch");
        let n = x.dims()[0];
        let l = self.config.num_classes;
        let zhat = matmul_nt(x, &self.z.value);
        let (probs, gates) = self.route(&zhat);
        let mut y = Tensor::zeros(&[n, l]);
        let mut a_cache = Vec::with_capacity(self.topo.num_nodes());
        let mut t_cache = Vec::with_capacity(self.topo.num_nodes());
        for k in 0..self.topo.num_nodes() {
            let a = matmul_nt(&zhat, &self.w[k].value);
            let t = matmul_nt(&zhat, &self.v[k].value).map(|b| (self.config.sigma * b).tanh());
            {
                let yd = y.data_mut();
                let (ad, td) = (a.data(), t.data());
                for s in 0..n {
                    let p = probs[k][s];
                    for c in 0..l {
                        yd[s * l + c] += p * ad[s * l + c] * td[s * l + c];
                    }
                }
            }
            if train {
                a_cache.push(a);
                t_cache.push(t);
            }
        }
        if train {
            self.cache = Some(Cache { x: x.clone(), zhat, gates, probs, a: a_cache, t: t_cache });
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("BonsaiTree::backward without training forward");
        let n = cache.x.dims()[0];
        let l = self.config.num_classes;
        let num_nodes = self.topo.num_nodes();
        let mut dzhat = Tensor::zeros(cache.zhat.dims());
        let mut d_p = vec![vec![0.0f32; n]; num_nodes];

        for k in 0..num_nodes {
            let (a, t) = (&cache.a[k], &cache.t[k]);
            // d_score = p ⊙ grad ; d_p = Σ_c grad ⊙ score
            let mut d_a = Tensor::zeros(&[n, l]);
            let mut d_b = Tensor::zeros(&[n, l]);
            {
                let gd = grad.data();
                let (ad, td) = (a.data(), t.data());
                let (dad, dbd) = (d_a.data_mut(), d_b.data_mut());
                for s in 0..n {
                    let p = cache.probs[k][s];
                    let mut acc = 0.0f32;
                    for c in 0..l {
                        let g = gd[s * l + c];
                        acc += g * ad[s * l + c] * td[s * l + c];
                        let ds = p * g;
                        dad[s * l + c] = ds * td[s * l + c];
                        dbd[s * l + c] = ds
                            * ad[s * l + c]
                            * self.config.sigma
                            * (1.0 - td[s * l + c] * td[s * l + c]);
                    }
                    d_p[k][s] = acc;
                }
            }
            self.w[k].grad.axpy(1.0, &matmul_tn(&d_a, &cache.zhat));
            self.v[k].grad.axpy(1.0, &matmul_tn(&d_b, &cache.zhat));
            dzhat.axpy(1.0, &matmul(&d_a, &self.w[k].value));
            dzhat.axpy(1.0, &matmul(&d_b, &self.v[k].value));
        }

        // Path gradients, children before parents (reverse BFS order).
        for j in (0..self.topo.num_internal()).rev() {
            let (lc, rc) = (self.topo.left(j), self.topo.right(j));
            let g = &cache.gates[j];
            let mut d_u = vec![0.0f32; n];
            for s in 0..n {
                let dl = d_p[lc][s];
                let dr = d_p[rc][s];
                d_p[j][s] += dl * (1.0 - g[s]) + dr * g[s];
                let d_g = cache.probs[j][s] * (dr - dl);
                d_u[s] = d_g * self.sharpness * g[s] * (1.0 - g[s]);
            }
            // dθ_j += Σ_n d_u[s] · ẑ[s]; dẑ += d_u ⊗ θ_j
            {
                let theta = &mut self.theta[j];
                let (tg, tv) = (theta.grad.data_mut(), theta.value.data());
                let zd = cache.zhat.data();
                let dzd = dzhat.data_mut();
                let dh = self.config.proj_dim;
                for s in 0..n {
                    for d in 0..dh {
                        tg[d] += d_u[s] * zd[s * dh + d];
                        dzd[s * dh + d] += d_u[s] * tv[d];
                    }
                }
            }
        }

        // Projection backward.
        self.z.grad.axpy(1.0, &matmul_tn(&dzhat, &cache.x));
        matmul(&dzhat, &self.z.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![&mut self.z];
        ps.extend(self.theta.iter_mut());
        for (w, v) in self.w.iter_mut().zip(self.v.iter_mut()) {
            ps.push(w);
            ps.push(v);
        }
        ps
    }

    fn params(&self) -> Vec<&Param> {
        let mut ps: Vec<&Param> = vec![&self.z];
        ps.extend(self.theta.iter());
        for (w, v) in self.w.iter().zip(self.v.iter()) {
            ps.push(w);
            ps.push(v);
        }
        ps
    }

    fn name(&self) -> &'static str {
        "bonsai_tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_tree(depth: usize) -> BonsaiTree {
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = BonsaiConfig {
            input_dim: 10,
            proj_dim: 6,
            depth,
            num_classes: 3,
            sigma: 1.0,
            branch_sharpness: 1.0,
        };
        BonsaiTree::new(cfg, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut tree = small_tree(2);
        let y = tree.forward(&Tensor::zeros(&[4, 10]), false);
        assert_eq!(y.dims(), &[4, 3]);
    }

    #[test]
    fn leaf_path_probabilities_sum_to_one() {
        let tree = small_tree(2);
        let mut rng = SmallRng::seed_from_u64(1);
        let x = thnt_tensor::gaussian(&[5, 10], 0.0, 1.0, &mut rng);
        let p = tree.path_probabilities(&x);
        let topo = tree.topology();
        for s in 0..5 {
            let leaf_sum: f32 =
                (topo.num_internal()..topo.num_nodes()).map(|k| p.at(&[s, k])).sum();
            assert!((leaf_sum - 1.0).abs() < 1e-5, "sample {s}: {leaf_sum}");
            // Root always has probability 1.
            assert!((p.at(&[s, 0]) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_harden_with_sharpness() {
        let mut tree = small_tree(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let x = thnt_tensor::gaussian(&[8, 10], 0.0, 1.0, &mut rng);
        tree.set_branch_sharpness(1.0);
        let soft = tree.path_probabilities(&x);
        tree.set_branch_sharpness(50.0);
        let hard = tree.path_probabilities(&x);
        // Hard routing concentrates leaf mass near {0, 1}.
        let entropy = |p: &Tensor| -> f32 {
            let mut e = 0.0;
            for s in 0..8 {
                for k in 1..3 {
                    let v = p.at(&[s, k]).clamp(1e-6, 1.0 - 1e-6);
                    e -= v * v.ln();
                }
            }
            e
        };
        assert!(entropy(&hard) < entropy(&soft), "{} vs {}", entropy(&hard), entropy(&soft));
    }

    #[test]
    fn gradients_check() {
        let mut tree = small_tree(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[3, 10], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut tree, &x, 1e-2, 3e-2, 25, 4);
    }

    #[test]
    fn gradients_check_depth1_high_sharpness() {
        let mut tree = small_tree(1);
        tree.set_branch_sharpness(4.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let x = thnt_tensor::gaussian(&[3, 10], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut tree, &x, 1e-2, 3e-2, 25, 6);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut tree = small_tree(2);
        // Z: 6x10; θ: 3x6; W,V: 7 nodes x 2 x (3x6).
        let expected = 60 + 18 + 7 * 2 * 18;
        let total: usize = tree.params_mut().iter().map(|p| p.numel()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn cost_layers_cover_all_products() {
        let tree = small_tree(2);
        let layers = tree.cost_layers();
        // 1 projection + 7 nodes x 2 matrices + 3 branching dots.
        assert_eq!(layers.len(), 1 + 14 + 3);
        let macs: u64 = layers.iter().map(|l| l.macs()).sum();
        // Z: 60, nodes: 14*18=252, θ: 3*6=18.
        assert_eq!(macs, 60 + 252 + 18);
    }

    #[test]
    fn learns_a_nonlinear_xor_boundary() {
        // XOR on two features: a single linear classifier fails (~50%), a
        // depth-1 Bonsai tree should succeed — expressiveness check.
        use thnt_nn::{train_classifier, Loss, Model, TrainConfig};
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200;
        let mut x = Tensor::zeros(&[n, 10]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let (a, b) = (i % 2 == 0, (i / 2) % 2 == 0);
            let label = (a ^ b) as usize;
            use rand::Rng;
            x.set(&[i, 0], if a { 1.0 } else { -1.0 } + rng.gen_range(-0.2f32..0.2));
            x.set(&[i, 1], if b { 1.0 } else { -1.0 } + rng.gen_range(-0.2f32..0.2));
            y.push(label);
        }
        let cfg = BonsaiConfig {
            input_dim: 10,
            proj_dim: 4,
            depth: 1,
            num_classes: 2,
            sigma: 1.0,
            branch_sharpness: 2.0,
        };
        let tree = BonsaiTree::new(cfg, &mut rng);
        struct Wrap(BonsaiTree);
        impl Model for Wrap {
            fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
                self.0.forward(x, train)
            }
            fn backward(&mut self, grad: &Tensor) {
                self.0.backward(grad);
            }
            fn params_mut(&mut self) -> Vec<&mut Param> {
                Layer::params_mut(&mut self.0)
            }
            fn params(&self) -> Vec<&Param> {
                Layer::params(&self.0)
            }
        }
        let mut model = Wrap(tree);
        let config = TrainConfig::quick(Loss::Hinge, 60);
        let report = train_classifier(&mut model, &x, &y, &x, &y, &config);
        assert!(report.final_val_acc > 0.9, "XOR accuracy {}", report.final_val_acc);
    }
}
