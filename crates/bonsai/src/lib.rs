//! Bonsai decision trees (Kumar, Goyal, Varma — ICML 2017) trained with
//! gradient descent, for the THNT reproduction.
//!
//! A Bonsai model is a **single shallow tree** over a learned low-dimensional
//! projection `ẑ = Z·x` (`Z: [D̂, D]`). Every node `k` — internal and leaf —
//! owns matrices `W_k, V_k: [L, D̂]` and contributes a non-linear score
//!
//! ```text
//! score_k(x) = (W_k ẑ) ⊙ tanh(σ · V_k ẑ)
//! ```
//!
//! Internal nodes own branching vectors `θ_j`; the relaxed path indicator
//! `g_j = sigmoid(s · θ_jᵀ ẑ)` routes probability mass left/right, and the
//! model output is the path-weighted sum of all node scores. The sharpness
//! `s` anneals upward during training ("points gradually start traversing at
//! most a single path", §3), and at inference **all nodes are evaluated** —
//! the paper's branch-free, SIMD-friendly execution.
//!
//! [`BonsaiTree`] is the plain model (Table 2); [`StrassenBonsai`] is the
//! tree section of the ST-HybridNet with every node matrix strassenified at
//! hidden width `r = L` (§3).
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use thnt_bonsai::{BonsaiConfig, BonsaiTree};
//! use thnt_nn::Layer;
//! use thnt_tensor::Tensor;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let cfg = BonsaiConfig { input_dim: 20, proj_dim: 8, depth: 2, num_classes: 4, ..Default::default() };
//! let mut tree = BonsaiTree::new(cfg, &mut rng);
//! let scores = tree.forward(&Tensor::zeros(&[5, 20]), false);
//! assert_eq!(scores.dims(), &[5, 4]);
//! ```

// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod st_tree;
pub mod topology;
pub mod tree;

pub use st_tree::StrassenBonsai;
pub use topology::TreeTopology;
pub use tree::{BonsaiConfig, BonsaiTree};
