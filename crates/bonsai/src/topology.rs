//! Complete-binary-tree topology helpers.

/// Topology of a complete binary tree of a given depth.
///
/// Nodes are numbered in breadth-first order: node 0 is the root, node `k`
/// has children `2k+1` and `2k+2`. A depth-`T` tree has `2^T − 1` internal
/// nodes and `2^T` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeTopology {
    depth: usize,
}

impl TreeTopology {
    /// Creates the topology of a depth-`depth` complete binary tree.
    ///
    /// Depth 0 is a single (leaf) node.
    pub fn new(depth: usize) -> Self {
        assert!(depth <= 16, "depth {depth} is unreasonably large");
        Self { depth }
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total node count `2^(T+1) − 1`.
    pub fn num_nodes(&self) -> usize {
        (1 << (self.depth + 1)) - 1
    }

    /// Internal node count `2^T − 1`.
    pub fn num_internal(&self) -> usize {
        (1 << self.depth) - 1
    }

    /// Leaf count `2^T`.
    pub fn num_leaves(&self) -> usize {
        1 << self.depth
    }

    /// Whether node `k` is internal.
    pub fn is_internal(&self, k: usize) -> bool {
        k < self.num_internal()
    }

    /// Left child of internal node `k`.
    pub fn left(&self, k: usize) -> usize {
        2 * k + 1
    }

    /// Right child of internal node `k`.
    pub fn right(&self, k: usize) -> usize {
        2 * k + 2
    }

    /// Parent of node `k` (`None` for the root).
    pub fn parent(&self, k: usize) -> Option<usize> {
        if k == 0 {
            None
        } else {
            Some((k - 1) / 2)
        }
    }

    /// Nodes along the root→`k` path, inclusive.
    pub fn path_to(&self, mut k: usize) -> Vec<usize> {
        let mut path = vec![k];
        while let Some(p) = self.parent(k) {
            path.push(p);
            k = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth2_matches_paper_counts() {
        // The paper's hybrid uses a depth-2 tree: 3 internal + 4 leaf nodes.
        let t = TreeTopology::new(2);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_internal(), 3);
        assert_eq!(t.num_leaves(), 4);
    }

    #[test]
    fn depth1_matches_table5_small_tree() {
        // Table 5's D=1, N=3 configuration: 1 internal + 2 leaves.
        let t = TreeTopology::new(1);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_internal(), 1);
        assert_eq!(t.num_leaves(), 2);
    }

    #[test]
    fn children_and_parents_are_consistent() {
        let t = TreeTopology::new(3);
        for k in 0..t.num_internal() {
            assert_eq!(t.parent(t.left(k)), Some(k));
            assert_eq!(t.parent(t.right(k)), Some(k));
        }
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn internal_vs_leaf_partition() {
        let t = TreeTopology::new(2);
        let internals: Vec<usize> = (0..t.num_nodes()).filter(|&k| t.is_internal(k)).collect();
        assert_eq!(internals, vec![0, 1, 2]);
    }

    #[test]
    fn paths_start_at_root_and_have_depth_length() {
        let t = TreeTopology::new(2);
        for leaf in t.num_internal()..t.num_nodes() {
            let path = t.path_to(leaf);
            assert_eq!(path[0], 0);
            assert_eq!(path.len(), 3);
            assert_eq!(*path.last().unwrap(), leaf);
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let t = TreeTopology::new(0);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_internal(), 0);
        assert_eq!(t.num_leaves(), 1);
    }
}
