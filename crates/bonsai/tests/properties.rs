//! Property-based tests for Bonsai tree invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use thnt_bonsai::{BonsaiConfig, BonsaiTree, TreeTopology};
use thnt_nn::Layer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn topology_node_counts_are_consistent(depth in 0usize..8) {
        let t = TreeTopology::new(depth);
        prop_assert_eq!(t.num_internal() + t.num_leaves(), t.num_nodes());
        prop_assert_eq!(t.num_leaves(), t.num_internal() + 1);
    }

    #[test]
    fn every_node_reaches_root(depth in 1usize..6) {
        let t = TreeTopology::new(depth);
        for k in 0..t.num_nodes() {
            let path = t.path_to(k);
            prop_assert_eq!(path[0], 0);
            prop_assert_eq!(*path.last().unwrap(), k);
            // Consecutive path entries are parent/child.
            for w in path.windows(2) {
                prop_assert_eq!(t.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn leaf_probabilities_form_a_simplex(
        seed in 0u64..200,
        depth in 1usize..4,
        sharpness in 0.5f32..20.0,
    ) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let cfg = BonsaiConfig {
            input_dim: 8,
            proj_dim: 4,
            depth,
            num_classes: 3,
            sigma: 1.0,
            branch_sharpness: sharpness,
        };
        let tree = BonsaiTree::new(cfg, &mut rng);
        let x = thnt_tensor::gaussian(&[5, 8], 0.0, 2.0, &mut rng);
        let p = tree.path_probabilities(&x);
        let topo = tree.topology();
        for s in 0..5 {
            let mut leaf_sum = 0.0f32;
            for k in 0..topo.num_nodes() {
                let v = p.at(&[s, k]);
                prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "p[{s},{k}] = {v}");
                if !topo.is_internal(k) {
                    leaf_sum += v;
                }
            }
            prop_assert!((leaf_sum - 1.0).abs() < 1e-4, "leaf sum {leaf_sum}");
            // Internal-node mass equals children mass.
            for j in 0..topo.num_internal() {
                let parent = p.at(&[s, j]);
                let kids = p.at(&[s, topo.left(j)]) + p.at(&[s, topo.right(j)]);
                prop_assert!((parent - kids).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn forward_is_finite_for_any_input_scale(
        seed in 0u64..100,
        scale in 0.01f32..100.0,
    ) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let cfg = BonsaiConfig {
            input_dim: 6,
            proj_dim: 4,
            depth: 2,
            num_classes: 4,
            sigma: 1.0,
            branch_sharpness: 2.0,
        };
        let mut tree = BonsaiTree::new(cfg, &mut rng);
        let x = thnt_tensor::gaussian(&[3, 6], 0.0, scale, &mut rng);
        let y = tree.forward(&x, false);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
