//! Ternary weight quantization (Li & Liu, "Ternary Weight Networks").
//!
//! The paper quantizes every Strassen matrix with the TWN rule: threshold
//! `Δ = 0.7 · E|w|`, ternary values `t = sign(w) · 1[|w| > Δ]`, and a single
//! positive scale `α = E[|w| : |w| > Δ]` so that `w ≈ α · t`.

use thnt_tensor::Tensor;

/// A ternarized tensor: values in `{−1, 0, 1}` plus the TWN scale factor.
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryWeights {
    /// Ternary values (stored as `f32` in `{−1.0, 0.0, 1.0}`).
    pub values: Tensor,
    /// Positive scale `α` with `w ≈ α · values`.
    pub scale: f32,
}

impl TernaryWeights {
    /// The dense reconstruction `α · t`.
    pub fn reconstruct(&self) -> Tensor {
        let mut out = self.values.clone();
        out.scale(self.scale);
        out
    }

    /// Number of non-zero ternary entries.
    pub fn nonzeros(&self) -> usize {
        self.values.data().iter().filter(|&&v| v != 0.0).count()
    }
}

/// Ternarizes `w` with the TWN rule (`threshold_factor` is the 0.7 of the
/// paper; exposed for ablations).
///
/// # Panics
///
/// Panics if `threshold_factor` is not positive and finite.
pub fn ternarize(w: &Tensor, threshold_factor: f32) -> TernaryWeights {
    assert!(
        threshold_factor.is_finite() && threshold_factor > 0.0,
        "threshold factor must be positive"
    );
    let n = w.numel();
    if n == 0 {
        return TernaryWeights { values: w.clone(), scale: 1.0 };
    }
    let mean_abs: f32 = w.data().iter().map(|v| v.abs()).sum::<f32>() / n as f32;
    let delta = threshold_factor * mean_abs;
    let mut above_sum = 0.0f32;
    let mut above_count = 0usize;
    let values = w.map(|v| if v.abs() > delta { v.signum() } else { 0.0 });
    for &v in w.data() {
        if v.abs() > delta {
            above_sum += v.abs();
            above_count += 1;
        }
    }
    // Degenerate all-zero case: keep a unit scale.
    let scale = if above_count == 0 { 1.0 } else { above_sum / above_count as f32 };
    TernaryWeights { values, scale }
}

/// Ternarizes with the paper's default 0.7 threshold factor.
pub fn ternary_values(w: &Tensor) -> TernaryWeights {
    ternarize(w, 0.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn values_are_ternary() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let w = thnt_tensor::gaussian(&[100], 0.0, 1.0, &mut rng);
        let t = ternary_values(&w);
        assert!(t.values.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        assert!(t.scale > 0.0);
    }

    #[test]
    fn signs_are_preserved() {
        let w = Tensor::from_vec(vec![2.0, -2.0, 0.01, -0.01], &[4]);
        let t = ternary_values(&w);
        assert_eq!(t.values.data(), &[1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn scale_is_mean_of_surviving_magnitudes() {
        let w = Tensor::from_vec(vec![3.0, -5.0, 0.0, 0.0], &[4]);
        let t = ternary_values(&w);
        // mean|w| = 2, delta = 1.4; survivors 3 and 5 -> alpha 4.
        assert!((t.scale - 4.0).abs() < 1e-6);
    }

    #[test]
    fn reconstruction_error_bounded_by_alpha() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let w = thnt_tensor::gaussian(&[500], 0.0, 1.0, &mut rng);
        let t = ternary_values(&w);
        let rec = t.reconstruct();
        // TWN minimises ||w - alpha t||; error must beat the trivial zero
        // approximation.
        let err: f32 = w.data().iter().zip(rec.data()).map(|(a, b)| (a - b).powi(2)).sum();
        let zero_err: f32 = w.data().iter().map(|a| a * a).sum();
        assert!(err < zero_err, "{err} vs {zero_err}");
    }

    #[test]
    fn zero_tensor_is_stable() {
        let t = ternary_values(&Tensor::zeros(&[8]));
        assert!(t.values.data().iter().all(|&v| v == 0.0));
        assert_eq!(t.scale, 1.0);
    }

    #[test]
    fn higher_threshold_increases_sparsity() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let w = thnt_tensor::gaussian(&[1000], 0.0, 1.0, &mut rng);
        let loose = ternarize(&w, 0.3).nonzeros();
        let tight = ternarize(&w, 1.2).nonzeros();
        assert!(tight < loose, "{tight} !< {loose}");
    }
}
