//! The x86_64 AVX-512 `vpopcntq` kernel for the bit-sliced popcount
//! family.
//!
//! Where the AVX2 backend popcounts 4 words per step through a `vpshufb`
//! nibble LUT plus `vpsadbw`, `_mm512_popcnt_epi64` (the AVX512-VPOPCNTDQ
//! extension) counts 8 whole words in a single instruction, so the per-row
//! inner loop collapses to AND + popcount + weighted add over 512-bit
//! blocks. The f32-lane bitplane loops have no AVX-512 variant — the
//! dispatch routes them to the AVX2 code, which every supported host also
//! runs (see [`super::Kernel::Avx512`]'s support predicate).
//!
//! This module is compile-gated to x86_64 and feature-gated at runtime:
//! hosts without `avx512vpopcntdq` reject the backend loudly at dispatch
//! construction (CI covers compilation everywhere; runtime behaviour is
//! only provable on a vpopcntq-capable machine). Integer arithmetic
//! throughout — results are bitwise identical to the scalar backend.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    _mm256_loadu_si256, _mm512_add_epi64, _mm512_and_si512, _mm512_broadcast_i64x4,
    _mm512_castsi256_si512, _mm512_inserti64x4, _mm512_loadu_si512, _mm512_mask_blend_epi64,
    _mm512_popcnt_epi64, _mm512_reduce_add_epi64, _mm512_set_epi64, _mm512_setzero_si512,
    _mm512_sll_epi64, _mm512_sllv_epi64, _mm_cvtsi32_si128,
};

use super::PackedView;

/// Bit-sliced int8 matvec: per 8-word block, each active activation plane
/// is ANDed with the row's `+`/`−` bitplanes, popcounted per word with
/// `vpopcntq`, and accumulated into two weighted u64×8 accumulators
/// shifted by the plane's bit significance (the sign plane's −128 weight
/// swaps the accumulators at shift 7).
///
/// A 4-word remainder (the whole row for ≤256-column layers, the common
/// hidden widths of this model family) would otherwise fall through to the
/// scalar tail; instead it is handled by a half-width step that pairs two
/// activation planes per 512-bit vector and broadcasts the row's 4 mask
/// words to both halves, so one AND + `vpopcntq` + per-lane `vpsllvq`
/// covers two planes at once.
///
/// # Safety
///
/// The caller must have verified AVX-512 F + VPOPCNTDQ support at runtime.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub(crate) unsafe fn bitslice_matvec(v: &PackedView<'_>, planes: &[u64], y: &mut [i32]) {
    let wpr = v.words_per_row;
    let (active, n) = super::active_planes(planes);
    let active = &active[..n];
    let blocks = wpr / 8;
    let rem = blocks * 8;
    let pair_step = wpr - rem >= 4;
    // Activation planes and per-lane shift counts for the 4-word step are
    // row-invariant: hoist them so the row loop only touches weight masks.
    // Lanes 0..4 hold plane 2i, lanes 4..8 hold plane 2i+1.
    let mut xpair = [_mm512_setzero_si512(); 4];
    let mut shifts = [_mm512_setzero_si512(); 4];
    if pair_step {
        for (i, (x, s)) in xpair.iter_mut().zip(shifts.iter_mut()).enumerate() {
            let lo = _mm256_loadu_si256(planes.as_ptr().add(2 * i * wpr + rem).cast());
            let hi = _mm256_loadu_si256(planes.as_ptr().add((2 * i + 1) * wpr + rem).cast());
            *x = _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
            let (b0, b1) = (2 * i as i64, 2 * i as i64 + 1);
            *s = _mm512_set_epi64(b1, b1, b1, b1, b0, b0, b0, b0);
        }
    }
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        let prow = &v.plus[base..base + wpr];
        let mrow = &v.minus[base..base + wpr];
        let mut acc_p = _mm512_setzero_si512();
        let mut acc_m = _mm512_setzero_si512();
        for blk in 0..blocks {
            let pv = _mm512_loadu_si512(prow.as_ptr().add(blk * 8).cast());
            let mv = _mm512_loadu_si512(mrow.as_ptr().add(blk * 8).cast());
            for &b in active {
                let xv = _mm512_loadu_si512(planes.as_ptr().add(b * wpr + blk * 8).cast());
                let cp = _mm512_popcnt_epi64(_mm512_and_si512(xv, pv));
                let cm = _mm512_popcnt_epi64(_mm512_and_si512(xv, mv));
                let sh = _mm_cvtsi32_si128(if b == 7 { 7 } else { b as i32 });
                let (wp, wm) = if b == 7 { (cm, cp) } else { (cp, cm) };
                acc_p = _mm512_add_epi64(acc_p, _mm512_sll_epi64(wp, sh));
                acc_m = _mm512_add_epi64(acc_m, _mm512_sll_epi64(wm, sh));
            }
        }
        if pair_step {
            let wp = _mm512_broadcast_i64x4(_mm256_loadu_si256(prow.as_ptr().add(rem).cast()));
            let wm = _mm512_broadcast_i64x4(_mm256_loadu_si256(mrow.as_ptr().add(rem).cast()));
            for (i, (&xv, &sh)) in xpair.iter().zip(shifts.iter()).enumerate() {
                let cp = _mm512_popcnt_epi64(_mm512_and_si512(xv, wp));
                let cm = _mm512_popcnt_epi64(_mm512_and_si512(xv, wm));
                // The sign plane (plane 7, the upper half of pair 3) weighs
                // −128: swap which accumulator its counts land in, exactly
                // like the `b == 7` swap in the block loop.
                let (sp, sm) = if i == 3 {
                    (_mm512_mask_blend_epi64(0xF0, cp, cm), _mm512_mask_blend_epi64(0xF0, cm, cp))
                } else {
                    (cp, cm)
                };
                acc_p = _mm512_add_epi64(acc_p, _mm512_sllv_epi64(sp, sh));
                acc_m = _mm512_add_epi64(acc_m, _mm512_sllv_epi64(sm, sh));
            }
        }
        let mut acc = _mm512_reduce_add_epi64(acc_p) - _mm512_reduce_add_epi64(acc_m);
        for w in rem + if pair_step { 4 } else { 0 }..wpr {
            acc += super::bitslice_tail_word(planes, wpr, w, prow[w], mrow[w], active);
        }
        *out = acc as i32;
    }
}
