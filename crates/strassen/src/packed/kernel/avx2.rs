//! The x86_64 AVX2 kernel: bitplane bytes expanded to 8-lane `f32` masks,
//! eight columns accumulated per vector instruction.
//!
//! Strategy per 8-column group: one byte of the `+1` word and one byte of
//! the `−1` word each index a 256-entry lookup table of precomputed 8-lane
//! masks (one aligned 32-byte load apiece — cheaper than the
//! broadcast/`vpcmpeqd` expansion sequence), the masks `vandps` with the
//! loaded activations (zeroing the lanes whose weight is 0), and one
//! `vsubps` + one `vaddps` fold the ±contributions into an accumulator.
//! Alternating even/odd groups across two accumulators breaks the addition
//! dependency chain that bounds the scalar kernel's throughput, and the
//! batched entry point register-tiles 4 samples so each mask load is
//! reused across the tile.
//!
//! Columns beyond the last full 8-lane group fall back to the scalar bit
//! iteration (loading past `x.len()` would be out of bounds; the bitplane's
//! padding bits are guaranteed clear but the activation buffer stops at
//! `cols`). The per-row reduction order (two 8-lane partial sums folded at
//! row end) differs from the scalar kernel's strict left-to-right order, so
//! results match scalar only to rounding — see the module docs of
//! [`super`]. Within this backend a sample's reduction order is fixed
//! (group-major, same accumulator schedule in the single and tiled paths),
//! so batching never changes a result bitwise.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    __m256, __m256i, _mm256_add_epi16, _mm256_add_epi32, _mm256_add_epi8, _mm256_add_ps,
    _mm256_and_ps, _mm256_and_si256, _mm256_castps256_ps128, _mm256_castsi256_ps,
    _mm256_castsi256_si128, _mm256_extractf128_ps, _mm256_extracti128_si256, _mm256_load_ps,
    _mm256_load_si256, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_madd_epi16,
    _mm256_maddubs_epi16, _mm256_mul_ps, _mm256_set1_epi16, _mm256_set1_epi32, _mm256_set1_epi8,
    _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256, _mm256_shuffle_epi8,
    _mm256_srli_epi16, _mm256_storeu_ps, _mm256_sub_epi8, _mm256_sub_ps, _mm256_xor_ps,
    _mm_add_epi32, _mm_add_ps, _mm_add_ss, _mm_cvtsi128_si32, _mm_cvtss_f32, _mm_movehl_ps,
    _mm_shuffle_epi32, _mm_shuffle_ps,
};

use super::PackedView;

/// Samples per register tile of [`matmul_samples`]: each pair of mask loads
/// is reused across the tile; 4 samples × 2 accumulators plus masks and the
/// activation register stay within the 16 ymm registers.
const SAMPLE_TILE: usize = 4;

/// 32-byte aligned `[u32 × 8]` rows for aligned `vmovaps` loads.
#[repr(align(32))]
struct MaskLut([[u32; 8]; 256]);

/// `MASK_LUT.0[b][i]` is all-ones iff bit `i` of `b` is set: byte → 8-lane
/// mask in a single load.
static MASK_LUT: MaskLut = MaskLut(build_mask_lut());

const fn build_mask_lut() -> [[u32; 8]; 256] {
    let mut t = [[0u32; 8]; 256];
    let mut b = 0;
    while b < 256 {
        let mut i = 0;
        while i < 8 {
            if b & (1 << i) != 0 {
                t[b][i] = u32::MAX;
            }
            i += 1;
        }
        b += 1;
    }
    t
}

/// The 8-lane mask for byte `bits` (one aligned load from [`MASK_LUT`]).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mask_for(bits: usize) -> __m256 {
    _mm256_load_ps(MASK_LUT.0[bits].as_ptr() as *const f32)
}

/// Horizontal sum of all 8 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256) -> f32 {
    let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    _mm_cvtss_f32(_mm_add_ss(s, _mm_shuffle_ps(s, s, 1)))
}

/// The byte of each bitplane covering 8-column group `g` of a row.
#[inline(always)]
fn group_bytes(plus_row: &[u64], minus_row: &[u64], g: usize) -> (usize, usize) {
    let sh = (g & 7) * 8;
    (((plus_row[g >> 3] >> sh) & 0xff) as usize, ((minus_row[g >> 3] >> sh) & 0xff) as usize)
}

use super::tail_dot;

/// One group's ±masked activations: `(x & plus_mask) − (x & minus_mask)`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn group_delta(xv: __m256, pb: usize, mb: usize) -> __m256 {
    _mm256_sub_ps(_mm256_and_ps(xv, mask_for(pb)), _mm256_and_ps(xv, mask_for(mb)))
}

/// One row's dot product: full 8-lane groups vectorised (each bitplane word
/// hoisted into a register and its 8 bytes peeled without re-indexing the
/// row slices), tail columns via the scalar bit iteration. Even groups
/// accumulate into `a0`, odd into `a1` — [`row_dot_tile`] uses the same
/// schedule so batched and single-sample results are bitwise identical.
#[target_feature(enable = "avx2")]
unsafe fn row_dot(plus_row: &[u64], minus_row: &[u64], x: &[f32]) -> f32 {
    let ngroups = x.len() / 8;
    let nwords = ngroups / 8;
    let (mut a0, mut a1) = (_mm256_setzero_ps(), _mm256_setzero_ps());
    for w in 0..nwords {
        let (pw, mw) = (plus_row[w], minus_row[w]);
        if pw | mw == 0 {
            continue;
        }
        let base = x.as_ptr().add(w * 64);
        // No per-byte skip tests: at TWN density (~2/3 non-zero) a byte is
        // all-zero 0.015% of the time, and adding an all-zero delta is a
        // numeric no-op, so the branches would only burn issue slots.
        for half in 0..4 {
            let (ps, ms) = ((pw >> (16 * half)) as usize, (mw >> (16 * half)) as usize);
            let xv = _mm256_loadu_ps(base.add(half * 16));
            a0 = _mm256_add_ps(a0, group_delta(xv, ps & 0xff, ms & 0xff));
            let xv = _mm256_loadu_ps(base.add(half * 16 + 8));
            a1 = _mm256_add_ps(a1, group_delta(xv, (ps >> 8) & 0xff, (ms >> 8) & 0xff));
        }
    }
    for g in nwords * 8..ngroups {
        let (pb, mb) = group_bytes(plus_row, minus_row, g);
        if pb | mb != 0 {
            let xv = _mm256_loadu_ps(x.as_ptr().add(g * 8));
            let d = group_delta(xv, pb, mb);
            if g & 1 == 0 {
                a0 = _mm256_add_ps(a0, d);
            } else {
                a1 = _mm256_add_ps(a1, d);
            }
        }
    }
    hsum(_mm256_add_ps(a0, a1)) + tail_dot(plus_row, minus_row, x, ngroups * 8)
}

/// An accumulator stripe of `NB` 8-lane blocks (`NB·8` output columns)
/// starting at column `c`: every signed bit contributes one load + one add
/// per block, with the partial sums living in registers for the whole bit
/// list instead of round-tripping through the output row. The sign is
/// applied by XOR-ing the IEEE sign bit (`acc + (−v)` is bitwise
/// `acc − v`), so per element this performs exactly the scalar backend's
/// adds in exactly its order — the output is bitwise identical.
#[target_feature(enable = "avx2")]
unsafe fn rhs_stripe<const NB: usize>(
    md: &[f32],
    p: usize,
    bits: &[(u32, u32)],
    orow: &mut [f32],
    c: usize,
) {
    let mut acc = [_mm256_setzero_ps(); NB];
    for &(j, sign) in bits {
        let base = md.as_ptr().add(j as usize * p + c);
        let flip = _mm256_castsi256_ps(_mm256_set1_epi32(sign as i32));
        for (k, a) in acc.iter_mut().enumerate() {
            let v = _mm256_loadu_ps(base.add(k * 8));
            *a = _mm256_add_ps(*a, _mm256_xor_ps(v, flip));
        }
    }
    for (k, a) in acc.iter().enumerate() {
        _mm256_storeu_ps(orow.as_mut_ptr().add(c + k * 8), *a);
    }
}

/// `y = W·x`, serial over rows.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn matvec_into(v: &PackedView<'_>, x: &[f32], y: &mut [f32]) {
    let wpr = v.words_per_row;
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        *out = row_dot(&v.plus[base..base + wpr], &v.minus[base..base + wpr], x);
    }
}

/// A register tile of `t <= SAMPLE_TILE` samples against one weight row:
/// each group's mask pair is loaded once and applied to every sample in the
/// tile. Per sample, the group order and accumulator schedule are identical
/// to [`row_dot`], so the result is bitwise the same as running the sample
/// alone.
#[target_feature(enable = "avx2")]
unsafe fn row_dot_tile(
    plus_row: &[u64],
    minus_row: &[u64],
    x: &[f32],
    cols: usize,
    t: usize,
    out: &mut [f32],
    rows: usize,
) {
    let ngroups = cols / 8;
    let nwords = ngroups / 8;
    let mut a0 = [_mm256_setzero_ps(); SAMPLE_TILE];
    let mut a1 = [_mm256_setzero_ps(); SAMPLE_TILE];
    for w in 0..nwords {
        let (pw, mw) = (plus_row[w], minus_row[w]);
        if pw | mw == 0 {
            continue;
        }
        for half in 0..4 {
            let (ps, ms) = ((pw >> (16 * half)) as usize, (mw >> (16 * half)) as usize);
            let (pm0, mm0) = (mask_for(ps & 0xff), mask_for(ms & 0xff));
            let (pm1, mm1) = (mask_for((ps >> 8) & 0xff), mask_for((ms >> 8) & 0xff));
            for ti in 0..t {
                let base = x.as_ptr().add(ti * cols + w * 64 + half * 16);
                let xv = _mm256_loadu_ps(base);
                a0[ti] = _mm256_add_ps(
                    a0[ti],
                    _mm256_sub_ps(_mm256_and_ps(xv, pm0), _mm256_and_ps(xv, mm0)),
                );
                let xv = _mm256_loadu_ps(base.add(8));
                a1[ti] = _mm256_add_ps(
                    a1[ti],
                    _mm256_sub_ps(_mm256_and_ps(xv, pm1), _mm256_and_ps(xv, mm1)),
                );
            }
        }
    }
    for g in nwords * 8..ngroups {
        let (pb, mb) = group_bytes(plus_row, minus_row, g);
        if pb | mb != 0 {
            let (pm, mm) = (mask_for(pb), mask_for(mb));
            let acc = if g & 1 == 0 { &mut a0 } else { &mut a1 };
            for (ti, a) in acc.iter_mut().enumerate().take(t) {
                let xv = _mm256_loadu_ps(x.as_ptr().add(ti * cols + g * 8));
                *a = _mm256_add_ps(*a, _mm256_sub_ps(_mm256_and_ps(xv, pm), _mm256_and_ps(xv, mm)));
            }
        }
    }
    for ti in 0..t {
        out[ti * rows] = hsum(_mm256_add_ps(a0[ti], a1[ti]))
            + tail_dot(plus_row, minus_row, &x[ti * cols..(ti + 1) * cols], ngroups * 8);
    }
}

/// Batched activations, register-tiled in groups of [`SAMPLE_TILE`] so each
/// mask load is reused across the tile. Per-sample reduction order matches
/// [`matvec_into`] exactly, so results are identical for a sample served
/// alone or inside any batch.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn matmul_samples(v: &PackedView<'_>, x: &[f32], out: &mut [f32]) {
    let (rows, cols, wpr) = (v.rows, v.cols, v.words_per_row);
    let ns = out.len() / rows;
    let mut s = 0;
    while s < ns {
        let t = (ns - s).min(SAMPLE_TILE);
        for r in 0..rows {
            let base = r * wpr;
            row_dot_tile(
                &v.plus[base..base + wpr],
                &v.minus[base..base + wpr],
                &x[s * cols..(s + t) * cols],
                cols,
                t,
                &mut out[s * rows + r..],
                rows,
            );
        }
        s += t;
    }
}

/// Output rows `r0..` of `W · M` into `chunk` (pre-zeroed): the shared
/// [`super::rhs_rows_striped`] driver over this backend's 64- and 8-column
/// stripes. Element-wise adds in the scalar order throughout, so the
/// output is bitwise identical to the scalar backend's.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn rhs_rows(
    v: &PackedView<'_>,
    md: &[f32],
    p: usize,
    r0: usize,
    chunk: &mut [f32],
) {
    super::rhs_rows_striped(v, md, p, r0, chunk, 64, rhs_stripe::<8>, 8, rhs_stripe::<1>);
}

/// 32-byte aligned nibble→popcount table for `vpshufb`, replicated across
/// both 128-bit lanes.
#[repr(align(32))]
struct PopLut([u8; 32]);

static POP_LUT: PopLut = PopLut([
    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 0
    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 1
]);

/// Per-byte popcount of a 256-bit vector: the Muła `vpshufb` nibble-LUT
/// scheme — two table shuffles and one byte add per vector.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_bytes(v: __m256i) -> __m256i {
    let lut = _mm256_load_si256(POP_LUT.0.as_ptr().cast());
    let low = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
    _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
}

/// Horizontal sum of the eight i32 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_11_10>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
    _mm_cvtsi128_si32(s)
}

/// Bit-sliced int8 matvec: per 4-word block, each active activation plane
/// is ANDed with the row's `+`/`−` bitplanes and popcounted per byte
/// (`vpshufb` LUT); the per-byte count *difference* (a signed byte in
/// `±8`) is then weighted by the plane's significance and pair-summed in
/// one `vpmaddubsw` (unsigned weight `2^b` × signed diff), accumulated in
/// i16 lanes across the block's planes, and folded to i32 once per block
/// with `vpmaddwd`. The sign plane's −128 weight is applied by swapping
/// the diff's operands (weight byte `0x80` is +128 to `vpmaddubsw`). No
/// lane ever overflows: |diff pair| ≤ 16, so a plane term is ≤ 2048 and a
/// block's i16 sum ≤ 16·255. Integer arithmetic throughout — bitwise
/// identical to the scalar backend.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn bitslice_matvec(v: &PackedView<'_>, planes: &[u64], y: &mut [i32]) {
    let wpr = v.words_per_row;
    let (active, n) = super::active_planes(planes);
    let active = &active[..n];
    let blocks = wpr / 4;
    let ones16 = _mm256_set1_epi16(1);
    let weights: [__m256i; 8] =
        std::array::from_fn(|b| _mm256_set1_epi8(((1u32 << b) & 0xff) as i8));
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        let prow = &v.plus[base..base + wpr];
        let mrow = &v.minus[base..base + wpr];
        let mut acc32 = _mm256_setzero_si256();
        for blk in 0..blocks {
            let pv = _mm256_loadu_si256(prow.as_ptr().add(blk * 4).cast());
            let mv = _mm256_loadu_si256(mrow.as_ptr().add(blk * 4).cast());
            let mut acc16 = _mm256_setzero_si256();
            for &b in active {
                let xv = _mm256_loadu_si256(planes.as_ptr().add(b * wpr + blk * 4).cast());
                let cp = popcount_bytes(_mm256_and_si256(xv, pv));
                let cm = popcount_bytes(_mm256_and_si256(xv, mv));
                let d = if b == 7 { _mm256_sub_epi8(cm, cp) } else { _mm256_sub_epi8(cp, cm) };
                acc16 = _mm256_add_epi16(acc16, _mm256_maddubs_epi16(weights[b], d));
            }
            acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(acc16, ones16));
        }
        let mut acc = hsum_epi32(acc32) as i64;
        for w in blocks * 4..wpr {
            acc += super::bitslice_tail_word(planes, wpr, w, prow[w], mrow[w], active);
        }
        *out = acc as i32;
    }
}

/// Element-wise `dst[i] += src[i]` (8 lanes per instruction, scalar tail).
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn slice_add(dst: &mut [f32], src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
        i += 8;
    }
    for j in i..n {
        dst[j] += src[j];
    }
}

/// Element-wise `dst[i] -= src[i]` (8 lanes per instruction, scalar tail).
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn slice_sub(dst: &mut [f32], src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_sub_ps(d, s));
        i += 8;
    }
    for j in i..n {
        dst[j] -= src[j];
    }
}

/// Element-wise `dst[i] += a · src[i]`: `vmulps` then `vaddps`, never a
/// fused multiply-add — fusing would change the rounding and break bitwise
/// equivalence with the scalar backend.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn slice_axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, _mm256_mul_ps(av, s)));
        i += 8;
    }
    for j in i..n {
        dst[j] += a * src[j];
    }
}
