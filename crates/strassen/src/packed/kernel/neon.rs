//! The aarch64 NEON kernel: bitplane nibbles expanded to 4-lane `f32`
//! masks, four columns accumulated per vector instruction.
//!
//! The same design as the AVX2 backend at half the lane width: a 16-entry
//! lookup table turns one nibble of a bitplane word into a 4-lane select
//! mask with a single load, each 64-bit word is hoisted into a register and
//! its 16 nibbles peeled without re-indexing the row slices, and separate
//! even/odd-group accumulators keep the addition dependency chains short.
//! `matmul` register-tiles 4 samples per mask load; `matmul_rhs`
//! accumulates register stripes over a precomputed signed bit list, with
//! the sign applied by XOR-ing the IEEE sign bit so the element-wise add
//! order — and therefore the bitwise result — matches the scalar backend
//! exactly.
//!
//! Columns beyond the last full 4-lane group fall back to the scalar bit
//! iteration. As with AVX2, the folded per-row reduction order means
//! `matvec`/`matmul` results match the scalar kernel only to rounding —
//! see the module docs of [`super`].

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::aarch64::{
    float32x4_t, vaddq_f32, vaddvq_f32, vaddvq_u8, vandq_u32, vandq_u64, vcntq_u8, vdupq_n_f32,
    vdupq_n_u32, veorq_u32, vld1q_f32, vld1q_u32, vld1q_u64, vmulq_f32, vreinterpretq_f32_u32,
    vreinterpretq_u32_f32, vreinterpretq_u8_u64, vst1q_f32, vsubq_f32,
};

use super::PackedView;

/// Samples per register tile of [`matmul_samples`].
const SAMPLE_TILE: usize = 4;

/// `MASK_LUT[n][i]` is all-ones iff bit `i` of nibble `n` is set: nibble →
/// 4-lane mask in a single load.
static MASK_LUT: [[u32; 4]; 16] = build_mask_lut();

const fn build_mask_lut() -> [[u32; 4]; 16] {
    let mut t = [[0u32; 4]; 16];
    let mut n = 0;
    while n < 16 {
        let mut i = 0;
        while i < 4 {
            if n & (1 << i) != 0 {
                t[n][i] = u32::MAX;
            }
            i += 1;
        }
        n += 1;
    }
    t
}

/// The masked activations for one 4-lane group: lanes whose weight bit is
/// clear are zeroed.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn masked(xv: float32x4_t, nibble: usize) -> float32x4_t {
    let mask = vld1q_u32(MASK_LUT[nibble].as_ptr());
    vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(xv), mask))
}

/// One group's ±masked activations: `(x & plus_mask) − (x & minus_mask)`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn group_delta(xv: float32x4_t, pn: usize, mn: usize) -> float32x4_t {
    vsubq_f32(masked(xv, pn), masked(xv, mn))
}

/// The nibble of each bitplane covering 4-column group `g` of a row.
#[inline(always)]
fn group_nibbles(plus_row: &[u64], minus_row: &[u64], g: usize) -> (usize, usize) {
    let sh = (g & 15) * 4;
    (((plus_row[g >> 4] >> sh) & 0xf) as usize, ((minus_row[g >> 4] >> sh) & 0xf) as usize)
}

use super::tail_dot;

/// One row's dot product: full 4-lane groups vectorised (each bitplane word
/// hoisted, its 16 nibbles peeled branchlessly — at TWN density a nibble is
/// rarely all-zero, so per-group skip tests would only burn issue slots),
/// tail columns via the scalar bit iteration. Even groups accumulate into
/// `a0`, odd into `a1` — [`row_dot_tile`] uses the same schedule so batched
/// and single-sample results are bitwise identical.
#[target_feature(enable = "neon")]
unsafe fn row_dot(plus_row: &[u64], minus_row: &[u64], x: &[f32]) -> f32 {
    let ngroups = x.len() / 4;
    let nwords = ngroups / 16;
    let (mut a0, mut a1) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
    for w in 0..nwords {
        let (pw, mw) = (plus_row[w], minus_row[w]);
        if pw | mw == 0 {
            continue;
        }
        let base = x.as_ptr().add(w * 64);
        for pair in 0..8 {
            let (ps, ms) =
                (((pw >> (8 * pair)) & 0xff) as usize, ((mw >> (8 * pair)) & 0xff) as usize);
            let xv = vld1q_f32(base.add(pair * 8));
            a0 = vaddq_f32(a0, group_delta(xv, ps & 0xf, ms & 0xf));
            let xv = vld1q_f32(base.add(pair * 8 + 4));
            a1 = vaddq_f32(a1, group_delta(xv, ps >> 4, ms >> 4));
        }
    }
    for g in nwords * 16..ngroups {
        let (pn, mn) = group_nibbles(plus_row, minus_row, g);
        if pn | mn != 0 {
            let xv = vld1q_f32(x.as_ptr().add(g * 4));
            let d = group_delta(xv, pn, mn);
            if g & 1 == 0 {
                a0 = vaddq_f32(a0, d);
            } else {
                a1 = vaddq_f32(a1, d);
            }
        }
    }
    vaddvq_f32(vaddq_f32(a0, a1)) + tail_dot(plus_row, minus_row, x, ngroups * 4)
}

/// `y = W·x`, serial over rows.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn matvec_into(v: &PackedView<'_>, x: &[f32], y: &mut [f32]) {
    let wpr = v.words_per_row;
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        *out = row_dot(&v.plus[base..base + wpr], &v.minus[base..base + wpr], x);
    }
}

/// A register tile of `t <= SAMPLE_TILE` samples against one weight row:
/// each group's mask pair is loaded once and applied to every sample in
/// the tile. Per sample, the group order and accumulator schedule are
/// identical to [`row_dot`], so the result is bitwise the same as running
/// the sample alone.
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
unsafe fn row_dot_tile(
    plus_row: &[u64],
    minus_row: &[u64],
    x: &[f32],
    cols: usize,
    t: usize,
    out: &mut [f32],
    rows: usize,
) {
    let ngroups = cols / 4;
    let nwords = ngroups / 16;
    let mut a0 = [vdupq_n_f32(0.0); SAMPLE_TILE];
    let mut a1 = [vdupq_n_f32(0.0); SAMPLE_TILE];
    for w in 0..nwords {
        let (pw, mw) = (plus_row[w], minus_row[w]);
        if pw | mw == 0 {
            continue;
        }
        for pair in 0..8 {
            let (ps, ms) =
                (((pw >> (8 * pair)) & 0xff) as usize, ((mw >> (8 * pair)) & 0xff) as usize);
            for ti in 0..t {
                let base = x.as_ptr().add(ti * cols + w * 64 + pair * 8);
                let xv = vld1q_f32(base);
                a0[ti] = vaddq_f32(a0[ti], group_delta(xv, ps & 0xf, ms & 0xf));
                let xv = vld1q_f32(base.add(4));
                a1[ti] = vaddq_f32(a1[ti], group_delta(xv, ps >> 4, ms >> 4));
            }
        }
    }
    for g in nwords * 16..ngroups {
        let (pn, mn) = group_nibbles(plus_row, minus_row, g);
        if pn | mn != 0 {
            let acc = if g & 1 == 0 { &mut a0 } else { &mut a1 };
            for (ti, a) in acc.iter_mut().enumerate().take(t) {
                let xv = vld1q_f32(x.as_ptr().add(ti * cols + g * 4));
                *a = vaddq_f32(*a, group_delta(xv, pn, mn));
            }
        }
    }
    for ti in 0..t {
        out[ti * rows] = vaddvq_f32(vaddq_f32(a0[ti], a1[ti]))
            + tail_dot(plus_row, minus_row, &x[ti * cols..(ti + 1) * cols], ngroups * 4);
    }
}

/// Batched activations, register-tiled in groups of [`SAMPLE_TILE`] so each
/// mask load is reused across the tile. Per-sample reduction order matches
/// [`matvec_into`] exactly, so results are identical for a sample served
/// alone or inside any batch.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn matmul_samples(v: &PackedView<'_>, x: &[f32], out: &mut [f32]) {
    let (rows, cols, wpr) = (v.rows, v.cols, v.words_per_row);
    let ns = out.len() / rows;
    let mut s = 0;
    while s < ns {
        let t = (ns - s).min(SAMPLE_TILE);
        for r in 0..rows {
            let base = r * wpr;
            row_dot_tile(
                &v.plus[base..base + wpr],
                &v.minus[base..base + wpr],
                &x[s * cols..(s + t) * cols],
                cols,
                t,
                &mut out[s * rows + r..],
                rows,
            );
        }
        s += t;
    }
}

/// An accumulator stripe of `NB` 4-lane blocks (`NB·4` output columns)
/// starting at column `c`: every signed bit contributes one load + one add
/// per block, with the partial sums living in registers for the whole bit
/// list. The sign is applied by XOR-ing the IEEE sign bit, so per element
/// this performs exactly the scalar backend's adds in exactly its order —
/// the output is bitwise identical.
#[target_feature(enable = "neon")]
unsafe fn rhs_stripe<const NB: usize>(
    md: &[f32],
    p: usize,
    bits: &[(u32, u32)],
    orow: &mut [f32],
    c: usize,
) {
    let mut acc = [vdupq_n_f32(0.0); NB];
    for &(j, sign) in bits {
        let base = md.as_ptr().add(j as usize * p + c);
        let flip = vdupq_n_u32(sign);
        for (k, a) in acc.iter_mut().enumerate() {
            let v = vreinterpretq_u32_f32(vld1q_f32(base.add(k * 4)));
            *a = vaddq_f32(*a, vreinterpretq_f32_u32(veorq_u32(v, flip)));
        }
    }
    for (k, a) in acc.iter().enumerate() {
        vst1q_f32(orow.as_mut_ptr().add(c + k * 4), *a);
    }
}

/// Output rows `r0..` of `W · M` into `chunk` (pre-zeroed): the shared
/// [`super::rhs_rows_striped`] driver over this backend's 32- and 4-column
/// stripes. Element-wise adds in the scalar order throughout, so the
/// output is bitwise identical to the scalar backend's.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn rhs_rows(
    v: &PackedView<'_>,
    md: &[f32],
    p: usize,
    r0: usize,
    chunk: &mut [f32],
) {
    super::rhs_rows_striped(v, md, p, r0, chunk, 32, rhs_stripe::<8>, 4, rhs_stripe::<1>);
}

/// Bit-sliced int8 matvec: per 2-word (128-bit) block, each active
/// activation plane is ANDed with the row's `+`/`−` bitplanes, popcounted
/// per byte with `vcnt`, and folded with `vaddv` (16 bytes × ≤8 bits fits
/// a u8 horizontal sum). Integer arithmetic throughout — bitwise identical
/// to the scalar backend.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn bitslice_matvec(v: &PackedView<'_>, planes: &[u64], y: &mut [i32]) {
    let wpr = v.words_per_row;
    let (active, n) = super::active_planes(planes);
    let active = &active[..n];
    let blocks = wpr / 2;
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        let prow = &v.plus[base..base + wpr];
        let mrow = &v.minus[base..base + wpr];
        let mut acc = 0i64;
        for blk in 0..blocks {
            let pv = vld1q_u64(prow.as_ptr().add(blk * 2));
            let mv = vld1q_u64(mrow.as_ptr().add(blk * 2));
            for &b in active {
                let xv = vld1q_u64(planes.as_ptr().add(b * wpr + blk * 2));
                let cp = vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(vandq_u64(xv, pv)))) as i64;
                let cm = vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(vandq_u64(xv, mv)))) as i64;
                acc += super::plane_weight(b) as i64 * (cp - cm);
            }
        }
        for w in blocks * 2..wpr {
            acc += super::bitslice_tail_word(planes, wpr, w, prow[w], mrow[w], active);
        }
        *out = acc as i32;
    }
}

/// Element-wise `dst[i] += src[i]` (4 lanes per instruction, scalar tail).
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn slice_add(dst: &mut [f32], src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let mut i = 0;
    while i + 4 <= n {
        let d = vld1q_f32(dst.as_ptr().add(i));
        let s = vld1q_f32(src.as_ptr().add(i));
        vst1q_f32(dst.as_mut_ptr().add(i), vaddq_f32(d, s));
        i += 4;
    }
    for j in i..n {
        dst[j] += src[j];
    }
}

/// Element-wise `dst[i] -= src[i]` (4 lanes per instruction, scalar tail).
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn slice_sub(dst: &mut [f32], src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let mut i = 0;
    while i + 4 <= n {
        let d = vld1q_f32(dst.as_ptr().add(i));
        let s = vld1q_f32(src.as_ptr().add(i));
        vst1q_f32(dst.as_mut_ptr().add(i), vsubq_f32(d, s));
        i += 4;
    }
    for j in i..n {
        dst[j] -= src[j];
    }
}

/// Element-wise `dst[i] += a · src[i]`: `fmul` then `fadd`, never a fused
/// multiply-add — fusing would change the rounding and break bitwise
/// equivalence with the scalar backend.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn slice_axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    let n = src.len();
    let dst = &mut dst[..n];
    let av = vdupq_n_f32(a);
    let mut i = 0;
    while i + 4 <= n {
        let d = vld1q_f32(dst.as_ptr().add(i));
        let s = vld1q_f32(src.as_ptr().add(i));
        vst1q_f32(dst.as_mut_ptr().add(i), vaddq_f32(d, vmulq_f32(av, s)));
        i += 4;
    }
    for j in i..n {
        dst[j] += a * src[j];
    }
}
