//! Runtime-dispatched compute kernels for the packed bitplane operations.
//!
//! The word-level add-only loops in [`super`] (`matvec`, `matmul`,
//! `matmul_rhs`) are the hottest code in the repository — every packed
//! layer, every streaming window and every served session funnels through
//! them. This module gives those loops three interchangeable backends:
//!
//! * [`Kernel::Scalar`] — the portable reference implementation: iterate
//!   each word's set bits with `trailing_zeros` and add/subtract one `f32`
//!   at a time. Kept verbatim from the pre-SIMD engine; every other backend
//!   is tested against it.
//! * [`Kernel::Avx2`] — x86_64: each bitplane byte indexes a lookup table
//!   of 8-lane `f32` masks, the input lanes are blended with `vandps`, and
//!   a vector sub/add accumulates 8 columns per instruction; batched and
//!   column-matrix forms amortise mask loads across register tiles and
//!   stripes. See the `avx2` module in this directory.
//! * [`Kernel::Neon`] — aarch64: the same design at 4 lanes (nibble-indexed
//!   mask table, `vand`/`vsub`/`vadd`). See the `neon` module.
//!
//! * [`Kernel::Avx512`] — x86_64 with `vpopcntq`: identical to AVX2 for
//!   the f32-lane bitplane loops (every AVX-512 host runs them), but the
//!   bit-sliced popcount family below uses `_mm512_popcnt_epi64` over
//!   8-word blocks. See the `avx512` module.
//!
//! Besides the f32-lane bitplane loops, every backend also implements:
//!
//! * the **bit-sliced popcount family** ([`super::bitslice`]): activations
//!   as per-bit u64 planes, a row dot reduced to
//!   `(x_plane & w_plus).count_ones() − (x_plane & w_minus).count_ones()`
//!   accumulated with plane shifts — exact integer arithmetic, so every
//!   backend is bitwise identical here;
//! * **element-wise slice ops** ([`KernelDispatch::slice_add`] /
//!   [`KernelDispatch::slice_sub`] / [`KernelDispatch::slice_axpy`]) for
//!   the depthwise tap loops — element-wise with no reassociation (the
//!   SIMD `axpy` multiplies then adds, never fusing), so also bitwise
//!   identical across backends.
//!
//! The backend is chosen **once** per process by [`KernelDispatch::get`]:
//! the `THNT_KERNEL` environment variable
//! (`scalar` | `avx2` | `avx512` | `neon`) forces a backend for
//! benchmarking and CI, otherwise runtime feature detection picks the
//! widest supported one. An unknown or unsupported `THNT_KERNEL` value
//! aborts loudly — a benchmark silently falling back to scalar would
//! report fiction.
//!
//! # Exactness
//!
//! The scalar kernel adds columns strictly left-to-right; the SIMD kernels
//! keep 8 (or 4) independent partial sums that are folded at the end of
//! each row. Floating-point addition is not associative, so the backends
//! agree only to within rounding (≤ 1e-5 relative on realistic
//! magnitudes), never bitwise — the equivalence proptests in
//! `crates/strassen/tests/kernel_equivalence.rs` pin exactly this
//! contract. Within one backend, results are deterministic and
//! batch-size-invariant: every sample/row is reduced in the same order
//! whether it arrives alone or in a batch. The bit-sliced popcount family
//! and the element-wise slice ops are the exception: integer arithmetic
//! and element-wise f32 respectively, bitwise identical everywhere.

use std::sync::OnceLock;

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;

/// Borrowed view of a [`super::PackedTernary`]'s bitplanes — the raw
/// operands every kernel backend consumes, without tying the kernels to the
/// owning struct.
#[derive(Debug, Clone, Copy)]
pub struct PackedView<'a> {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns (logical width; rows are padded to whole words).
    pub cols: usize,
    /// `u64` words per row of each bitplane: `cols.div_ceil(64)`.
    pub words_per_row: usize,
    /// The `+1` bitplane, row-major. Padding bits are clear.
    pub plus: &'a [u64],
    /// The `−1` bitplane, same layout. Never overlaps `plus`.
    pub minus: &'a [u64],
}

/// A compute-kernel backend identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable bit-iteration reference kernel (always available).
    Scalar,
    /// 8-lane AVX2 mask-blend kernel (x86_64 with AVX2 support).
    Avx2,
    /// AVX-512 `vpopcntq` kernel for the bit-sliced popcount family; the
    /// f32-lane loops reuse the AVX2 implementation (x86_64 with AVX-512
    /// `vpopcntdq` support).
    Avx512,
    /// 4-lane NEON mask-select kernel (aarch64).
    Neon,
}

impl Kernel {
    /// The backend's stable lowercase name — the value `THNT_KERNEL`
    /// accepts and the `kernel` field benchmark rows report.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a `THNT_KERNEL` value.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for anything other than `scalar`,
    /// `avx2`, `avx512` or `neon` — unknown names must fail loudly, not
    /// silently fall back.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(Kernel::Scalar),
            "avx2" => Ok(Kernel::Avx2),
            "avx512" => Ok(Kernel::Avx512),
            "neon" => Ok(Kernel::Neon),
            other => Err(format!(
                "unknown THNT_KERNEL value {other:?}: expected \"scalar\", \"avx2\", \
                 \"avx512\" or \"neon\""
            )),
        }
    }

    /// Whether this backend can run on the current host (compile-target
    /// architecture plus runtime CPU feature detection).
    pub fn is_supported(&self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            // The f32-lane loops route to the AVX2 code, so AVX2 must be
            // present alongside the popcount extension.
            Kernel::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                    && std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every backend the current host supports, widest first ([`Kernel::Scalar`]
    /// is always present and always last).
    pub fn available() -> Vec<Kernel> {
        [Kernel::Avx512, Kernel::Avx2, Kernel::Neon, Kernel::Scalar]
            .into_iter()
            .filter(Kernel::is_supported)
            .collect()
    }

    /// The widest backend the current host supports.
    pub fn detect() -> Kernel {
        Kernel::available()[0]
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A resolved kernel backend: the handle the packed operations route
/// through.
///
/// The process-wide default is resolved once by [`KernelDispatch::get`];
/// explicit handles ([`KernelDispatch::new`]) let benchmarks and the
/// equivalence tests pit backends against each other in one process.
///
/// # Examples
///
/// ```
/// use thnt_strassen::packed::kernel::{Kernel, KernelDispatch};
///
/// // The process default: THNT_KERNEL override or runtime detection.
/// let active = KernelDispatch::get();
/// assert!(active.kernel().is_supported());
///
/// // An explicit handle for a specific backend.
/// let scalar = KernelDispatch::new(Kernel::Scalar).unwrap();
/// assert_eq!(scalar.kernel().name(), "scalar");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    kernel: Kernel,
}

static ACTIVE: OnceLock<KernelDispatch> = OnceLock::new();

impl KernelDispatch {
    /// Wraps a specific backend.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if the backend is not supported on the
    /// current host (e.g. `Kernel::Neon` on x86_64, or `Kernel::Avx2` on a
    /// CPU without AVX2).
    pub fn new(kernel: Kernel) -> Result<Self, String> {
        if kernel.is_supported() {
            Ok(Self { kernel })
        } else {
            Err(format!("kernel {:?} is not supported on this host", kernel.name()))
        }
    }

    /// The process-wide dispatch handle, resolved once on first use:
    /// `THNT_KERNEL` (`scalar` | `avx2` | `avx512` | `neon`) if set,
    /// otherwise the widest backend runtime detection finds.
    ///
    /// # Panics
    ///
    /// Panics if `THNT_KERNEL` names an unknown or unsupported backend —
    /// the override exists for benchmarking and CI, where a silent fallback
    /// would invalidate the run.
    pub fn get() -> &'static KernelDispatch {
        ACTIVE.get_or_init(|| match Self::resolve(std::env::var("THNT_KERNEL").ok().as_deref()) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        })
    }

    /// The resolution rule behind [`Self::get`], parameterised over the
    /// `THNT_KERNEL` value so tests can exercise it without mutating the
    /// process environment: `None` detects, `Some(name)` forces.
    ///
    /// # Errors
    ///
    /// Returns the parse/support error for an unknown or unsupported
    /// override.
    pub fn resolve(env: Option<&str>) -> Result<Self, String> {
        match env {
            None => Self::new(Kernel::detect()),
            Some(name) => Self::new(Kernel::parse(name)?),
        }
    }

    /// The backend this handle routes to.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// `y = W·x` over the view's bitplanes, serial over rows.
    ///
    /// Caller guarantees `x.len() == v.cols` and `y.len() == v.rows`.
    #[inline]
    pub(crate) fn matvec_into(&self, v: &PackedView<'_>, x: &[f32], y: &mut [f32]) {
        match self.kernel {
            Kernel::Scalar => scalar::matvec_into(v, x, y),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::matvec_into(v, x, y) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::matvec_into(v, x, y) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Batched activations: computes `out[s·rows + r] = Wᵣ · xₛ` for the
    /// `ns = out.len() / v.rows` samples stored contiguously in `x`
    /// (`ns × cols`, row-major). Serial — callers parallelise across sample
    /// chunks at a coarser grain.
    ///
    /// Caller guarantees `x.len() == ns · v.cols` and
    /// `out.len() == ns · v.rows`.
    #[inline]
    pub(crate) fn matmul_samples(&self, v: &PackedView<'_>, x: &[f32], out: &mut [f32]) {
        match self.kernel {
            Kernel::Scalar => scalar::matmul_samples(v, x, out),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::matmul_samples(v, x, out) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::matmul_samples(v, x, out) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Column-matrix product rows: computes output rows `r0..` of `W · M`
    /// into `chunk` (a whole number of `p`-wide rows, pre-zeroed), where
    /// `md` is `M` in row-major `[cols, p]`. Each set bit contributes a
    /// contiguous `p`-long row of `M`; the add is element-wise, so every
    /// backend produces bitwise identical output here.
    ///
    /// Caller guarantees `md.len() == v.cols · p` and
    /// `chunk.len()` a multiple of `p` with `r0 + chunk.len()/p <= v.rows`.
    #[inline]
    pub(crate) fn rhs_rows(
        &self,
        v: &PackedView<'_>,
        md: &[f32],
        p: usize,
        r0: usize,
        chunk: &mut [f32],
    ) {
        match self.kernel {
            Kernel::Scalar => scalar::rhs_rows(v, md, p, r0, chunk),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::rhs_rows(v, md, p, r0, chunk) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::rhs_rows(v, md, p, r0, chunk) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Bit-sliced int8 matvec: `y[r] = Wᵣ · q` where `q` is stored as 8
    /// per-bit u64 planes (two's complement, plane `b` at
    /// `planes[b·wpr..(b+1)·wpr]`) and `W` is the view's ternary bitplanes.
    /// Pure AND+popcount, exact i32 accumulation — bitwise identical across
    /// every backend.
    ///
    /// Caller guarantees `planes.len() == 8 · v.words_per_row` and
    /// `y.len() == v.rows`.
    #[inline]
    pub(crate) fn bitslice_matvec(&self, v: &PackedView<'_>, planes: &[u64], y: &mut [i32]) {
        match self.kernel {
            Kernel::Scalar => scalar::bitslice_matvec(v, planes, y),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support.
            Kernel::Avx2 => unsafe { avx2::bitslice_matvec(v, planes, y) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX-512
            // vpopcntdq support.
            Kernel::Avx512 => unsafe { avx512::bitslice_matvec(v, planes, y) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::bitslice_matvec(v, planes, y) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Element-wise `dst[i] += src[i]` over `src.len()` elements.
    ///
    /// Element-wise with no reassociation, so every backend produces
    /// bitwise identical output.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < src.len()`.
    #[inline]
    pub fn slice_add(&self, dst: &mut [f32], src: &[f32]) {
        match self.kernel {
            Kernel::Scalar => scalar::slice_add(dst, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::slice_add(dst, src) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::slice_add(dst, src) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Element-wise `dst[i] -= src[i]` over `src.len()` elements.
    ///
    /// Element-wise with no reassociation, so every backend produces
    /// bitwise identical output.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < src.len()`.
    #[inline]
    pub fn slice_sub(&self, dst: &mut [f32], src: &[f32]) {
        match self.kernel {
            Kernel::Scalar => scalar::slice_sub(dst, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::slice_sub(dst, src) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::slice_sub(dst, src) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// Element-wise `dst[i] += a · src[i]` over `src.len()` elements.
    ///
    /// Every backend multiplies then adds (no fused multiply-add — fusing
    /// would change rounding), so the output is bitwise identical across
    /// backends.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < src.len()`.
    #[inline]
    pub fn slice_axpy(&self, dst: &mut [f32], a: f32, src: &[f32]) {
        match self.kernel {
            Kernel::Scalar => scalar::slice_axpy(dst, a, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch` construction verified AVX2 support
            // (Avx512 support implies it — the f32 loops are shared).
            Kernel::Avx2 | Kernel::Avx512 => unsafe { avx2::slice_axpy(dst, a, src) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `KernelDispatch` construction verified NEON support.
            Kernel::Neon => unsafe { neon::slice_axpy(dst, a, src) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }
}

/// Bit-significance weight of plane `b` of a two's-complement bit-sliced
/// int8 value: `2^b` for the magnitude planes, `−128` for the sign plane.
#[inline(always)]
pub(crate) fn plane_weight(b: usize) -> i32 {
    if b == 7 {
        -128
    } else {
        1 << b
    }
}

/// The planes of a bit-sliced activation block with any bit set, ascending.
/// Activations are often non-negative (post-ReLU) or small, leaving the
/// sign or high-magnitude planes all-zero — one cheap scan per matvec lets
/// every backend skip them entirely. Skipping is exact: an all-zero plane
/// contributes nothing to the integer accumulator.
pub(crate) fn active_planes(planes: &[u64]) -> ([usize; 8], usize) {
    let wpr = planes.len() / 8;
    let mut active = [0usize; 8];
    let mut n = 0;
    for b in 0..8 {
        if planes[b * wpr..(b + 1) * wpr].iter().any(|&w| w != 0) {
            active[n] = b;
            n += 1;
        }
    }
    (active, n)
}

/// One word's exact bit-sliced contribution to a row's integer dot — the
/// scalar tail the SIMD popcount kernels use for words beyond the last full
/// vector block. `pw`/`mw` are the row's `+1`/`−1` words at word index `w`.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline(always)]
pub(crate) fn bitslice_tail_word(
    planes: &[u64],
    wpr: usize,
    w: usize,
    pw: u64,
    mw: u64,
    active: &[usize],
) -> i64 {
    let mut acc = 0i64;
    for &b in active {
        let xw = planes[b * wpr + w];
        let s = (xw & pw).count_ones() as i64 - (xw & mw).count_ones() as i64;
        acc += plane_weight(b) as i64 * s;
    }
    acc
}

/// Scalar bit iteration over columns `c0..x.len()` of one row — the tail a
/// vector load cannot touch. Shared by the SIMD backends.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline(always)]
pub(crate) fn tail_dot(plus_row: &[u64], minus_row: &[u64], x: &[f32], c0: usize) -> f32 {
    let mut acc = 0.0f32;
    for c in c0..x.len() {
        let bit = 1u64 << (c & 63);
        if plus_row[c >> 6] & bit != 0 {
            acc += x[c];
        } else if minus_row[c >> 6] & bit != 0 {
            acc -= x[c];
        }
    }
    acc
}

/// A signed-bit stripe kernel: accumulates every `(row of M, IEEE sign
/// bit)` entry's `md` block into registers for a fixed span of output
/// columns starting at the last argument.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) type StripeFn = unsafe fn(&[f32], usize, &[(u32, u32)], &mut [f32], usize);

/// Shared driver for the SIMD `rhs_rows` implementations: extracts each
/// output row's signed bit list in the scalar backend's word order (plus
/// bits ascending then minus bits ascending, per word; sign encoded as the
/// IEEE sign bit), runs `wide`-/`narrow`-column register stripes over the
/// full blocks, and finishes the ragged columns with a scalar loop in the
/// same bit order — per element exactly the scalar backend's adds in
/// exactly its order, so every backend stays bitwise identical to scalar.
///
/// # Safety
///
/// The caller must guarantee the CPU supports whatever target features the
/// stripe functions were compiled with.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn rhs_rows_striped(
    v: &PackedView<'_>,
    md: &[f32],
    p: usize,
    r0: usize,
    chunk: &mut [f32],
    wide_cols: usize,
    wide: StripeFn,
    narrow_cols: usize,
    narrow: StripeFn,
) {
    let wpr = v.words_per_row;
    // (row of M, IEEE sign bit) per non-zero entry, reused across rows.
    let mut bits: Vec<(u32, u32)> = Vec::with_capacity(64 * wpr);
    for (ri, orow) in chunk.chunks_mut(p).enumerate() {
        let base = (r0 + ri) * wpr;
        bits.clear();
        for w in 0..wpr {
            let off = (w * 64) as u32;
            let mut pl = v.plus[base + w];
            while pl != 0 {
                bits.push((off + pl.trailing_zeros(), 0));
                pl &= pl - 1;
            }
            let mut mi = v.minus[base + w];
            while mi != 0 {
                bits.push((off + mi.trailing_zeros(), 1 << 31));
                mi &= mi - 1;
            }
        }
        if bits.is_empty() {
            continue; // the pre-zeroed row is already the answer
        }
        let mut c = 0;
        while c + wide_cols <= p {
            // SAFETY: forwarded from the caller's contract.
            unsafe { wide(md, p, &bits, orow, c) };
            c += wide_cols;
        }
        while c + narrow_cols <= p {
            // SAFETY: forwarded from the caller's contract.
            unsafe { narrow(md, p, &bits, orow, c) };
            c += narrow_cols;
        }
        for cc in c..p {
            let mut acc = 0.0f32;
            for &(j, sign) in &bits {
                acc += f32::from_bits(md[j as usize * p + cc].to_bits() ^ sign);
            }
            orow[cc] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_listed_last() {
        assert!(Kernel::Scalar.is_supported());
        let avail = Kernel::available();
        assert_eq!(*avail.last().unwrap(), Kernel::Scalar);
        assert!(avail.contains(&Kernel::detect()));
    }

    #[test]
    fn parse_accepts_exactly_the_documented_names() {
        assert_eq!(Kernel::parse("scalar").unwrap(), Kernel::Scalar);
        assert_eq!(Kernel::parse("avx2").unwrap(), Kernel::Avx2);
        assert_eq!(Kernel::parse("avx512").unwrap(), Kernel::Avx512);
        assert_eq!(Kernel::parse("neon").unwrap(), Kernel::Neon);
        for bad in ["", "AVX2", "sse", "auto", "scalar ", "avx512vpopcntdq"] {
            assert!(Kernel::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn resolve_without_override_detects_a_working_kernel() {
        let d = KernelDispatch::resolve(None).expect("detection must always succeed");
        assert!(d.kernel().is_supported());
        // The resolved default must actually compute: a tiny smoke matvec.
        let plus = [0b101u64];
        let minus = [0b010u64];
        let v = PackedView { rows: 1, cols: 3, words_per_row: 1, plus: &plus, minus: &minus };
        let mut y = [0.0f32];
        d.matvec_into(&v, &[1.0, 10.0, 100.0], &mut y);
        assert_eq!(y[0], 1.0 - 10.0 + 100.0);
    }

    #[test]
    fn resolve_honours_a_valid_override() {
        let d = KernelDispatch::resolve(Some("scalar")).unwrap();
        assert_eq!(d.kernel(), Kernel::Scalar);
        // Every supported backend resolves to a working kernel.
        for k in Kernel::available() {
            let d = KernelDispatch::resolve(Some(k.name())).unwrap();
            assert_eq!(d.kernel(), k);
            let plus = [1u64 << 63];
            let minus = [0u64];
            let v = PackedView { rows: 1, cols: 64, words_per_row: 1, plus: &plus, minus: &minus };
            let mut x = vec![0.0f32; 64];
            x[63] = 7.5;
            let mut y = [0.0f32];
            d.matvec_into(&v, &x, &mut y);
            assert_eq!(y[0], 7.5, "kernel {k} must compute");
        }
    }

    #[test]
    fn resolve_rejects_unknown_values_loudly() {
        let err = KernelDispatch::resolve(Some("turbo")).unwrap_err();
        assert!(err.contains("unknown THNT_KERNEL"), "got: {err}");
        assert!(err.contains("turbo"), "the bad value must be named: {err}");
    }

    #[cfg(not(target_arch = "aarch64"))]
    #[test]
    fn resolve_rejects_unsupported_backends_loudly() {
        let err = KernelDispatch::resolve(Some("neon")).unwrap_err();
        assert!(err.contains("not supported"), "got: {err}");
    }

    #[test]
    fn avx512_resolves_only_where_detected() {
        // On hosts without vpopcntq the override must fail loudly (never a
        // silent scalar fallback); where supported it must resolve to itself.
        match KernelDispatch::resolve(Some("avx512")) {
            Ok(d) => {
                assert!(Kernel::Avx512.is_supported());
                assert_eq!(d.kernel(), Kernel::Avx512);
            }
            Err(e) => {
                assert!(!Kernel::Avx512.is_supported());
                assert!(e.contains("not supported"), "got: {e}");
            }
        }
    }

    #[test]
    fn every_backend_computes_the_same_bitsliced_dot() {
        // cols = 3: weights [+1, −1, +1], activations [5, −7, 100].
        let plus = [0b101u64];
        let minus = [0b010u64];
        let v = PackedView { rows: 1, cols: 3, words_per_row: 1, plus: &plus, minus: &minus };
        let mut planes = [0u64; 8];
        for (i, q) in [5i8, -7, 100].into_iter().enumerate() {
            for (b, plane) in planes.iter_mut().enumerate() {
                *plane |= ((q as u8 as u64) >> b & 1) << i;
            }
        }
        for k in Kernel::available() {
            let d = KernelDispatch::new(k).unwrap();
            let mut y = [0i32];
            d.bitslice_matvec(&v, &planes, &mut y);
            assert_eq!(y[0], 5 + 7 + 100, "kernel {k}");
        }
    }

    #[test]
    fn active_planes_reports_set_planes_only() {
        let mut planes = [0u64; 16]; // 8 planes × 2 words
        planes[2 * 2] = 1; // plane 2
        planes[7 * 2 + 1] = 1 << 63; // plane 7, second word
        let (active, n) = active_planes(&planes);
        assert_eq!(&active[..n], &[2, 7]);
        assert_eq!(active_planes(&[0u64; 8]).1, 0);
    }

    #[test]
    fn get_resolves_to_a_supported_kernel() {
        // Whatever the process environment says (CI sets THNT_KERNEL in the
        // per-backend equivalence runs), the resolved handle must work.
        let d = KernelDispatch::get();
        assert!(d.kernel().is_supported());
        if let Ok(name) = std::env::var("THNT_KERNEL") {
            assert_eq!(d.kernel().name(), name, "override must win");
        }
    }
}
