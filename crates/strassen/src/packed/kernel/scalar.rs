//! The portable reference kernel: per-word bit iteration via
//! `trailing_zeros`, one `f32` add/subtract per set bit.
//!
//! These loops are the pre-SIMD engine verbatim — strictly left-to-right
//! accumulation, no reassociation — and serve as the ground truth the SIMD
//! backends are property-tested against.

use super::PackedView;

/// Bits per storage word of one bitplane.
const WORD_BITS: usize = 64;

/// Samples processed together by [`matmul_samples`]: each weight word is
/// decoded once per tile, and the tile's accumulators live in registers.
const SAMPLE_TILE: usize = 4;

/// One row's add-only dot product against `x`, iterating set bits so zero
/// entries cost nothing.
#[inline]
fn row_dot(v: &PackedView<'_>, r: usize, x: &[f32]) -> f32 {
    let base = r * v.words_per_row;
    let mut acc = 0.0f32;
    for w in 0..v.words_per_row {
        let off = w * WORD_BITS;
        let mut p = v.plus[base + w];
        while p != 0 {
            acc += x[off + p.trailing_zeros() as usize];
            p &= p - 1;
        }
        let mut m = v.minus[base + w];
        while m != 0 {
            acc -= x[off + m.trailing_zeros() as usize];
            m &= m - 1;
        }
    }
    acc
}

/// `y = W·x`, serial over rows.
pub(crate) fn matvec_into(v: &PackedView<'_>, x: &[f32], y: &mut [f32]) {
    for (r, out) in y.iter_mut().enumerate() {
        *out = row_dot(v, r, x);
    }
}

/// Batched activations for `ns` contiguous samples, register-tiled in
/// groups of [`SAMPLE_TILE`] so each weight word is decoded once per tile.
pub(crate) fn matmul_samples(v: &PackedView<'_>, x: &[f32], out: &mut [f32]) {
    let (rows, cols, wpr) = (v.rows, v.cols, v.words_per_row);
    let ns = out.len() / rows;
    let mut s = 0;
    while s < ns {
        let t = (ns - s).min(SAMPLE_TILE);
        let x0 = s * cols;
        for r in 0..rows {
            let base = r * wpr;
            let mut acc = [0.0f32; SAMPLE_TILE];
            for w in 0..wpr {
                let off = w * WORD_BITS;
                let mut p = v.plus[base + w];
                while p != 0 {
                    let j = off + p.trailing_zeros() as usize;
                    for (ti, a) in acc.iter_mut().enumerate().take(t) {
                        *a += x[x0 + ti * cols + j];
                    }
                    p &= p - 1;
                }
                let mut m = v.minus[base + w];
                while m != 0 {
                    let j = off + m.trailing_zeros() as usize;
                    for (ti, a) in acc.iter_mut().enumerate().take(t) {
                        *a -= x[x0 + ti * cols + j];
                    }
                    m &= m - 1;
                }
            }
            for (ti, a) in acc.iter().enumerate().take(t) {
                out[(s + ti) * rows + r] = *a;
            }
        }
        s += t;
    }
}

/// Bit-sliced int8 matvec: pure `u64` AND + `count_ones`, exact i32
/// accumulation — the reference the SIMD popcount backends are bitwise
/// tested against.
pub(crate) fn bitslice_matvec(v: &PackedView<'_>, planes: &[u64], y: &mut [i32]) {
    let wpr = v.words_per_row;
    let (active, n) = super::active_planes(planes);
    for (r, out) in y.iter_mut().enumerate() {
        let base = r * wpr;
        let mut acc = 0i64;
        for &b in &active[..n] {
            let plane = &planes[b * wpr..(b + 1) * wpr];
            let mut s = 0i64;
            for w in 0..wpr {
                s += (plane[w] & v.plus[base + w]).count_ones() as i64;
                s -= (plane[w] & v.minus[base + w]).count_ones() as i64;
            }
            acc += super::plane_weight(b) as i64 * s;
        }
        *out = acc as i32;
    }
}

/// Element-wise `dst[i] += src[i]`.
pub(crate) fn slice_add(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst[..src.len()].iter_mut().zip(src) {
        *d += s;
    }
}

/// Element-wise `dst[i] -= src[i]`.
pub(crate) fn slice_sub(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst[..src.len()].iter_mut().zip(src) {
        *d -= s;
    }
}

/// Element-wise `dst[i] += a · src[i]` (multiply then add, never fused).
pub(crate) fn slice_axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    for (d, &s) in dst[..src.len()].iter_mut().zip(src) {
        *d += a * s;
    }
}

/// Output rows `r0..` of `W · M` into `chunk` (pre-zeroed): each set bit
/// contributes a contiguous `p`-long row of `M`, so the inner loop is a
/// unit-stride slice add/subtract.
pub(crate) fn rhs_rows(v: &PackedView<'_>, md: &[f32], p: usize, r0: usize, chunk: &mut [f32]) {
    let wpr = v.words_per_row;
    for (ri, orow) in chunk.chunks_mut(p).enumerate() {
        let base = (r0 + ri) * wpr;
        for w in 0..wpr {
            let off = w * WORD_BITS;
            let mut pl = v.plus[base + w];
            while pl != 0 {
                let j = off + pl.trailing_zeros() as usize;
                let src = &md[j * p..(j + 1) * p];
                for (o, &val) in orow.iter_mut().zip(src) {
                    *o += val;
                }
                pl &= pl - 1;
            }
            let mut mi = v.minus[base + w];
            while mi != 0 {
                let j = off + mi.trailing_zeros() as usize;
                let src = &md[j * p..(j + 1) * p];
                for (o, &val) in orow.iter_mut().zip(src) {
                    *o -= val;
                }
                mi &= mi - 1;
            }
        }
    }
}
