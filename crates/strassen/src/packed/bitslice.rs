//! Bit-sliced int8 activations: quantized activation vectors stored as
//! per-bit u64 planes, so a ternary matvec collapses to pure
//! AND + popcount.
//!
//! # Representation
//!
//! An activation `x` is quantized symmetrically to a signed int8
//! `q = clamp(round(x / scale), −127, 127)` and stored **transposed at the
//! bit level**: plane `b` holds bit `b` of every element's two's-complement
//! byte, packed 64 elements per `u64` word in the same
//! least-significant-bit-first layout as [`super::PackedTernary`]'s weight
//! bitplanes (padding bits beyond `len` stay clear — in two's complement an
//! all-zero bit column is exactly the value 0, so padding is harmless):
//!
//! ```text
//! element      e63 … e2 e1 e0            q = −128·bit7 + Σ_{b<7} 2^b·bitb
//! plane 0   [  b0 … b0 b0 b0 ]  word 0   (bit 0 of every element)
//! plane 1   [  b1 … b1 b1 b1 ]  word 0
//!   ⋮
//! plane 7   [  b7 … b7 b7 b7 ]  word 0   (sign bits)
//! ```
//!
//! Against a ternary weight row `(plus, minus)` the integer dot product is
//!
//! ```text
//! Wᵣ · q = Σ_b w(b) · [ pop(x_b & plus) − pop(x_b & minus) ]
//! w(b) = 2^b for b < 7,  w(7) = −128
//! ```
//!
//! — one AND and one popcount per plane word per bitplane, no multiplies,
//! exact i32 accumulation. The kernels behind
//! [`super::PackedTernary::bitsliced_matvec_into_with`] skip planes with no
//! set bits (post-ReLU activations have an all-zero sign plane; small
//! activations leave the high-magnitude planes empty), which is exact:
//! an all-zero plane contributes nothing.
//!
//! Unlike the f32-lane packed kernels, the bit-sliced path is **bitwise
//! identical across every [`super::kernel::Kernel`] backend** — the
//! arithmetic is integral, so no reassociation can change a result.

use super::kernel::KernelDispatch;
use super::PackedTernary;

/// Bit planes per element: int8 two's complement.
pub const PLANES: usize = 8;

/// Bits per storage word of one plane.
const WORD_BITS: usize = 64;

/// Quantizes one value to the signed int8 grid: `clamp(round(x·inv_scale),
/// −127, 127)` (symmetric — `−128` is never produced, keeping the grid
/// sign-symmetric). `inv_scale` is `1/scale`.
#[inline(always)]
pub fn quantize_i8(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// A batch of bit-sliced int8 activation vectors.
///
/// `samples` vectors of `len` elements each, stored sample-major: sample
/// `s`, plane `b` occupies words `((s·8 + b)·words)..((s·8 + b + 1)·words)`
/// where `words = len.div_ceil(64)`. A single vector is simply
/// `samples == 1`.
///
/// # Examples
///
/// ```
/// use thnt_strassen::packed::bitslice::BitSliced;
///
/// let x = BitSliced::quantize(&[1.0, -2.5, 0.0, 127.0], 4, 1.0);
/// assert_eq!(x.get(0, 0), 1);
/// assert_eq!(x.get(0, 1), -3); // round half away from zero
/// assert_eq!(x.get(0, 3), 127);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSliced {
    samples: usize,
    len: usize,
    words: usize,
    planes: Vec<u64>,
}

impl BitSliced {
    /// An all-zero batch of `samples` vectors of `len` elements.
    pub fn zeroed(samples: usize, len: usize) -> Self {
        let words = len.div_ceil(WORD_BITS);
        Self { samples, len, words, planes: vec![0; samples * PLANES * words] }
    }

    /// Quantizes `x` (row-major, `samples × len` with
    /// `samples = x.len() / len`) into a new batch.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `x.len()` is not a multiple of `len`, or
    /// `scale` is not strictly positive.
    pub fn quantize(x: &[f32], len: usize, scale: f32) -> Self {
        assert!(len > 0, "element count must be positive");
        assert_eq!(x.len() % len, 0, "input length {} not a multiple of len {len}", x.len());
        let mut out = Self::zeroed(x.len() / len, len);
        out.quantize_into(x, scale);
        out
    }

    /// Re-quantizes `x` into this batch in place (same `samples × len`
    /// geometry), reusing the plane buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != samples · len` or `scale` is not strictly
    /// positive.
    pub fn quantize_into(&mut self, x: &[f32], scale: f32) {
        assert_eq!(x.len(), self.samples * self.len, "input/geometry mismatch");
        assert!(scale > 0.0, "scale must be strictly positive, got {scale}");
        let inv = scale.recip();
        self.planes.fill(0);
        for (s, sample) in x.chunks_exact(self.len).enumerate() {
            let base = s * PLANES * self.words;
            for (i, &v) in sample.iter().enumerate() {
                let u = quantize_i8(v, inv) as u8;
                if u == 0 {
                    continue;
                }
                let (w, bit) = (i / WORD_BITS, i % WORD_BITS);
                for b in 0..PLANES {
                    self.planes[base + b * self.words + w] |= ((u as u64 >> b) & 1) << bit;
                }
            }
        }
    }

    /// Quantizes the **columns** of a row-major `len × samples` matrix `m`
    /// (each column becomes one sample) — the transpose an `im2col` patch
    /// matrix needs so every output position's patch lands as one
    /// bit-sliced vector.
    ///
    /// # Panics
    ///
    /// Panics if `m.len() != len · samples` or `scale` is not strictly
    /// positive.
    pub fn quantize_columns(m: &[f32], len: usize, samples: usize, scale: f32) -> Self {
        let mut out = Self::zeroed(samples, len);
        out.quantize_columns_into(m, scale);
        out
    }

    /// In-place variant of [`Self::quantize_columns`], reusing the plane
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `m.len() != len · samples` or `scale` is not strictly
    /// positive.
    pub fn quantize_columns_into(&mut self, m: &[f32], scale: f32) {
        assert_eq!(m.len(), self.len * self.samples, "matrix/geometry mismatch");
        assert!(scale > 0.0, "scale must be strictly positive, got {scale}");
        let inv = scale.recip();
        self.planes.fill(0);
        for (c, row) in m.chunks_exact(self.samples).enumerate() {
            let (w, bit) = (c / WORD_BITS, c % WORD_BITS);
            for (s, &v) in row.iter().enumerate() {
                let u = quantize_i8(v, inv) as u8;
                if u == 0 {
                    continue;
                }
                let base = s * PLANES * self.words;
                for b in 0..PLANES {
                    self.planes[base + b * self.words + w] |= ((u as u64 >> b) & 1) << bit;
                }
            }
        }
    }

    /// Number of vectors in the batch.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Elements per vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vectors are zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Words per plane: `len.div_ceil(64)`.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Bytes of plane storage for the whole batch.
    pub fn plane_bytes(&self) -> usize {
        self.planes.len() * std::mem::size_of::<u64>()
    }

    /// Sample `s`'s 8 planes, concatenated (`8 · words` words, plane-major)
    /// — the operand [`KernelDispatch`]'s popcount kernels consume.
    ///
    /// # Panics
    ///
    /// Panics if `s >= samples`.
    pub fn sample_planes(&self, s: usize) -> &[u64] {
        let stride = PLANES * self.words;
        &self.planes[s * stride..(s + 1) * stride]
    }

    /// Reconstructs element `i` of sample `s` from its bit column.
    ///
    /// # Panics
    ///
    /// Panics if `s >= samples` or `i >= len`.
    pub fn get(&self, s: usize, i: usize) -> i8 {
        assert!(i < self.len, "element {i} out of range {}", self.len);
        let planes = self.sample_planes(s);
        let (w, bit) = (i / WORD_BITS, i % WORD_BITS);
        let mut u = 0u8;
        for b in 0..PLANES {
            u |= (((planes[b * self.words + w] >> bit) & 1) as u8) << b;
        }
        u as i8
    }
}

impl PackedTernary<'_> {
    /// Bit-sliced integer matvec `y = W·q` through an explicit kernel
    /// handle: pure AND+popcount over the weight bitplanes and `x`'s
    /// activation planes, exact i32 accumulation, bitwise identical across
    /// every backend.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is a single sample of `cols` elements and
    /// `y.len() == rows`.
    pub fn bitsliced_matvec_into_with(&self, d: &KernelDispatch, x: &BitSliced, y: &mut [i32]) {
        assert_eq!(x.samples(), 1, "matvec takes a single sample");
        self.bitsliced_matmul_into_with(d, x, y);
    }

    /// Bit-sliced integer matvec with the process-default kernel.
    ///
    /// # Panics
    ///
    /// As [`Self::bitsliced_matvec_into_with`]; additionally panics if
    /// `THNT_KERNEL` names an unknown or unsupported backend.
    pub fn bitsliced_matvec_into(&self, x: &BitSliced, y: &mut [i32]) {
        self.bitsliced_matvec_into_with(KernelDispatch::get(), x, y);
    }

    /// Batched bit-sliced integer product: `out[s·rows + r] = Wᵣ · qₛ` for
    /// every sample of `x`, through an explicit kernel handle.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == cols` and
    /// `out.len() == x.samples() · rows`.
    pub fn bitsliced_matmul_into_with(&self, d: &KernelDispatch, x: &BitSliced, out: &mut [i32]) {
        assert_eq!(x.len(), self.cols(), "activation length must equal cols");
        assert_eq!(out.len(), x.samples() * self.rows(), "output length mismatch");
        let v = self.view();
        for (s, y) in out.chunks_exact_mut(self.rows()).enumerate() {
            d.bitslice_matvec(&v, x.sample_planes(s), y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernel::Kernel;
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use thnt_tensor::Tensor;

    fn random_ternary(
        rows: usize,
        cols: usize,
        rng: &mut SmallRng,
    ) -> (PackedTernary<'static>, Vec<i8>) {
        let signs: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-1..=1)).collect();
        let t = Tensor::from_vec(signs.iter().map(|&s| s as f32).collect(), &[rows, cols]);
        (PackedTernary::from_tensor(&t), signs)
    }

    fn reference_matvec(signs: &[i8], q: &[i8], rows: usize, cols: usize) -> Vec<i32> {
        (0..rows)
            .map(|r| (0..cols).map(|c| signs[r * cols + c] as i32 * q[c] as i32).sum())
            .collect()
    }

    #[test]
    fn quantize_then_get_roundtrips_every_int8_level() {
        let vals: Vec<f32> = (-127..=127).map(|q| q as f32 * 0.031).collect();
        let b = BitSliced::quantize(&vals, vals.len(), 0.031);
        for (i, q) in (-127i32..=127).enumerate() {
            assert_eq!(b.get(0, i) as i32, q, "level {q}");
        }
    }

    #[test]
    fn quantize_clamps_and_rounds() {
        let b = BitSliced::quantize(&[1000.0, -1000.0, 0.49, 0.5, -0.5, f32::NAN], 6, 1.0);
        assert_eq!(b.get(0, 0), 127);
        assert_eq!(b.get(0, 1), -127);
        assert_eq!(b.get(0, 2), 0);
        assert_eq!(b.get(0, 3), 1, "round half away from zero");
        assert_eq!(b.get(0, 4), -1);
        assert_eq!(b.get(0, 5), 0, "NaN saturates to 0");
    }

    #[test]
    fn padding_bits_stay_clear() {
        let b = BitSliced::quantize(&[-1.0; 65], 65, 1.0);
        assert_eq!(b.words(), 2);
        let planes = b.sample_planes(0);
        for bp in 0..PLANES {
            assert_eq!(planes[bp * 2 + 1] >> 1, 0, "plane {bp} padding dirty");
        }
    }

    #[test]
    fn matvec_is_exact_against_integer_reference_at_word_boundaries() {
        let mut rng = SmallRng::seed_from_u64(42);
        for cols in [1usize, 63, 64, 65, 127, 128, 129, 300] {
            let rows = 17;
            let (w, signs) = random_ternary(rows, cols, &mut rng);
            let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let scale = 4.0 / 127.0;
            let b = BitSliced::quantize(&x, cols, scale);
            let q: Vec<i8> = (0..cols).map(|i| b.get(0, i)).collect();
            let expect = reference_matvec(&signs, &q, rows, cols);
            let mut y = vec![0i32; rows];
            w.bitsliced_matvec_into(&b, &mut y);
            assert_eq!(y, expect, "cols={cols}");
        }
    }

    #[test]
    fn every_backend_is_bitwise_identical() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (rows, cols) = (23, 130);
        let (w, signs) = random_ternary(rows, cols, &mut rng);
        let x: Vec<f32> = (0..3 * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = BitSliced::quantize(&x, cols, 2.0 / 127.0);
        let mut expect = Vec::new();
        for s in 0..3 {
            let q: Vec<i8> = (0..cols).map(|i| b.get(s, i)).collect();
            expect.extend(reference_matvec(&signs, &q, rows, cols));
        }
        for k in Kernel::available() {
            let d = KernelDispatch::new(k).unwrap();
            let mut out = vec![0i32; 3 * rows];
            w.bitsliced_matmul_into_with(&d, &b, &mut out);
            assert_eq!(out, expect, "kernel {k}");
        }
    }

    #[test]
    fn column_quantization_transposes() {
        // 3×2 matrix, column j must land as sample j.
        let m = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows: [1 2], [3 4], [5 6]
        let b = BitSliced::quantize_columns(&m, 3, 2, 1.0);
        assert_eq!((b.get(0, 0), b.get(0, 1), b.get(0, 2)), (1, 3, 5));
        assert_eq!((b.get(1, 0), b.get(1, 1), b.get(1, 2)), (2, 4, 6));
    }

    #[test]
    fn in_place_requantization_clears_previous_bits() {
        let mut b = BitSliced::quantize(&[127.0, -127.0], 2, 1.0);
        b.quantize_into(&[0.0, 1.0], 1.0);
        assert_eq!((b.get(0, 0), b.get(0, 1)), (0, 1));
        let mut y = vec![0i32; 1];
        let w = PackedTernary::from_tensor(&Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        w.bitsliced_matvec_into(&b, &mut y);
        assert_eq!(y[0], 1);
    }

    #[test]
    #[should_panic(expected = "scale must be strictly positive")]
    fn rejects_non_positive_scale() {
        BitSliced::quantize(&[1.0], 1, 0.0);
    }
}
