//! Packed ternary storage as two bitplanes and the word-level add-only
//! inference kernels.
//!
//! The paper's deployment story is that ternary matrices (i) pack at 2 bits
//! per entry — the source of the 52.2% model-size reduction — and (ii)
//! execute with **additions and subtractions only**, no multiplications.
//! This module makes both concrete and fast:
//!
//! * [`PackedTernary`] stores a ternary matrix as two *bitplanes* — a `+1`
//!   mask and a `−1` mask — in row-padded `u64` words (2 bits/entry plus at
//!   most 126 bits of padding per row),
//! * [`PackedTernary::matvec`] computes `W·x` with `+`/`−` only, iterating
//!   the set bits of each word (TWN ternarization leaves ~1/3 of the entries
//!   zero, so skipping zeros word-by-word beats decoding every entry),
//! * [`PackedTernary::matmul`] is the batched form for activations
//!   `[n, cols]`, register-tiled over samples so each weight word is decoded
//!   once per tile instead of once per sample,
//! * [`PackedTernary::matmul_rhs`] is the column-matrix form used by the
//!   packed convolution engine (`W · im2col(x)`), whose inner loop is a
//!   contiguous slice add, and
//! * [`PackedTernary::add_count`] reports the *exact* number of additions a
//!   microcontroller would execute — now a per-word `count_ones()` popcount
//!   instead of a per-entry scan — the empirical cross-check for the
//!   analytic cost model in [`crate::cost`].
//!
//! The compute loops themselves live in [`kernel`], which dispatches once
//! per process between a scalar reference backend and SIMD backends (AVX2
//! on x86_64, NEON on aarch64) selected by runtime feature detection or
//! the `THNT_KERNEL` environment override. Every operation below routes
//! through that dispatcher, so all consumers — the packed layer engine, the
//! streaming detector, the multi-session server — get the widest kernel the
//! host supports without code changes.

use std::borrow::Cow;

use thnt_tensor::{parallel_zip_chunks, Tensor};

pub mod bitslice;
pub mod kernel;

use kernel::{KernelDispatch, PackedView};

/// Bits per storage word of one bitplane.
const WORD_BITS: usize = 64;

/// A ternary matrix packed as two bitplanes at 2 bits per entry.
///
/// The bitplanes are [`Cow`] slices so a matrix can either *own* its words
/// (the compile path — `PackedTernary<'static>`) or *borrow* them straight
/// out of a mapped `.thnt2` artifact buffer (the zero-copy load path,
/// [`Self::from_cow_parts`] with `Cow::Borrowed`). Every kernel consumes a
/// borrowed [`PackedView`] either way, so compute is identical for both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTernary<'a> {
    rows: usize,
    cols: usize,
    /// `u64` words per row of each bitplane: `cols.div_ceil(64)`. Rows are
    /// padded to a whole word so every row starts word-aligned.
    words_per_row: usize,
    /// The `+1` plane: bit `c % 64` of word `r·words_per_row + c/64` is set
    /// iff entry `(r, c)` is `+1`. Padding bits are always clear.
    plus: Cow<'a, [u64]>,
    /// The `−1` plane, same layout. A bit is never set in both planes.
    minus: Cow<'a, [u64]>,
}

impl<'a> PackedTernary<'a> {
    /// Packs a ternary tensor (`values ∈ {−1, 0, 1}`, shape `[rows, cols]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or contains non-ternary values.
    pub fn from_tensor(t: &Tensor) -> PackedTernary<'static> {
        assert_eq!(t.shape().rank(), 2, "PackedTernary expects a 2-D tensor");
        let (rows, cols) = (t.dims()[0], t.dims()[1]);
        let words_per_row = cols.div_ceil(WORD_BITS);
        let mut plus = vec![0u64; rows * words_per_row];
        let mut minus = vec![0u64; rows * words_per_row];
        for (i, &v) in t.data().iter().enumerate() {
            let (r, c) = (i / cols.max(1), i % cols.max(1));
            let w = r * words_per_row + c / WORD_BITS;
            let bit = 1u64 << (c % WORD_BITS);
            if v == 1.0 {
                plus[w] |= bit;
            } else if v == -1.0 {
                minus[w] |= bit;
            } else if v != 0.0 {
                panic!("non-ternary value {v} at index {i}");
            }
        }
        PackedTernary {
            rows,
            cols,
            words_per_row,
            plus: Cow::Owned(plus),
            minus: Cow::Owned(minus),
        }
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `u64` words per row of each bitplane.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The `+1` bitplane words, row-major — the **stable serialized layout**
    /// consumed by the `.thnt2` artifact format. Bit `c % 64` of word
    /// `r·words_per_row + c/64` is set iff entry `(r, c)` is `+1`; row
    /// padding bits are always clear.
    pub fn plus_words(&self) -> &[u64] {
        &self.plus
    }

    /// The `−1` bitplane words, same layout as [`Self::plus_words`].
    pub fn minus_words(&self) -> &[u64] {
        &self.minus
    }

    /// Reassembles a packed matrix from its serialized layout (the inverse
    /// of [`Self::plus_words`] / [`Self::minus_words`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong word
    /// counts for the shape, a set bit in the row-padding region, or an
    /// entry claimed by both planes. A matrix that loads successfully is
    /// indistinguishable from one built by [`Self::from_tensor`].
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        plus: Vec<u64>,
        minus: Vec<u64>,
    ) -> Result<PackedTernary<'static>, String> {
        PackedTernary::from_cow_parts(rows, cols, Cow::Owned(plus), Cow::Owned(minus))
    }

    /// [`Self::from_raw_parts`] over [`Cow`] planes: the zero-copy loading
    /// entry point. `Cow::Borrowed` planes alias the caller's buffer (e.g. a
    /// mapped `.thnt2` artifact) and are validated in place — the matrix is
    /// usable without copying a single bitplane word. Validation is the same
    /// as for owned planes; a matrix that loads successfully is
    /// indistinguishable from one built by [`Self::from_tensor`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::from_raw_parts`].
    pub fn from_cow_parts(
        rows: usize,
        cols: usize,
        plus: Cow<'a, [u64]>,
        minus: Cow<'a, [u64]>,
    ) -> Result<PackedTernary<'a>, String> {
        let m = Self::from_cow_parts_trusted(rows, cols, plus, minus)?;
        // Padding bits beyond `cols` in each row's last word must be clear.
        let tail_bits = cols % WORD_BITS;
        if tail_bits != 0 {
            let pad_mask = !0u64 << tail_bits;
            for r in 0..rows {
                let last = r * m.words_per_row + m.words_per_row - 1;
                if (m.plus[last] | m.minus[last]) & pad_mask != 0 {
                    return Err(format!("row {r} has set bits in the padding region"));
                }
            }
        }
        for (i, (&p, &mi)) in m.plus.iter().zip(m.minus.iter()).enumerate() {
            if p & mi != 0 {
                return Err(format!("word {i} claims entries as both +1 and -1"));
            }
        }
        Ok(m)
    }

    /// [`Self::from_cow_parts`] minus the O(words) content scans: only the
    /// shape/word-count invariant is checked. This is the fast path for
    /// loaders that treat their input as trusted (e.g. a memory-mapped
    /// artifact produced by this crate's own serializer), where re-scanning
    /// every plane on every process start would defeat the point of a
    /// zero-copy load. Dirty padding bits or entries claimed by both planes
    /// are **not** rejected here; they produce wrong arithmetic results but
    /// never memory unsafety, because every kernel indexes planes only
    /// through the validated shape.
    ///
    /// # Errors
    ///
    /// Returns a description of a plane whose word count does not match the
    /// shape.
    pub fn from_cow_parts_trusted(
        rows: usize,
        cols: usize,
        plus: Cow<'a, [u64]>,
        minus: Cow<'a, [u64]>,
    ) -> Result<PackedTernary<'a>, String> {
        let words_per_row = cols.div_ceil(WORD_BITS);
        let want = rows * words_per_row;
        if plus.len() != want || minus.len() != want {
            return Err(format!(
                "bitplane word count mismatch: {rows}x{cols} needs {want} words per plane, \
                 got {} plus / {} minus",
                plus.len(),
                minus.len()
            ));
        }
        Ok(PackedTernary { rows, cols, words_per_row, plus, minus })
    }

    /// `true` iff both bitplanes borrow their words from an external buffer
    /// (a zero-copy load); `false` for owned planes. The cold-start bench
    /// gate uses this to assert that an aligned `load_thnt2_ref` really did
    /// not copy any bitplane.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.plus, Cow::Borrowed(_)) && matches!(self.minus, Cow::Borrowed(_))
    }

    /// Converts into a matrix that owns its bitplanes (`'static`), copying
    /// them if they were borrowed. The inverse direction of the zero-copy
    /// load: detach from the artifact buffer.
    pub fn into_owned(self) -> PackedTernary<'static> {
        PackedTernary {
            rows: self.rows,
            cols: self.cols,
            words_per_row: self.words_per_row,
            plus: Cow::Owned(self.plus.into_owned()),
            minus: Cow::Owned(self.minus.into_owned()),
        }
    }

    /// Clones into an owning (`'static`) matrix without consuming `self`.
    pub fn to_static(&self) -> PackedTernary<'static> {
        PackedTernary {
            rows: self.rows,
            cols: self.cols,
            words_per_row: self.words_per_row,
            plus: Cow::Owned(self.plus.to_vec()),
            minus: Cow::Owned(self.minus.to_vec()),
        }
    }

    /// Packed storage in bytes: both bitplanes, including row padding.
    pub fn packed_bytes(&self) -> usize {
        (self.plus.len() + self.minus.len()) * std::mem::size_of::<u64>()
    }

    /// Decodes entry `(r, c)` back to `−1.0 | 0.0 | 1.0`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let w = r * self.words_per_row + c / WORD_BITS;
        let bit = 1u64 << (c % WORD_BITS);
        if self.plus[w] & bit != 0 {
            1.0
        } else if self.minus[w] & bit != 0 {
            -1.0
        } else {
            0.0
        }
    }

    /// Unpacks to a dense tensor (for verification).
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        let od = out.data_mut();
        for r in 0..self.rows {
            let base = r * self.words_per_row;
            for w in 0..self.words_per_row {
                let off = w * WORD_BITS;
                let mut p = self.plus[base + w];
                while p != 0 {
                    od[r * self.cols + off + p.trailing_zeros() as usize] = 1.0;
                    p &= p - 1;
                }
                let mut m = self.minus[base + w];
                while m != 0 {
                    od[r * self.cols + off + m.trailing_zeros() as usize] = -1.0;
                    m &= m - 1;
                }
            }
        }
        out
    }

    /// Borrowed bitplane view — the operand form the [`kernel`] backends
    /// consume.
    fn view(&self) -> PackedView<'_> {
        PackedView {
            rows: self.rows,
            cols: self.cols,
            words_per_row: self.words_per_row,
            plus: &self.plus[..],
            minus: &self.minus[..],
        }
    }

    /// Computes `y = W·x` using only additions/subtractions, word-at-a-time
    /// through the process-wide [`kernel::KernelDispatch`].
    ///
    /// # Examples
    ///
    /// ```
    /// use thnt_strassen::PackedTernary;
    /// use thnt_tensor::Tensor;
    ///
    /// // [[+1, 0, -1], [0, +1, +1]] packed at 2 bits per entry.
    /// let w = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 1.0, 1.0], &[2, 3]);
    /// let packed = PackedTernary::from_tensor(&w);
    /// let y = packed.matvec(&[3.0, 5.0, 7.0]);
    /// assert_eq!(y, vec![3.0 - 7.0, 5.0 + 7.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`Self::matvec`] into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        self.matvec_into_with(KernelDispatch::get(), x, y);
    }

    /// [`Self::matvec_into`] on an explicit kernel backend — how the
    /// equivalence tests and the kernel benchmarks pit backends against
    /// each other inside one process.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into_with(&self, dispatch: &KernelDispatch, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output length mismatch");
        dispatch.matvec_into(&self.view(), x, y);
    }

    /// Scalar reference kernel: decodes every entry one at a time, exactly
    /// like a naïve 2-bit unpack loop would. Kept for verification and as the
    /// before/after baseline in the kernel benchmarks — the word-level
    /// [`Self::matvec`] must beat it.
    pub fn matvec_per_entry(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0f32;
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v == 1.0 {
                    acc += x[c];
                } else if v == -1.0 {
                    acc -= x[c];
                }
            }
            y[r] = acc;
        }
        y
    }

    /// Batched add-only matmul for activations: `Y = X · Wᵀ` with
    /// `X: [n, cols]` row-major, returning `Y: [n, rows]`.
    ///
    /// Samples are distributed across threads with
    /// [`thnt_tensor::parallel_zip_chunks`]; within a thread, the dispatched
    /// [`kernel`] backend computes its contiguous run of samples (the scalar
    /// backend register-tiles 4 samples per weight-word decode; the SIMD
    /// backends run the lane-parallel row kernel per sample). Per-sample
    /// results are independent of the batch they arrive in.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D with `cols` columns.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        self.matmul_with(KernelDispatch::get(), x)
    }

    /// [`Self::matmul`] on an explicit kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D with `cols` columns.
    pub fn matmul_with(&self, dispatch: &KernelDispatch, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "packed matmul expects a 2-D activation matrix");
        assert_eq!(x.dims()[1], self.cols, "packed matmul dimension mismatch");
        let n = x.dims()[0];
        let mut y = Tensor::zeros(&[n, self.rows]);
        if n == 0 || self.rows == 0 {
            return y;
        }
        let xd = x.data();
        let (rows, cols) = (self.rows, self.cols);
        let view = self.view();
        parallel_zip_chunks(y.data_mut(), rows, |s0, chunk| {
            let ns = chunk.len() / rows;
            dispatch.matmul_samples(&view, &xd[s0 * cols..(s0 + ns) * cols], chunk);
        });
        y
    }

    /// Add-only product with a column matrix: `Y = W · M` with
    /// `M: [cols, p]` row-major, returning `Y: [rows, p]`.
    ///
    /// This is the kernel behind the packed convolution engine
    /// (`M = im2col(x)`): each set bit contributes a whole contiguous row of
    /// `M` to the output row, so the inner loop is a unit-stride slice
    /// add/subtract. Output rows are computed in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not 2-D with `cols` rows.
    pub fn matmul_rhs(&self, m: &Tensor) -> Tensor {
        let mut y = Tensor::zeros(&[self.rows, m.dims().get(1).copied().unwrap_or(0)]);
        self.matmul_rhs_into(m, y.data_mut());
        y
    }

    /// [`Self::matmul_rhs`] into a caller-provided buffer (no allocation) —
    /// the batch loop of the packed convolution engine writes each sample's
    /// output directly into its slice of the batched tensor.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not 2-D with `cols` rows or `out.len() != rows·p`.
    pub fn matmul_rhs_into(&self, m: &Tensor, out: &mut [f32]) {
        self.matmul_rhs_into_with(KernelDispatch::get(), m, out);
    }

    /// [`Self::matmul_rhs_into`] on an explicit kernel backend.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::matmul_rhs_into`].
    pub fn matmul_rhs_into_with(&self, dispatch: &KernelDispatch, m: &Tensor, out: &mut [f32]) {
        assert_eq!(m.shape().rank(), 2, "packed matmul_rhs expects a 2-D matrix");
        assert_eq!(m.dims()[0], self.cols, "packed matmul_rhs dimension mismatch");
        let p = m.dims()[1];
        assert_eq!(out.len(), self.rows * p, "packed matmul_rhs output length mismatch");
        out.fill(0.0);
        if self.rows == 0 || p == 0 {
            return;
        }
        let view = self.view();
        parallel_zip_chunks(out, p, |r0, chunk| dispatch.rhs_rows(&view, m.data(), p, r0, chunk));
    }

    /// [`Self::matmul_rhs_into`] without the internal row parallelism — for
    /// callers that are already parallel at a coarser grain (the batched
    /// convolution engine parallelises across samples, so spawning workers
    /// per sample here would only oversubscribe). Produces bitwise the same
    /// output as the parallel variant.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::matmul_rhs_into`].
    pub fn matmul_rhs_into_serial(&self, m: &Tensor, out: &mut [f32]) {
        assert_eq!(m.shape().rank(), 2, "packed matmul_rhs expects a 2-D matrix");
        assert_eq!(m.dims()[0], self.cols, "packed matmul_rhs dimension mismatch");
        let p = m.dims()[1];
        assert_eq!(out.len(), self.rows * p, "packed matmul_rhs output length mismatch");
        out.fill(0.0);
        if self.rows == 0 || p == 0 {
            return;
        }
        KernelDispatch::get().rhs_rows(&self.view(), m.data(), p, 0, out);
    }

    /// The exact number of additions/subtractions [`Self::matvec`] executes:
    /// one per non-zero entry, computed with per-word popcounts.
    pub fn add_count(&self) -> usize {
        let plus: u32 = self.plus.iter().map(|w| w.count_ones()).sum();
        let minus: u32 = self.minus.iter().map(|w| w.count_ones()).sum();
        (plus + minus) as usize
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        let n = self.rows * self.cols;
        if n == 0 {
            return 0.0;
        }
        1.0 - self.add_count() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary::ternary_values;
    use rand::SeedableRng;
    use thnt_tensor::matvec as dense_matvec;

    fn random_ternary(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let w = thnt_tensor::gaussian(&[rows, cols], 0.0, 1.0, &mut rng);
        ternary_values(&w).values
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let t = random_ternary(13, 17, 0);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.to_tensor().data(), t.data());
    }

    #[test]
    fn pack_unpack_roundtrip_across_word_boundaries() {
        for cols in [63, 64, 65, 127, 128, 129] {
            let t = random_ternary(3, cols, cols as u64);
            let packed = PackedTernary::from_tensor(&t);
            assert_eq!(packed.words_per_row(), cols.div_ceil(64));
            assert_eq!(packed.to_tensor().data(), t.data(), "cols={cols}");
        }
    }

    #[test]
    fn packs_at_2_bits_per_entry() {
        let t = random_ternary(64, 64, 1);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.packed_bytes(), 64 * 64 / 4);
        // 16x smaller than f32 storage.
        assert_eq!(packed.packed_bytes() * 16, 64 * 64 * 4);
    }

    #[test]
    fn row_padding_is_bounded_by_one_word_per_plane() {
        let t = random_ternary(5, 65, 2);
        let packed = PackedTernary::from_tensor(&t);
        // 65 cols need 2 words/row/plane: 5 rows × 2 words × 8 B × 2 planes.
        assert_eq!(packed.packed_bytes(), 5 * 2 * 8 * 2);
    }

    #[test]
    fn addonly_matvec_matches_dense() {
        let t = random_ternary(9, 21, 2);
        let packed = PackedTernary::from_tensor(&t);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[21], 0.0, 1.0, &mut rng);
        let want = dense_matvec(&t, &x);
        let got = packed.matvec(x.data());
        thnt_tensor::assert_close(&got, want.data(), 1e-5, 1e-5);
        let per_entry = packed.matvec_per_entry(x.data());
        thnt_tensor::assert_close(&per_entry, want.data(), 1e-5, 1e-5);
    }

    #[test]
    fn batched_matmul_matches_dense() {
        let t = random_ternary(33, 130, 4);
        let packed = PackedTernary::from_tensor(&t);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        // 7 samples: exercises a full tile plus a ragged tail.
        let x = thnt_tensor::gaussian(&[7, 130], 0.0, 1.0, &mut rng);
        let want = thnt_tensor::matmul_nt(&x, &t);
        let got = packed.matmul(&x);
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn matmul_rhs_matches_dense() {
        let t = random_ternary(11, 70, 6);
        let packed = PackedTernary::from_tensor(&t);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let m = thnt_tensor::gaussian(&[70, 13], 0.0, 1.0, &mut rng);
        let want = thnt_tensor::matmul(&t, &m);
        let got = packed.matmul_rhs(&m);
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn add_count_equals_nonzeros() {
        let t = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 0.0, 1.0], &[2, 3]);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.add_count(), 3);
        assert!((packed.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn measured_adds_cross_check_cost_model() {
        // The analytic model counts a strassenified dense layer's W_b stage
        // as r·in additions (dense upper bound); the packed execution count
        // must never exceed it.
        use crate::cost::LayerCost;
        let (r, input) = (24usize, 48usize);
        let wb = random_ternary(r, input, 4);
        let packed = PackedTernary::from_tensor(&wb);
        let analytic =
            LayerCost::Dense { in_dim: input as u64, out_dim: 1 }.strassen_ops(r as f64).adds;
        assert!(
            (packed.add_count() as u64) <= analytic,
            "measured {} > analytic bound {analytic}",
            packed.add_count()
        );
        // And it should be a substantial fraction (TWN keeps ~2/3 nonzero).
        assert!(packed.add_count() as u64 * 2 > analytic / 2);
    }

    #[test]
    #[should_panic(expected = "non-ternary")]
    fn rejects_non_ternary_values() {
        PackedTernary::from_tensor(&Tensor::from_vec(vec![0.5], &[1, 1]));
    }

    #[test]
    fn raw_parts_roundtrip_is_identity() {
        for cols in [1, 63, 64, 65, 130] {
            let t = random_ternary(5, cols, cols as u64 + 40);
            let packed = PackedTernary::from_tensor(&t);
            let rebuilt = PackedTernary::from_raw_parts(
                5,
                cols,
                packed.plus_words().to_vec(),
                packed.minus_words().to_vec(),
            )
            .unwrap();
            assert_eq!(rebuilt, packed, "cols={cols}");
        }
    }

    #[test]
    fn raw_parts_reject_corrupted_layouts() {
        let t = random_ternary(3, 70, 50);
        let packed = PackedTernary::from_tensor(&t);
        let (plus, minus) = (packed.plus_words().to_vec(), packed.minus_words().to_vec());

        // Wrong word count.
        let err = PackedTernary::from_raw_parts(3, 70, plus[1..].to_vec(), minus.clone());
        assert!(err.unwrap_err().contains("word count"), "short plane must be rejected");

        // Set bit in the padding region of row 0's last word (cols 70 -> 2
        // words/row, valid tail bits 0..6 of word 1).
        let mut bad = plus.clone();
        bad[1] |= 1u64 << 50;
        let err = PackedTernary::from_raw_parts(3, 70, bad, minus.clone());
        assert!(err.unwrap_err().contains("padding"), "padding bit must be rejected");

        // The same entry in both planes.
        let mut bad_plus = plus.clone();
        let mut bad_minus = minus;
        bad_plus[0] |= 1;
        bad_minus[0] |= 1;
        let err = PackedTernary::from_raw_parts(3, 70, bad_plus, bad_minus);
        assert!(err.unwrap_err().contains("both"), "overlapping planes must be rejected");

        // The untouched layout still loads.
        assert!(PackedTernary::from_raw_parts(3, 70, plus, packed.minus_words().to_vec()).is_ok());
    }

    #[test]
    fn empty_matrix_is_fine() {
        let packed = PackedTernary::from_tensor(&Tensor::zeros(&[0, 5]));
        assert_eq!(packed.add_count(), 0);
        assert_eq!(packed.matvec(&[1.0; 5]).len(), 0);
        assert_eq!(packed.matmul(&Tensor::zeros(&[3, 5])).dims(), &[3, 0]);
    }

    #[test]
    fn degenerate_shapes() {
        // 1×n row, n×1 column, and zero-column matrices all round-trip and
        // multiply correctly.
        let row = random_ternary(1, 90, 8);
        let p = PackedTernary::from_tensor(&row);
        let x: Vec<f32> = (0..90).map(|i| i as f32 * 0.25 - 10.0).collect();
        let want = dense_matvec(&row, &Tensor::from_vec(x.clone(), &[90]));
        thnt_tensor::assert_close(&p.matvec(&x), want.data(), 1e-5, 1e-5);

        let col = random_ternary(90, 1, 9);
        let pc = PackedTernary::from_tensor(&col);
        let want = dense_matvec(&col, &Tensor::from_vec(vec![2.5], &[1]));
        thnt_tensor::assert_close(&pc.matvec(&[2.5]), want.data(), 1e-5, 1e-5);

        let none = PackedTernary::from_tensor(&Tensor::zeros(&[4, 0]));
        assert_eq!(none.matvec(&[]), vec![0.0; 4]);
        assert_eq!(none.packed_bytes(), 0);
    }
}
