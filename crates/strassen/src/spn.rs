//! Sum-product-network form of matrix multiplication and the exact 2×2
//! Strassen construction.

use thnt_tensor::{matvec, Tensor};

use crate::packed::PackedTernary;

/// A Strassen SPN: three ternary matrices realising
/// `vec(C) = W_c [(W_b vec(B)) ⊙ (W_a vec(A))]`.
#[derive(Debug, Clone, PartialEq)]
pub struct StrassenSpn {
    /// `r × numel(A)` ternary matrix applied to the vectorised weights.
    pub wa: Tensor,
    /// `r × numel(B)` ternary matrix applied to the vectorised activations.
    pub wb: Tensor,
    /// `numel(C) × r` ternary combination matrix.
    pub wc: Tensor,
}

impl StrassenSpn {
    /// Hidden width `r` (the multiplication budget).
    pub fn hidden_width(&self) -> usize {
        self.wa.dims()[0]
    }

    /// Evaluates the SPN on vectorised operands.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths do not match the matrices.
    pub fn apply(&self, vec_a: &Tensor, vec_b: &Tensor) -> Tensor {
        let ha = matvec(&self.wa, vec_a);
        let hb = matvec(&self.wb, vec_b);
        let prod = &ha * &hb;
        matvec(&self.wc, &prod)
    }
}

/// A [`StrassenSpn`] with all three ternary matrices packed as bitplanes —
/// the deployable form: 2 bits per weight, additions only, `r` true
/// multiplications per evaluation (the Hadamard product).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSpn {
    /// Packed `r × numel(A)` weight-side matrix.
    pub wa: PackedTernary<'static>,
    /// Packed `r × numel(B)` activation-side matrix.
    pub wb: PackedTernary<'static>,
    /// Packed `numel(C) × r` combination matrix.
    pub wc: PackedTernary<'static>,
}

impl PackedSpn {
    /// Packs an SPN whose matrices are already ternary-valued.
    ///
    /// # Panics
    ///
    /// Panics if any matrix contains non-ternary values.
    pub fn from_spn(spn: &StrassenSpn) -> Self {
        Self {
            wa: PackedTernary::from_tensor(&spn.wa),
            wb: PackedTernary::from_tensor(&spn.wb),
            wc: PackedTernary::from_tensor(&spn.wc),
        }
    }

    /// Hidden width `r` (the multiplication budget).
    pub fn hidden_width(&self) -> usize {
        self.wa.rows()
    }

    /// Evaluates the SPN on vectorised operands with word-level add-only
    /// kernels; the only multiplications are the `r` Hadamard products.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths do not match the matrices.
    pub fn apply(&self, vec_a: &Tensor, vec_b: &Tensor) -> Tensor {
        let ha = self.wa.matvec(vec_a.data());
        let hb = self.wb.matvec(vec_b.data());
        let prod: Vec<f32> = ha.iter().zip(&hb).map(|(a, b)| a * b).collect();
        Tensor::from_vec(self.wc.matvec(&prod), &[self.wc.rows()])
    }

    /// Exact additions/subtractions per evaluation (all three stages).
    pub fn add_count(&self) -> usize {
        self.wa.add_count() + self.wb.add_count() + self.wc.add_count()
    }

    /// Total packed storage in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.wa.packed_bytes() + self.wb.packed_bytes() + self.wc.packed_bytes()
    }
}

/// The classic 7-multiplication Strassen construction for 2×2 matrices, as
/// ternary SPN matrices (`r = 7`).
///
/// Row-major vectorisation: `vec(A) = [a11, a12, a21, a22]`.
pub fn exact_strassen_2x2() -> StrassenSpn {
    #[rustfmt::skip]
    let wa = Tensor::from_vec(vec![
        // M1 = (A11 + A22)(B11 + B22)
        1.0, 0.0, 0.0, 1.0,
        // M2 = (A21 + A22) B11
        0.0, 0.0, 1.0, 1.0,
        // M3 = A11 (B12 - B22)
        1.0, 0.0, 0.0, 0.0,
        // M4 = A22 (B21 - B11)
        0.0, 0.0, 0.0, 1.0,
        // M5 = (A11 + A12) B22
        1.0, 1.0, 0.0, 0.0,
        // M6 = (A21 - A11)(B11 + B12)
        -1.0, 0.0, 1.0, 0.0,
        // M7 = (A12 - A22)(B21 + B22)
        0.0, 1.0, 0.0, -1.0,
    ], &[7, 4]);
    #[rustfmt::skip]
    let wb = Tensor::from_vec(vec![
        1.0, 0.0, 0.0, 1.0,   // B11 + B22
        1.0, 0.0, 0.0, 0.0,   // B11
        0.0, 1.0, 0.0, -1.0,  // B12 - B22
        -1.0, 0.0, 1.0, 0.0,  // B21 - B11
        0.0, 0.0, 0.0, 1.0,   // B22
        1.0, 1.0, 0.0, 0.0,   // B11 + B12
        0.0, 0.0, 1.0, 1.0,   // B21 + B22
    ], &[7, 4]);
    #[rustfmt::skip]
    let wc = Tensor::from_vec(vec![
        // C11 = M1 + M4 - M5 + M7
        1.0, 0.0, 0.0, 1.0, -1.0, 0.0, 1.0,
        // C12 = M3 + M5
        0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0,
        // C21 = M2 + M4
        0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0,
        // C22 = M1 - M2 + M3 + M6
        1.0, -1.0, 1.0, 0.0, 0.0, 1.0, 0.0,
    ], &[4, 7]);
    StrassenSpn { wa, wb, wc }
}

/// Multiplies two 2×2 matrices through an SPN, returning the 2×2 product.
///
/// # Panics
///
/// Panics if either operand is not 2×2.
pub fn spn_matmul_2x2(spn: &StrassenSpn, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.dims(), &[2, 2], "a must be 2x2");
    assert_eq!(b.dims(), &[2, 2], "b must be 2x2");
    let c = spn.apply(&a.reshape(&[4]), &b.reshape(&[4]));
    c.reshape(&[2, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use thnt_tensor::matmul;

    #[test]
    fn exact_strassen_has_seven_multiplications() {
        let spn = exact_strassen_2x2();
        assert_eq!(spn.hidden_width(), 7);
    }

    #[test]
    fn exact_strassen_matrices_are_ternary() {
        let spn = exact_strassen_2x2();
        for m in [&spn.wa, &spn.wb, &spn.wc] {
            assert!(m.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn strassen_equals_naive_on_identity() {
        let spn = exact_strassen_2x2();
        let i = Tensor::eye(2);
        let a = Tensor::from_vec(vec![3.0, -1.0, 2.0, 5.0], &[2, 2]);
        let c = spn_matmul_2x2(&spn, &a, &i);
        thnt_tensor::assert_close(c.data(), a.data(), 1e-5, 1e-5);
    }

    #[test]
    fn strassen_equals_naive_on_random_matrices() {
        use rand::{Rng, SeedableRng};
        let spn = exact_strassen_2x2();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = Tensor::from_vec((0..4).map(|_| rng.gen_range(-5.0..5.0)).collect(), &[2, 2]);
            let b = Tensor::from_vec((0..4).map(|_| rng.gen_range(-5.0..5.0)).collect(), &[2, 2]);
            let want = matmul(&a, &b);
            let got = spn_matmul_2x2(&spn, &a, &b);
            thnt_tensor::assert_close(got.data(), want.data(), 1e-3, 1e-3);
        }
    }

    #[test]
    fn packed_spn_matches_dense_apply() {
        use rand::{Rng, SeedableRng};
        let spn = exact_strassen_2x2();
        let packed = PackedSpn::from_spn(&spn);
        assert_eq!(packed.hidden_width(), 7);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = Tensor::from_vec((0..4).map(|_| rng.gen_range(-4.0..4.0)).collect(), &[4]);
            let b = Tensor::from_vec((0..4).map(|_| rng.gen_range(-4.0..4.0)).collect(), &[4]);
            let want = spn.apply(&a, &b);
            let got = packed.apply(&a, &b);
            thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
        }
        // The packed evaluation executes exactly one add per nonzero entry.
        let nonzeros: usize = [&spn.wa, &spn.wb, &spn.wc]
            .iter()
            .map(|m| m.data().iter().filter(|&&v| v != 0.0).count())
            .sum();
        assert_eq!(packed.add_count(), nonzeros);
    }

    #[test]
    fn strassen_counts_36_additions() {
        // |Wa| + |Wb| nonzeros beyond one per row, plus |Wc| combinations:
        // the textbook 2x2 Strassen uses 18 additions of inputs and 18 of
        // products (counting (x+y) as one add).
        let spn = exact_strassen_2x2();
        let adds_inputs: usize = [&spn.wa, &spn.wb]
            .iter()
            .map(|m| {
                (0..7)
                    .map(|r| {
                        let nz = m.data()[r * 4..(r + 1) * 4].iter().filter(|&&v| v != 0.0).count();
                        nz.saturating_sub(1)
                    })
                    .sum::<usize>()
            })
            .sum();
        let adds_outputs: usize = (0..4)
            .map(|r| {
                let nz = spn.wc.data()[r * 7..(r + 1) * 7].iter().filter(|&&v| v != 0.0).count();
                nz.saturating_sub(1)
            })
            .sum();
        assert_eq!(adds_inputs + adds_outputs, 18);
    }
}
