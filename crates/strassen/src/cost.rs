//! Analytic operation and model-size accounting.
//!
//! The paper's tables report multiplications, additions, MACs, model size and
//! memory footprint **computed from the architecture**, not measured on
//! hardware. This module reproduces that arithmetic:
//!
//! * a plain layer executes `macs = spatial · kernel · c_in · c_out` (etc.),
//! * a strassenified layer with hidden width `r` executes
//!   `muls = spatial · r` element-wise products plus additions from the two
//!   ternary matrices (`W_b`: `r` dense combinations of the receptive field,
//!   `W_c`: `c_out` combinations of `r` hidden channels),
//! * depthwise layers keep their grouped structure: `W_b` costs
//!   `spatial · r · kernel` additions and `W_c` costs `spatial · r` (one
//!   shared hidden group per channel).
//!
//! Fractional `r` (the paper's `r = 0.75·c_out`) is supported — counts are
//! accumulated in `f64` and rounded at the end, matching the paper's
//! reporting granularity of 0.01 M ops.

/// Multiplication / addition totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// True multiplications.
    pub muls: u64,
    /// Additions (and subtractions).
    pub adds: u64,
}

impl OpCount {
    /// Total operations (`muls + adds`).
    pub fn total(&self) -> u64 {
        self.muls + self.adds
    }

    /// Element-wise sum.
    pub fn plus(&self, other: OpCount) -> OpCount {
        OpCount { muls: self.muls + other.muls, adds: self.adds + other.adds }
    }
}

/// Cost descriptor of one linear-algebra layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerCost {
    /// Standard convolution.
    Conv {
        /// Output positions (`oh · ow`).
        spatial: u64,
        /// Kernel taps (`kh · kw`).
        kernel: u64,
        /// Input channels.
        cin: u64,
        /// Output channels.
        cout: u64,
    },
    /// Depthwise convolution.
    Depthwise {
        /// Output positions (`oh · ow`).
        spatial: u64,
        /// Kernel taps (`kh · kw`).
        kernel: u64,
        /// Channels (multiplier folded in).
        channels: u64,
    },
    /// Dense layer / tree-node matrix (`spatial = 1`).
    Dense {
        /// Input width.
        in_dim: u64,
        /// Output width.
        out_dim: u64,
    },
}

impl LayerCost {
    /// MACs of the plain (un-strassenified) layer.
    pub fn macs(&self) -> u64 {
        match *self {
            LayerCost::Conv { spatial, kernel, cin, cout } => spatial * kernel * cin * cout,
            LayerCost::Depthwise { spatial, kernel, channels } => spatial * kernel * channels,
            LayerCost::Dense { in_dim, out_dim } => in_dim * out_dim,
        }
    }

    /// Weight parameters of the plain layer (biases excluded).
    pub fn params(&self) -> u64 {
        match *self {
            LayerCost::Conv { kernel, cin, cout, .. } => kernel * cin * cout,
            LayerCost::Depthwise { kernel, channels, .. } => kernel * channels,
            LayerCost::Dense { in_dim, out_dim } => in_dim * out_dim,
        }
    }

    /// Bias parameters of the plain layer.
    pub fn bias_params(&self) -> u64 {
        match *self {
            LayerCost::Conv { cout, .. } => cout,
            LayerCost::Depthwise { channels, .. } => channels,
            LayerCost::Dense { out_dim, .. } => out_dim,
        }
    }

    /// Output positions (1 for dense layers).
    pub fn spatial(&self) -> u64 {
        match *self {
            LayerCost::Conv { spatial, .. } | LayerCost::Depthwise { spatial, .. } => spatial,
            LayerCost::Dense { .. } => 1,
        }
    }

    /// Operations of the strassenified layer with (possibly fractional)
    /// hidden width `r`.
    pub fn strassen_ops(&self, r: f64) -> OpCount {
        assert!(r > 0.0, "hidden width must be positive");
        let (mul_f, add_f) = match *self {
            LayerCost::Conv { spatial, kernel, cin, cout } => {
                let s = spatial as f64;
                let wb = s * r * (kernel * cin) as f64;
                let wc = s * cout as f64 * r;
                (s * r, wb + wc)
            }
            LayerCost::Depthwise { spatial, kernel, .. } => {
                let s = spatial as f64;
                // Wb keeps the depthwise structure: r hidden maps, kernel
                // taps each. Wc combines within each channel's hidden group:
                // one addition per hidden map per position.
                let wb = s * r * kernel as f64;
                let wc = s * r;
                (s * r, wb + wc)
            }
            LayerCost::Dense { in_dim, out_dim } => (r, r * in_dim as f64 + out_dim as f64 * r),
        };
        OpCount { muls: mul_f.round() as u64, adds: add_f.round() as u64 }
    }

    /// Ternary matrix entries (`|W_b| + |W_c|`) of the strassenified layer.
    pub fn strassen_ternary_params(&self, r: f64) -> u64 {
        let f = match *self {
            LayerCost::Conv { kernel, cin, cout, .. } => {
                r * (kernel * cin) as f64 + cout as f64 * r
            }
            LayerCost::Depthwise { kernel, .. } => r * kernel as f64 + r,
            LayerCost::Dense { in_dim, out_dim } => r * in_dim as f64 + out_dim as f64 * r,
        };
        f.round() as u64
    }

    /// Full-precision parameters of the strassenified layer: `â` plus bias.
    pub fn strassen_fp_params(&self, r: f64) -> u64 {
        r.round() as u64 + self.bias_params()
    }
}

/// Aggregated cost of a whole model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// True multiplications per inference.
    pub muls: u64,
    /// Additions per inference.
    pub adds: u64,
    /// Fused multiply-accumulates per inference (plain layers).
    pub macs: u64,
    /// Full-precision (or integer-quantized) scalar parameters.
    pub fp_params: u64,
    /// Ternary matrix entries (2 bits each when packed).
    pub ternary_params: u64,
}

impl CostReport {
    /// Total operations: `muls + adds + macs` (a MAC counts as one op, as in
    /// the paper's "Ops" columns).
    pub fn total_ops(&self) -> u64 {
        self.muls + self.adds + self.macs
    }

    /// Accumulates a plain layer.
    pub fn add_plain(&mut self, layer: LayerCost) {
        self.macs += layer.macs();
        self.fp_params += layer.params() + layer.bias_params();
    }

    /// Accumulates a strassenified layer with hidden width `r`.
    pub fn add_strassen(&mut self, layer: LayerCost, r: f64) {
        let ops = layer.strassen_ops(r);
        self.muls += ops.muls;
        self.adds += ops.adds;
        self.ternary_params += layer.strassen_ternary_params(r);
        self.fp_params += layer.strassen_fp_params(r);
    }

    /// Model size in bytes with `bytes_per_weight` for full-precision
    /// parameters and 2-bit packed ternary entries.
    pub fn model_bytes(&self, bytes_per_fp_weight: u64) -> u64 {
        self.fp_params * bytes_per_fp_weight + (self.ternary_params * 2).div_ceil(8)
    }

    /// Kibibyte rendering (the paper uses 1 KB = 1024 bytes).
    pub fn model_kb(&self, bytes_per_fp_weight: u64) -> f64 {
        self.model_bytes(bytes_per_fp_weight) as f64 / 1024.0
    }
}

/// Formats an op count the way the paper prints it (e.g. `2.7M`).
pub fn format_mops(ops: u64) -> String {
    format!("{:.2}M", ops as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DS-CNN (KWS-S) layer stack from DESIGN.md.
    fn ds_cnn_layers() -> Vec<LayerCost> {
        let mut v = vec![LayerCost::Conv { spatial: 125, kernel: 40, cin: 1, cout: 64 }];
        for _ in 0..4 {
            v.push(LayerCost::Depthwise { spatial: 125, kernel: 9, channels: 64 });
            v.push(LayerCost::Conv { spatial: 125, kernel: 1, cin: 64, cout: 64 });
        }
        v.push(LayerCost::Dense { in_dim: 64, out_dim: 12 });
        v
    }

    #[test]
    fn ds_cnn_macs_match_paper_2_7m() {
        let macs: u64 = ds_cnn_layers().iter().map(|l| l.macs()).sum();
        // Paper Table 1/3: 2.7M MACs.
        assert!((2_600_000..2_800_000).contains(&macs), "macs = {macs}");
    }

    #[test]
    fn ds_cnn_params_match_paper_23k() {
        let params: u64 = ds_cnn_layers().iter().map(|l| l.params() + l.bias_params()).sum();
        // Paper Table 7: 23.18K parameters (ours excludes BN, so slightly less).
        assert!((22_000..24_000).contains(&params), "params = {params}");
    }

    #[test]
    fn st_ds_cnn_r_cout_matches_paper_table1_row() {
        // Paper Table 1, r = c_out: 0.07M muls, 5.32M adds.
        let mut report = CostReport::default();
        for l in ds_cnn_layers() {
            let r = match l {
                LayerCost::Conv { cout, .. } => cout as f64,
                LayerCost::Depthwise { channels, .. } => channels as f64,
                LayerCost::Dense { out_dim, .. } => out_dim as f64,
            };
            report.add_strassen(l, r);
        }
        assert!((60_000..80_000).contains(&report.muls), "muls = {} (paper 0.07M)", report.muls);
        assert!(
            (5_000_000..5_600_000).contains(&report.adds),
            "adds = {} (paper 5.32M)",
            report.adds
        );
    }

    #[test]
    fn st_ds_cnn_r_075_matches_paper_table1_row() {
        // Paper Table 1, r = 0.75·c_out: 0.06M muls, 4.09M adds.
        let mut report = CostReport::default();
        for l in ds_cnn_layers() {
            let r = match l {
                LayerCost::Conv { cout, .. } => 0.75 * cout as f64,
                LayerCost::Depthwise { channels, .. } => 0.75 * channels as f64,
                LayerCost::Dense { out_dim, .. } => out_dim as f64,
            };
            report.add_strassen(l, r);
        }
        assert!((45_000..65_000).contains(&report.muls), "muls = {}", report.muls);
        assert!(
            (3_700_000..4_300_000).contains(&report.adds),
            "adds = {} (paper 4.09M)",
            report.adds
        );
    }

    #[test]
    fn st_ds_cnn_r_2x_matches_paper_table1_row() {
        // Paper Table 1, r = 2·c_out: 0.11M muls, 10.25M adds.
        let mut report = CostReport::default();
        for l in ds_cnn_layers() {
            let r = match l {
                LayerCost::Conv { cout, .. } => 2.0 * cout as f64,
                LayerCost::Depthwise { channels, .. } => 2.0 * channels as f64,
                LayerCost::Dense { out_dim, .. } => out_dim as f64,
            };
            report.add_strassen(l, r);
        }
        assert!((120_000..160_000).contains(&report.muls), "muls = {}", report.muls);
        assert!(
            (9_500_000..11_000_000).contains(&report.adds),
            "adds = {} (paper 10.25M)",
            report.adds
        );
    }

    #[test]
    fn strassen_dense_op_formula() {
        let l = LayerCost::Dense { in_dim: 48, out_dim: 12 };
        let ops = l.strassen_ops(12.0);
        assert_eq!(ops.muls, 12);
        assert_eq!(ops.adds, 12 * 48 + 12 * 12);
    }

    #[test]
    fn ternary_packing_rounds_up() {
        let report = CostReport { ternary_params: 5, ..Default::default() };
        // 5 entries x 2 bits = 10 bits -> 2 bytes.
        assert_eq!(report.model_bytes(4), 2);
    }

    #[test]
    fn model_kb_uses_1024() {
        let report = CostReport { fp_params: 1024, ..Default::default() };
        assert!((report.model_kb(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn format_mops_prints_like_paper() {
        assert_eq!(format_mops(2_700_000), "2.70M");
        assert_eq!(format_mops(60_000), "0.06M");
    }
}
