//! The three-phase Strassen training schedule (§3 / §4 of the paper).

/// Quantization state of a strassenified layer's ternary matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Phase 1: `W_b`, `W_c` are ordinary full-precision weights.
    FullPrecision,
    /// Phase 2: forward uses TWN-ternarized weights; gradients flow to the
    /// full-precision shadows via the straight-through estimator.
    Quantized,
    /// Phase 3: ternary values fixed, scales absorbed into `â`; only `â` and
    /// biases continue training.
    Frozen,
}

/// A layer participating in the three-phase schedule.
pub trait Strassenified {
    /// Current quantization mode.
    fn mode(&self) -> QuantMode;

    /// Phase 1 → 2: activates TWN quantization with STE training.
    fn activate_quantization(&mut self);

    /// Phase 2 → 3: fixes ternary matrices, absorbs their scales into `â`,
    /// and freezes them against further updates.
    fn freeze_ternary(&mut self);
}

/// Epoch-indexed description of the paper's schedule: train full-precision,
/// then quantized, then frozen — the paper uses 135 epochs per phase for the
/// first and last phase with a quantized phase in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingPhase {
    /// Epochs of phase 1 (full precision).
    pub full_precision_epochs: usize,
    /// Epochs of phase 2 (quantized with STE).
    pub quantized_epochs: usize,
    /// Epochs of phase 3 (frozen ternary, `â` fine-tuning).
    pub frozen_epochs: usize,
}

impl TrainingPhase {
    /// The paper's schedule: 135 / 135 / 135 epochs.
    pub fn paper() -> Self {
        Self { full_precision_epochs: 135, quantized_epochs: 135, frozen_epochs: 135 }
    }

    /// A compressed schedule for CI-scale runs.
    pub fn quick(per_phase: usize) -> Self {
        Self {
            full_precision_epochs: per_phase,
            quantized_epochs: per_phase,
            frozen_epochs: per_phase,
        }
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> usize {
        self.full_precision_epochs + self.quantized_epochs + self.frozen_epochs
    }

    /// The mode that should be active during global `epoch` (0-based).
    pub fn mode_at(&self, epoch: usize) -> QuantMode {
        if epoch < self.full_precision_epochs {
            QuantMode::FullPrecision
        } else if epoch < self.full_precision_epochs + self.quantized_epochs {
            QuantMode::Quantized
        } else {
            QuantMode::Frozen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_totals_405_epochs() {
        assert_eq!(TrainingPhase::paper().total_epochs(), 405);
    }

    #[test]
    fn mode_transitions_at_phase_boundaries() {
        let s = TrainingPhase::quick(10);
        assert_eq!(s.mode_at(0), QuantMode::FullPrecision);
        assert_eq!(s.mode_at(9), QuantMode::FullPrecision);
        assert_eq!(s.mode_at(10), QuantMode::Quantized);
        assert_eq!(s.mode_at(19), QuantMode::Quantized);
        assert_eq!(s.mode_at(20), QuantMode::Frozen);
        assert_eq!(s.mode_at(1000), QuantMode::Frozen);
    }
}
