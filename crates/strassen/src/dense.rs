//! Strassenified fully-connected layer.

use rand::rngs::SmallRng;
use thnt_nn::{Layer, Param};
use thnt_tensor::{kaiming_normal, matmul, matmul_nt, matmul_tn, Tensor};

use crate::schedule::{QuantMode, Strassenified};
use crate::ternary::ternarize;
#[cfg(test)]
use crate::ternary::ternary_values;

/// A strassenified dense layer: `y = W_c · (â ⊙ (W_b · x)) + bias`.
///
/// * `W_b: [r, in]` — ternary (after phase 1) input combinations
/// * `â: [r]` — full-precision collapsed `W_a · vec(A)` (always trained)
/// * `W_c: [out, r]` — ternary output combinations
///
/// Per inference this costs `r` multiplications (the `⊙`) plus additions from
/// the two ternary matrix applications — the entire point of the method.
#[derive(Debug)]
pub struct StrassenDense {
    wb: Param,
    a_hat: Param,
    wc: Param,
    bias: Param,
    mode: QuantMode,
    threshold_factor: f32,
    // Caches for backward.
    input: Option<Tensor>,
    hidden: Option<Tensor>,
    scaled: Option<Tensor>,
    eff_wb: Option<Tensor>,
    eff_wc: Option<Tensor>,
}

impl StrassenDense {
    /// Creates a strassenified dense layer with hidden width `r`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, r: usize, rng: &mut SmallRng) -> Self {
        assert!(in_dim > 0 && out_dim > 0 && r > 0, "dimensions must be positive");
        Self {
            wb: Param::new("st_dense.wb", kaiming_normal(&[r, in_dim], in_dim, rng)),
            a_hat: Param::new("st_dense.a_hat", Tensor::full(&[r], 1.0)),
            wc: Param::new("st_dense.wc", kaiming_normal(&[out_dim, r], r, rng)),
            bias: Param::new("st_dense.bias", Tensor::zeros(&[out_dim])),
            mode: QuantMode::FullPrecision,
            threshold_factor: 0.7,
            input: None,
            hidden: None,
            scaled: None,
            eff_wb: None,
            eff_wc: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.wb.value.dims()[1]
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.wc.value.dims()[0]
    }

    /// Hidden width `r` (multiplications per inference).
    pub fn hidden_width(&self) -> usize {
        self.a_hat.value.numel()
    }

    /// Sets the TWN threshold factor (default 0.7). Larger values zero more
    /// ternary entries, trading accuracy for fewer additions — the §6
    /// "constrain the number of additions" knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_ternary_threshold(&mut self, factor: f32) {
        assert!(factor.is_finite() && factor > 0.0, "threshold must be positive");
        self.threshold_factor = factor;
    }

    /// Current TWN threshold factor.
    pub fn ternary_threshold(&self) -> f32 {
        self.threshold_factor
    }

    /// The `W_b` weight values (ternary once frozen) — read by the packed
    /// inference compiler.
    pub fn wb_values(&self) -> &Tensor {
        &self.wb.value
    }

    /// The collapsed full-precision `â` vector.
    pub fn a_hat_values(&self) -> &Tensor {
        &self.a_hat.value
    }

    /// The `W_c` weight values (ternary once frozen).
    pub fn wc_values(&self) -> &Tensor {
        &self.wc.value
    }

    /// The bias vector.
    pub fn bias_values(&self) -> &Tensor {
        &self.bias.value
    }

    /// The effective `W_b` for the current mode.
    fn effective_wb(&self) -> Tensor {
        match self.mode {
            QuantMode::FullPrecision | QuantMode::Frozen => self.wb.value.clone(),
            QuantMode::Quantized => ternarize(&self.wb.value, self.threshold_factor).reconstruct(),
        }
    }

    /// The effective `W_c` for the current mode.
    fn effective_wc(&self) -> Tensor {
        match self.mode {
            QuantMode::FullPrecision | QuantMode::Frozen => self.wc.value.clone(),
            QuantMode::Quantized => ternarize(&self.wc.value, self.threshold_factor).reconstruct(),
        }
    }
}

impl Layer for StrassenDense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims()[1], self.in_dim(), "StrassenDense input width mismatch");
        let eff_wb = self.effective_wb();
        let eff_wc = self.effective_wc();
        // hidden = x · W_bᵀ  → [n, r]
        let hidden = matmul_nt(x, &eff_wb);
        // scaled = hidden ⊙ â (broadcast over batch)
        let (n, r) = (hidden.dims()[0], hidden.dims()[1]);
        let mut scaled = hidden.clone();
        {
            let a = self.a_hat.value.data();
            let sd = scaled.data_mut();
            for s in 0..n {
                for k in 0..r {
                    sd[s * r + k] *= a[k];
                }
            }
        }
        // y = scaled · W_cᵀ + bias
        let mut y = matmul_nt(&scaled, &eff_wc);
        {
            let out = self.out_dim();
            let b = self.bias.value.data();
            let yd = y.data_mut();
            for s in 0..n {
                for o in 0..out {
                    yd[s * out + o] += b[o];
                }
            }
        }
        if train {
            self.input = Some(x.clone());
            self.hidden = Some(hidden);
            self.scaled = Some(scaled);
            self.eff_wb = Some(eff_wb);
            self.eff_wc = Some(eff_wc);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("backward without training forward");
        let hidden = self.hidden.as_ref().unwrap();
        let scaled = self.scaled.as_ref().unwrap();
        let eff_wb = self.eff_wb.as_ref().unwrap();
        let eff_wc = self.eff_wc.as_ref().unwrap();
        let (n, r) = (hidden.dims()[0], hidden.dims()[1]);
        let out = self.out_dim();

        // Bias gradient.
        {
            let bg = self.bias.grad.data_mut();
            let gd = grad.data();
            for s in 0..n {
                for o in 0..out {
                    bg[o] += gd[s * out + o];
                }
            }
        }
        // dWc += gradᵀ · scaled   (STE: shadow gets the effective gradient)
        self.wc.grad.axpy(1.0, &matmul_tn(grad, scaled));
        // d_scaled = grad · Wc
        let d_scaled = matmul(grad, eff_wc);
        // dâ += Σ_n d_scaled ⊙ hidden ; d_hidden = d_scaled ⊙ â
        let mut d_hidden = d_scaled.clone();
        {
            let ag = self.a_hat.grad.data_mut();
            let a = self.a_hat.value.data();
            let dh = d_hidden.data_mut();
            let ds = d_scaled.data();
            let h = hidden.data();
            for s in 0..n {
                for k in 0..r {
                    ag[k] += ds[s * r + k] * h[s * r + k];
                    dh[s * r + k] = ds[s * r + k] * a[k];
                }
            }
        }
        // dWb += d_hiddenᵀ · x ; dx = d_hidden · Wb
        self.wb.grad.axpy(1.0, &matmul_tn(&d_hidden, x));
        matmul(&d_hidden, eff_wb)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wb, &mut self.a_hat, &mut self.wc, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wb, &self.a_hat, &self.wc, &self.bias]
    }

    fn name(&self) -> &'static str {
        "strassen_dense"
    }
}

impl Strassenified for StrassenDense {
    fn mode(&self) -> QuantMode {
        self.mode
    }

    fn activate_quantization(&mut self) {
        assert_eq!(self.mode, QuantMode::FullPrecision, "already quantized");
        self.mode = QuantMode::Quantized;
    }

    fn freeze_ternary(&mut self) {
        assert_eq!(self.mode, QuantMode::Quantized, "freeze requires quantized mode");
        let tb = ternarize(&self.wb.value, self.threshold_factor);
        let tc = ternarize(&self.wc.value, self.threshold_factor);
        // Absorb both scales into â (paper §3: scaling factors are absorbed
        // by the full-precision vec(A) / â portion).
        let absorb = tb.scale * tc.scale;
        self.a_hat.value.scale(absorb);
        self.wb.value = tb.values;
        self.wc.value = tc.values;
        self.wb.freeze();
        self.wc.freeze();
        self.mode = QuantMode::Frozen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer(r: usize) -> StrassenDense {
        let mut rng = SmallRng::seed_from_u64(0);
        StrassenDense::new(6, 4, r, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer(5);
        let y = l.forward(&Tensor::zeros(&[3, 6]), false);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn gradients_check_full_precision() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut l = layer(5);
        let x = thnt_tensor::gaussian(&[2, 6], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut l, &x, 1e-2, 2e-2, 40, 2);
    }

    #[test]
    fn quantized_forward_uses_ternary_weights() {
        let mut l = layer(5);
        l.activate_quantization();
        let eff = l.effective_wb();
        let t = ternary_values(&l.wb.value);
        thnt_tensor::assert_close(eff.data(), t.reconstruct().data(), 1e-6, 0.0);
    }

    #[test]
    fn freeze_makes_weights_ternary_and_untrainable() {
        let mut l = layer(5);
        l.activate_quantization();
        l.freeze_ternary();
        assert_eq!(l.mode(), QuantMode::Frozen);
        assert!(l.wb.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        assert!(l.wc.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        assert!(!l.wb.trainable && !l.wc.trainable);
        assert!(l.a_hat.trainable && l.bias.trainable);
    }

    #[test]
    fn freeze_preserves_quantized_function() {
        // The frozen layer (ternary + absorbed scales) must compute exactly
        // what the quantized layer computed.
        let mut rng = SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[4, 6], 0.0, 1.0, &mut rng);
        let mut l = layer(7);
        l.activate_quantization();
        let before = l.forward(&x, false);
        l.freeze_ternary();
        let after = l.forward(&x, false);
        thnt_tensor::assert_close(after.data(), before.data(), 1e-4, 1e-4);
    }

    #[test]
    fn can_fit_a_linear_map_with_enough_hidden_units() {
        // A strassenified layer with generous r can realise an arbitrary
        // linear map; check by training on y = Mx.
        use thnt_nn::Optimizer;
        let mut rng = SmallRng::seed_from_u64(4);
        let m = thnt_tensor::gaussian(&[3, 4], 0.0, 1.0, &mut rng);
        let mut l = StrassenDense::new(4, 3, 16, &mut rng);
        let mut opt = thnt_nn::Adam::new(0.02);
        for _ in 0..400 {
            let x = thnt_tensor::gaussian(&[8, 4], 0.0, 1.0, &mut rng);
            let target = thnt_tensor::matmul_nt(&x, &m);
            let y = l.forward(&x, true);
            let mut grad = &y - &target;
            grad.scale(2.0 / (8.0 * 3.0));
            for p in Layer::params_mut(&mut l) {
                p.zero_grad();
            }
            let gx = l.backward(&grad);
            assert_eq!(gx.dims(), x.dims());
            let mut params = Layer::params_mut(&mut l);
            opt.step(&mut params);
        }
        let x = thnt_tensor::gaussian(&[16, 4], 0.0, 1.0, &mut rng);
        let target = thnt_tensor::matmul_nt(&x, &m);
        let y = l.forward(&x, false);
        let err = (&y - &target).norm() / target.norm();
        assert!(err < 0.05, "relative error {err}");
    }
}
