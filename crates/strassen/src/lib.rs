//! StrassenNets (Tschannen et al., ICML 2018) for the THNT reproduction.
//!
//! A *strassenified* layer replaces the matrix multiplication `C = A·B`
//! (weights `A`, activations `B`) with a two-layer sum-product network
//!
//! ```text
//! vec(C) = W_c · [ (W_b · vec(B)) ⊙ (W_a · vec(A)) ]
//! ```
//!
//! where `W_a, W_b, W_c` are **ternary** (`{−1, 0, 1}`) and the hidden width
//! `r` controls the multiplication budget: the only true multiplications per
//! output position are the `r` element-wise products.
//!
//! Because weights are fixed at inference, `W_a · vec(A)` collapses into a
//! full-precision vector `â ∈ ℝʳ` (§3 of the THNT paper), which this crate
//! learns directly. Training follows the paper's three phases:
//!
//! 1. **Full precision** — `W_b`, `W_c` trained as ordinary floats.
//! 2. **Quantized** — forward uses TWN-style ternarized weights
//!    (`α · sign(w)·1[|w|>Δ]`, Δ = 0.7·E|w|), gradients flow to the
//!    full-precision shadows via the straight-through estimator.
//! 3. **Frozen** — ternary values fixed, scales absorbed into `â`; only `â`
//!    and biases keep training.
//!
//! The crate also ships the exact 2×2 Strassen construction (`r = 7`) as a
//! correctness anchor, and the analytic operation/size cost model used to
//! regenerate the paper's tables.
//!
//! # Example
//!
//! ```
//! use thnt_strassen::{exact_strassen_2x2, spn_matmul_2x2};
//! use thnt_tensor::{matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
//! let spn = exact_strassen_2x2();
//! let c = spn_matmul_2x2(&spn, &a, &b);
//! thnt_tensor::assert_close(c.data(), matmul(&a, &b).data(), 1e-4, 1e-4);
//! ```

// Every public item must be documented: these crates are the repo's API
// surface, and CI runs `cargo doc` with `-D warnings`.
#![warn(missing_docs)]
// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod cost;
pub mod dense;
pub mod packed;
pub mod schedule;
pub mod spn;
pub mod stack;
pub mod ternary;

pub use conv::{StrassenConv2d, StrassenDepthwise2d};
pub use cost::{format_mops, CostReport, LayerCost, OpCount};
pub use dense::StrassenDense;
pub use packed::bitslice::BitSliced;
pub use packed::kernel::{Kernel, KernelDispatch};
pub use packed::PackedTernary;
pub use schedule::{QuantMode, Strassenified, TrainingPhase};
pub use spn::{exact_strassen_2x2, spn_matmul_2x2, PackedSpn, StrassenSpn};
pub use stack::{StLayer, StStack};
pub use ternary::{ternarize, ternary_values, TernaryWeights};
