//! Strassenified convolution layers.
//!
//! A strassenified standard convolution replaces
//! `conv(x, W[oc,ic,kh,kw])` with
//!
//! 1. a **ternary convolution** `W_b: [r, ic, kh, kw]` producing `r` hidden
//!    channels (additions only once ternary),
//! 2. a per-channel scale by the full-precision `â ∈ ℝʳ` (the `r` true
//!    multiplications per output position),
//! 3. a **ternary 1×1 convolution** `W_c: [oc, r]` combining hidden channels.
//!
//! For depthwise convolutions the same structure is applied per channel:
//! `W_b` is a ternary depthwise conv with channel multiplier `m` (hidden
//! width `r = m·c`) and `W_c: [c, m]` combines each channel's hidden units.
//! The paper's fractional `r = 0.75·c_out` configuration is realised exactly
//! for standard convolutions; for depthwise layers the trained hidden width
//! rounds up to `m = ⌈r/c⌉` channels (the analytic cost model in
//! [`crate::cost`] accounts the paper's fractional arithmetic — see
//! DESIGN.md).

use rand::rngs::SmallRng;
use thnt_nn::{Layer, Param};
use thnt_tensor::{
    col2im, conv2d, depthwise_conv2d, im2col, kaiming_normal, matmul_nt, matmul_tn, Conv2dSpec,
    Tensor,
};

use crate::schedule::{QuantMode, Strassenified};
use crate::ternary::ternarize;

/// Strassenified standard convolution.
#[derive(Debug)]
pub struct StrassenConv2d {
    wb: Param,
    a_hat: Param,
    wc: Param,
    bias: Param,
    spec: Conv2dSpec,
    mode: QuantMode,
    threshold_factor: f32,
    hidden_bits: Option<u8>,
    cached_cols: Vec<Tensor>,
    input_dims: Option<Vec<usize>>,
    hidden: Option<Tensor>,
    scaled: Option<Tensor>,
    eff_wb: Option<Tensor>,
    eff_wc: Option<Tensor>,
}

impl StrassenConv2d {
    /// Creates a strassenified conv with hidden width `r` over `in_ch`
    /// channels producing `out_ch` channels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        r: usize,
        spec: Conv2dSpec,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && r > 0, "dimensions must be positive");
        let fan_in = in_ch * spec.kh * spec.kw;
        Self {
            wb: Param::new(
                "st_conv.wb",
                kaiming_normal(&[r, in_ch, spec.kh, spec.kw], fan_in, rng),
            ),
            a_hat: Param::new("st_conv.a_hat", Tensor::full(&[r], 1.0)),
            wc: Param::new("st_conv.wc", kaiming_normal(&[out_ch, r], r, rng)),
            bias: Param::new("st_conv.bias", Tensor::zeros(&[out_ch])),
            spec,
            mode: QuantMode::FullPrecision,
            threshold_factor: 0.7,
            hidden_bits: None,
            cached_cols: Vec::new(),
            input_dims: None,
            hidden: None,
            scaled: None,
            eff_wb: None,
            eff_wc: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.wc.value.dims()[0]
    }

    /// Hidden width `r`.
    pub fn hidden_width(&self) -> usize {
        self.a_hat.value.numel()
    }

    /// Convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Fake-quantizes the post-`W_b` hidden activations to `bits` at
    /// inference (`None` disables) — the knob behind Table 6's mixed
    /// 8/16-bit activation study.
    pub fn set_hidden_bits(&mut self, bits: Option<u8>) {
        self.hidden_bits = bits;
    }

    /// Current hidden-activation quantization setting.
    pub fn hidden_bits(&self) -> Option<u8> {
        self.hidden_bits
    }

    /// Sets the TWN threshold factor (default 0.7) — the §6 additions knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_ternary_threshold(&mut self, factor: f32) {
        assert!(factor.is_finite() && factor > 0.0, "threshold must be positive");
        self.threshold_factor = factor;
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.wb.value.dims()[1]
    }

    /// The `W_b` convolution weights `[r, ic, kh, kw]` (ternary once frozen)
    /// — read by the packed inference compiler.
    pub fn wb_values(&self) -> &Tensor {
        &self.wb.value
    }

    /// The collapsed full-precision `â` vector.
    pub fn a_hat_values(&self) -> &Tensor {
        &self.a_hat.value
    }

    /// The `W_c` combination weights `[oc, r]` (ternary once frozen).
    pub fn wc_values(&self) -> &Tensor {
        &self.wc.value
    }

    /// The bias vector.
    pub fn bias_values(&self) -> &Tensor {
        &self.bias.value
    }

    fn effective(&self, p: &Param) -> Tensor {
        match self.mode {
            QuantMode::FullPrecision | QuantMode::Frozen => p.value.clone(),
            QuantMode::Quantized => ternarize(&p.value, self.threshold_factor).reconstruct(),
        }
    }
}

impl Layer for StrassenConv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let eff_wb = self.effective(&self.wb);
        let eff_wc = self.effective(&self.wc);
        let r = self.hidden_width();
        let oc = self.out_channels();
        // 1. Ternary conv -> hidden channels.
        let mut hidden = conv2d(x, &eff_wb, None, &self.spec);
        if !train {
            if let Some(bits) = self.hidden_bits {
                hidden = thnt_tensor::fake_quantize_optimal(&hidden, bits);
            }
        }
        let (n, _, oh, ow) = (hidden.dims()[0], r, hidden.dims()[2], hidden.dims()[3]);
        let spatial = oh * ow;
        // 2. Channel scale by â.
        let mut scaled = hidden.clone();
        {
            let a = self.a_hat.value.data();
            let sd = scaled.data_mut();
            for s in 0..n {
                for k in 0..r {
                    let start = (s * r + k) * spatial;
                    for v in &mut sd[start..start + spatial] {
                        *v *= a[k];
                    }
                }
            }
        }
        // 3. Ternary 1x1 combine + bias.
        let mut y = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            let sm = scaled.slice_batch(s).reshape(&[r, spatial]);
            let ym = thnt_tensor::matmul(&eff_wc, &sm);
            let dst = &mut y.data_mut()[s * oc * spatial..(s + 1) * oc * spatial];
            dst.copy_from_slice(ym.data());
            for ch in 0..oc {
                let b = self.bias.value.data()[ch];
                for v in &mut dst[ch * spatial..(ch + 1) * spatial] {
                    *v += b;
                }
            }
        }
        if train {
            self.input_dims = Some(x.dims().to_vec());
            self.cached_cols = (0..n).map(|s| im2col(&x.slice_batch(s), &self.spec)).collect();
            self.hidden = Some(hidden);
            self.scaled = Some(scaled);
            self.eff_wb = Some(eff_wb);
            self.eff_wc = Some(eff_wc);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dims = self.input_dims.clone().expect("backward without training forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let r = self.hidden_width();
        let oc = self.out_channels();
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let k = c * self.spec.kh * self.spec.kw;
        let hidden = self.hidden.take().unwrap();
        let scaled = self.scaled.take().unwrap();
        let eff_wb = self.eff_wb.take().unwrap();
        let eff_wc = self.eff_wc.take().unwrap();
        let eff_wb2d = eff_wb.reshape(&[r, k]);
        let mut grad_x = Tensor::zeros(&dims);
        for s in 0..n {
            let g = grad.slice_batch(s).reshape(&[oc, spatial]);
            // Bias.
            for ch in 0..oc {
                let sum: f32 = g.row(ch).iter().sum();
                self.bias.grad.data_mut()[ch] += sum;
            }
            let sm = scaled.slice_batch(s).reshape(&[r, spatial]);
            // dWc += g · scaledᵀ
            self.wc.grad.axpy(1.0, &matmul_nt(&g, &sm));
            // d_scaled = Wcᵀ · g
            let d_scaled = matmul_tn(&eff_wc, &g);
            // dâ and d_hidden.
            let hm = hidden.slice_batch(s).reshape(&[r, spatial]);
            let mut d_hidden = d_scaled.clone();
            {
                let ag = self.a_hat.grad.data_mut();
                let a = self.a_hat.value.data();
                let dh = d_hidden.data_mut();
                for ch in 0..r {
                    let mut acc = 0.0f32;
                    for i in 0..spatial {
                        acc += d_scaled.data()[ch * spatial + i] * hm.data()[ch * spatial + i];
                        dh[ch * spatial + i] *= a[ch];
                    }
                    ag[ch] += acc;
                }
            }
            // dWb += d_hidden · colsᵀ ; dcols = Wbᵀ · d_hidden ; dx = col2im.
            let cols = &self.cached_cols[s];
            let dwb = matmul_nt(&d_hidden, cols);
            self.wb.grad.axpy(1.0, &dwb.reshape(self.wb.value.dims()));
            let dcols = matmul_tn(&eff_wb2d, &d_hidden);
            let dx = col2im(&dcols, &self.spec, c, h, w);
            grad_x.data_mut()[s * c * h * w..(s + 1) * c * h * w].copy_from_slice(dx.data());
        }
        grad_x
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wb, &mut self.a_hat, &mut self.wc, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wb, &self.a_hat, &self.wc, &self.bias]
    }

    fn name(&self) -> &'static str {
        "strassen_conv2d"
    }
}

impl Strassenified for StrassenConv2d {
    fn mode(&self) -> QuantMode {
        self.mode
    }

    fn activate_quantization(&mut self) {
        assert_eq!(self.mode, QuantMode::FullPrecision, "already quantized");
        self.mode = QuantMode::Quantized;
    }

    fn freeze_ternary(&mut self) {
        assert_eq!(self.mode, QuantMode::Quantized, "freeze requires quantized mode");
        let tb = ternarize(&self.wb.value, self.threshold_factor);
        let tc = ternarize(&self.wc.value, self.threshold_factor);
        self.a_hat.value.scale(tb.scale * tc.scale);
        self.wb.value = tb.values;
        self.wc.value = tc.values;
        self.wb.freeze();
        self.wc.freeze();
        self.mode = QuantMode::Frozen;
    }
}

/// Strassenified depthwise convolution (hidden multiplier `m` per channel,
/// total hidden width `r = m · channels`).
#[derive(Debug)]
pub struct StrassenDepthwise2d {
    wb: Param,
    a_hat: Param,
    wc: Param,
    bias: Param,
    spec: Conv2dSpec,
    channels: usize,
    multiplier: usize,
    mode: QuantMode,
    threshold_factor: f32,
    hidden_bits: Option<u8>,
    input: Option<Tensor>,
    hidden: Option<Tensor>,
    scaled: Option<Tensor>,
    eff_wb: Option<Tensor>,
    eff_wc: Option<Tensor>,
}

impl StrassenDepthwise2d {
    /// Creates a strassenified depthwise conv over `channels` channels with
    /// hidden multiplier `multiplier`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `multiplier` is zero.
    pub fn new(channels: usize, multiplier: usize, spec: Conv2dSpec, rng: &mut SmallRng) -> Self {
        assert!(channels > 0 && multiplier > 0, "dimensions must be positive");
        let fan_in = spec.kh * spec.kw;
        Self {
            wb: Param::new(
                "st_dw.wb",
                kaiming_normal(&[channels, multiplier, spec.kh, spec.kw], fan_in, rng),
            ),
            a_hat: Param::new("st_dw.a_hat", Tensor::full(&[channels * multiplier], 1.0)),
            wc: Param::new("st_dw.wc", kaiming_normal(&[channels, multiplier], multiplier, rng)),
            bias: Param::new("st_dw.bias", Tensor::zeros(&[channels])),
            spec,
            channels,
            multiplier,
            mode: QuantMode::FullPrecision,
            threshold_factor: 0.7,
            hidden_bits: None,
            input: None,
            hidden: None,
            scaled: None,
            eff_wb: None,
            eff_wc: None,
        }
    }

    /// Hidden width `r = channels · multiplier`.
    pub fn hidden_width(&self) -> usize {
        self.channels * self.multiplier
    }

    /// Channel count (input and output).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Hidden channel multiplier `m`.
    pub fn multiplier(&self) -> usize {
        self.multiplier
    }

    /// Convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The `W_b` depthwise weights `[c, m, kh, kw]` (ternary once frozen) —
    /// read by the packed inference compiler.
    pub fn wb_values(&self) -> &Tensor {
        &self.wb.value
    }

    /// The collapsed full-precision `â` vector (`c·m` entries).
    pub fn a_hat_values(&self) -> &Tensor {
        &self.a_hat.value
    }

    /// The `W_c` grouped combination weights `[c, m]` (ternary once frozen).
    pub fn wc_values(&self) -> &Tensor {
        &self.wc.value
    }

    /// The bias vector.
    pub fn bias_values(&self) -> &Tensor {
        &self.bias.value
    }

    /// Fake-quantizes the post-`W_b` hidden activations to `bits` at
    /// inference (`None` disables). The paper finds these depthwise
    /// intermediates need 16 bits to preserve accuracy (Table 6).
    pub fn set_hidden_bits(&mut self, bits: Option<u8>) {
        self.hidden_bits = bits;
    }

    /// Current hidden-activation quantization setting.
    pub fn hidden_bits(&self) -> Option<u8> {
        self.hidden_bits
    }

    /// Sets the TWN threshold factor (default 0.7) — the §6 additions knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_ternary_threshold(&mut self, factor: f32) {
        assert!(factor.is_finite() && factor > 0.0, "threshold must be positive");
        self.threshold_factor = factor;
    }

    fn effective(&self, p: &Param) -> Tensor {
        match self.mode {
            QuantMode::FullPrecision | QuantMode::Frozen => p.value.clone(),
            QuantMode::Quantized => ternarize(&p.value, self.threshold_factor).reconstruct(),
        }
    }
}

impl Layer for StrassenDepthwise2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims()[1], self.channels, "StrassenDepthwise channel mismatch");
        let eff_wb = self.effective(&self.wb);
        let eff_wc = self.effective(&self.wc);
        let (c, m) = (self.channels, self.multiplier);
        // 1. Ternary depthwise conv -> c·m hidden channels.
        let mut hidden = depthwise_conv2d(x, &eff_wb, None, &self.spec);
        if !train {
            if let Some(bits) = self.hidden_bits {
                hidden = thnt_tensor::fake_quantize_optimal(&hidden, bits);
            }
        }
        let (n, oh, ow) = (hidden.dims()[0], hidden.dims()[2], hidden.dims()[3]);
        let spatial = oh * ow;
        // 2. Scale by â.
        let mut scaled = hidden.clone();
        {
            let a = self.a_hat.value.data();
            let sd = scaled.data_mut();
            for s in 0..n {
                for k in 0..c * m {
                    let start = (s * c * m + k) * spatial;
                    for v in &mut sd[start..start + spatial] {
                        *v *= a[k];
                    }
                }
            }
        }
        // 3. Grouped ternary combine: y[ch] = Σ_j wc[ch,j]·scaled[ch·m+j] + b.
        let mut y = Tensor::zeros(&[n, c, oh, ow]);
        {
            let yd = y.data_mut();
            let sd = scaled.data();
            for s in 0..n {
                for ch in 0..c {
                    let dst = &mut yd[(s * c + ch) * spatial..(s * c + ch + 1) * spatial];
                    let b = self.bias.value.data()[ch];
                    dst.fill(b);
                    for j in 0..m {
                        let wcv = eff_wc.data()[ch * m + j];
                        if wcv == 0.0 {
                            continue;
                        }
                        let src = &sd[(s * c * m + ch * m + j) * spatial
                            ..(s * c * m + ch * m + j + 1) * spatial];
                        for (d, &v) in dst.iter_mut().zip(src) {
                            *d += wcv * v;
                        }
                    }
                }
            }
        }
        if train {
            self.input = Some(x.clone());
            self.hidden = Some(hidden);
            self.scaled = Some(scaled);
            self.eff_wb = Some(eff_wb);
            self.eff_wc = Some(eff_wc);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.input.take().expect("backward without training forward");
        let hidden = self.hidden.take().unwrap();
        let scaled = self.scaled.take().unwrap();
        let eff_wb = self.eff_wb.take().unwrap();
        let eff_wc = self.eff_wc.take().unwrap();
        let (c, m) = (self.channels, self.multiplier);
        let (n, _, h, w) = (x.dims()[0], c, x.dims()[2], x.dims()[3]);
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let (kh, kw) = (self.spec.kh, self.spec.kw);

        // Stage 3 backward: bias, wc, d_scaled.
        let mut d_scaled = Tensor::zeros(hidden.dims());
        {
            let gd = grad.data();
            let sd = scaled.data();
            let dsd = d_scaled.data_mut();
            let wcg = self.wc.grad.data_mut();
            let bg = self.bias.grad.data_mut();
            for s in 0..n {
                for ch in 0..c {
                    let grow = &gd[(s * c + ch) * spatial..(s * c + ch + 1) * spatial];
                    bg[ch] += grow.iter().sum::<f32>();
                    for j in 0..m {
                        let hidx = (s * c * m + ch * m + j) * spatial;
                        let srow = &sd[hidx..hidx + spatial];
                        let mut acc = 0.0f32;
                        let wcv = eff_wc.data()[ch * m + j];
                        for (i, &g) in grow.iter().enumerate() {
                            acc += g * srow[i];
                            dsd[hidx + i] += g * wcv;
                        }
                        wcg[ch * m + j] += acc;
                    }
                }
            }
        }
        // Stage 2 backward: dâ, d_hidden.
        let mut d_hidden = d_scaled.clone();
        {
            let ag = self.a_hat.grad.data_mut();
            let a = self.a_hat.value.data();
            let hd = hidden.data();
            let dsd = d_scaled.data();
            let dhd = d_hidden.data_mut();
            for s in 0..n {
                for k in 0..c * m {
                    let start = (s * c * m + k) * spatial;
                    let mut acc = 0.0f32;
                    for i in start..start + spatial {
                        acc += dsd[i] * hd[i];
                        dhd[i] = dsd[i] * a[k];
                    }
                    ag[k] += acc;
                }
            }
        }
        // Stage 1 backward: depthwise conv wrt wb and x.
        let mut grad_x = Tensor::zeros(x.dims());
        {
            let wbd = eff_wb.data();
            let wbg = self.wb.grad.data_mut();
            let xd = x.data();
            let dhd = d_hidden.data();
            let gxd = grad_x.data_mut();
            for s in 0..n {
                for ch in 0..c {
                    let img_off = (s * c + ch) * h * w;
                    for j in 0..m {
                        let oc = ch * m + j;
                        let g_off = (s * c * m + oc) * spatial;
                        let w_off = oc * kh * kw;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let g = dhd[g_off + oy * ow + ox];
                                if g == 0.0 {
                                    continue;
                                }
                                for ki in 0..kh {
                                    let iy = (oy * self.spec.stride_h + ki) as isize
                                        - self.spec.pad_top as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kj in 0..kw {
                                        let ix = (ox * self.spec.stride_w + kj) as isize
                                            - self.spec.pad_left as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let xi = img_off + iy as usize * w + ix as usize;
                                        wbg[w_off + ki * kw + kj] += g * xd[xi];
                                        gxd[xi] += g * wbd[w_off + ki * kw + kj];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_x
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wb, &mut self.a_hat, &mut self.wc, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wb, &self.a_hat, &self.wc, &self.bias]
    }

    fn name(&self) -> &'static str {
        "strassen_depthwise2d"
    }
}

impl Strassenified for StrassenDepthwise2d {
    fn mode(&self) -> QuantMode {
        self.mode
    }

    fn activate_quantization(&mut self) {
        assert_eq!(self.mode, QuantMode::FullPrecision, "already quantized");
        self.mode = QuantMode::Quantized;
    }

    fn freeze_ternary(&mut self) {
        assert_eq!(self.mode, QuantMode::Quantized, "freeze requires quantized mode");
        let tb = ternarize(&self.wb.value, self.threshold_factor);
        let tc = ternarize(&self.wc.value, self.threshold_factor);
        self.a_hat.value.scale(tb.scale * tc.scale);
        self.wb.value = tb.values;
        self.wc.value = tc.values;
        self.wb.freeze();
        self.wc.freeze();
        self.mode = QuantMode::Frozen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn st_conv_forward_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let spec = Conv2dSpec::same(9, 6, 3, 3, 1, 1);
        let mut l = StrassenConv2d::new(2, 4, 3, spec, &mut rng);
        let y = l.forward(&Tensor::zeros(&[2, 2, 9, 6]), false);
        assert_eq!(y.dims(), &[2, 4, 9, 6]);
        assert_eq!(l.hidden_width(), 3);
    }

    #[test]
    fn st_conv_gradients() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = Conv2dSpec::same(5, 4, 3, 3, 1, 1);
        let mut l = StrassenConv2d::new(2, 3, 4, spec, &mut rng);
        let x = thnt_tensor::gaussian(&[2, 2, 5, 4], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut l, &x, 1e-2, 2e-2, 30, 2);
    }

    #[test]
    fn st_depthwise_forward_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = Conv2dSpec::same(6, 6, 3, 3, 1, 1);
        let mut l = StrassenDepthwise2d::new(4, 2, spec, &mut rng);
        let y = l.forward(&Tensor::zeros(&[2, 4, 6, 6]), false);
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
        assert_eq!(l.hidden_width(), 8);
    }

    #[test]
    fn st_depthwise_gradients() {
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = Conv2dSpec::same(4, 4, 3, 3, 1, 1);
        let mut l = StrassenDepthwise2d::new(2, 2, spec, &mut rng);
        let x = thnt_tensor::gaussian(&[2, 2, 4, 4], 0.0, 1.0, &mut rng);
        thnt_nn::check_gradients(&mut l, &x, 1e-2, 2e-2, 30, 4);
    }

    #[test]
    fn st_conv_freeze_preserves_quantized_function() {
        let mut rng = SmallRng::seed_from_u64(4);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let mut l = StrassenConv2d::new(2, 3, 5, spec, &mut rng);
        let x = thnt_tensor::gaussian(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        l.activate_quantization();
        let before = l.forward(&x, false);
        l.freeze_ternary();
        let after = l.forward(&x, false);
        thnt_tensor::assert_close(after.data(), before.data(), 1e-4, 1e-4);
        assert!(l.wb.value.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
    }

    #[test]
    fn st_depthwise_freeze_preserves_quantized_function() {
        let mut rng = SmallRng::seed_from_u64(5);
        let spec = Conv2dSpec::same(4, 4, 3, 3, 1, 1);
        let mut l = StrassenDepthwise2d::new(3, 2, spec, &mut rng);
        let x = thnt_tensor::gaussian(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        l.activate_quantization();
        let before = l.forward(&x, false);
        l.freeze_ternary();
        let after = l.forward(&x, false);
        thnt_tensor::assert_close(after.data(), before.data(), 1e-4, 1e-4);
    }

    #[test]
    fn st_conv_with_identity_spn_mimics_plain_conv() {
        // With r = oc, identity Wc, and â = 1, the ST conv IS a plain conv
        // with weights Wb — sanity anchor for the decomposition.
        let mut rng = SmallRng::seed_from_u64(6);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let mut l = StrassenConv2d::new(2, 3, 3, spec, &mut rng);
        l.wc.value = Tensor::eye(3);
        let x = thnt_tensor::gaussian(&[1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let y = l.forward(&x, false);
        let direct = conv2d(&x, &l.wb.value, None, &spec);
        thnt_tensor::assert_close(y.data(), direct.data(), 1e-4, 1e-4);
    }
}
