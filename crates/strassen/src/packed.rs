//! Packed 2-bit ternary storage and the add-only inference kernel.
//!
//! The paper's deployment story is that ternary matrices (i) pack at 2 bits
//! per entry — the source of the 52.2% model-size reduction — and (ii)
//! execute with **additions and subtractions only**, no multiplications.
//! This module makes both concrete:
//!
//! * [`PackedTernary`] stores a ternary matrix at 4 entries/byte,
//! * [`PackedTernary::matvec`] computes `W·x` using only `+`/`−`
//!   (each row accumulates `x[j]` or `−x[j]`), and
//! * [`PackedTernary::add_count`] reports the *exact* number of additions a
//!   microcontroller would execute — the empirical cross-check for the
//!   analytic cost model in [`crate::cost`].

use thnt_tensor::Tensor;

/// Encoding of one ternary entry in two bits.
const ENC_ZERO: u8 = 0b00;
const ENC_PLUS: u8 = 0b01;
const ENC_MINUS: u8 = 0b10;

/// A ternary matrix packed at 2 bits per entry (4 entries per byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTernary {
    rows: usize,
    cols: usize,
    /// Row-major, 4 entries per byte, rows padded to byte boundaries... no:
    /// entries are packed contiguously across the whole matrix.
    data: Vec<u8>,
}

impl PackedTernary {
    /// Packs a ternary tensor (`values ∈ {−1, 0, 1}`, shape `[rows, cols]`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or contains non-ternary values.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.shape().rank(), 2, "PackedTernary expects a 2-D tensor");
        let (rows, cols) = (t.dims()[0], t.dims()[1]);
        let n = rows * cols;
        let mut data = vec![0u8; n.div_ceil(4)];
        for (i, &v) in t.data().iter().enumerate() {
            let code = if v == 0.0 {
                ENC_ZERO
            } else if v == 1.0 {
                ENC_PLUS
            } else if v == -1.0 {
                ENC_MINUS
            } else {
                panic!("non-ternary value {v} at index {i}");
            };
            data[i / 4] |= code << (2 * (i % 4));
        }
        Self { rows, cols, data }
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packed storage in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decodes entry `(r, c)` back to `−1.0 | 0.0 | 1.0`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let i = r * self.cols + c;
        match (self.data[i / 4] >> (2 * (i % 4))) & 0b11 {
            ENC_PLUS => 1.0,
            ENC_MINUS => -1.0,
            _ => 0.0,
        }
    }

    /// Unpacks to a dense tensor (for verification).
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(&[r, c], self.get(r, c));
            }
        }
        out
    }

    /// Computes `y = W·x` using only additions/subtractions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let base = r * self.cols;
            let mut acc = 0.0f32;
            for c in 0..self.cols {
                let i = base + c;
                match (self.data[i / 4] >> (2 * (i % 4))) & 0b11 {
                    ENC_PLUS => acc += x[c],
                    ENC_MINUS => acc -= x[c],
                    _ => {}
                }
            }
            y[r] = acc;
        }
        y
    }

    /// The exact number of additions/subtractions [`Self::matvec`] executes:
    /// one per non-zero entry.
    pub fn add_count(&self) -> usize {
        let n = self.rows * self.cols;
        (0..n).filter(|&i| (self.data[i / 4] >> (2 * (i % 4))) & 0b11 != ENC_ZERO).count()
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        let n = self.rows * self.cols;
        if n == 0 {
            return 0.0;
        }
        1.0 - self.add_count() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary::ternary_values;
    use rand::SeedableRng;
    use thnt_tensor::matvec as dense_matvec;

    fn random_ternary(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let w = thnt_tensor::gaussian(&[rows, cols], 0.0, 1.0, &mut rng);
        ternary_values(&w).values
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let t = random_ternary(13, 17, 0);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.to_tensor().data(), t.data());
    }

    #[test]
    fn packs_at_2_bits_per_entry() {
        let t = random_ternary(64, 64, 1);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.packed_bytes(), 64 * 64 / 4);
        // 16x smaller than f32 storage.
        assert_eq!(packed.packed_bytes() * 16, 64 * 64 * 4);
    }

    #[test]
    fn addonly_matvec_matches_dense() {
        let t = random_ternary(9, 21, 2);
        let packed = PackedTernary::from_tensor(&t);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[21], 0.0, 1.0, &mut rng);
        let want = dense_matvec(&t, &x);
        let got = packed.matvec(x.data());
        thnt_tensor::assert_close(&got, want.data(), 1e-5, 1e-5);
    }

    #[test]
    fn add_count_equals_nonzeros() {
        let t = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 0.0, 1.0], &[2, 3]);
        let packed = PackedTernary::from_tensor(&t);
        assert_eq!(packed.add_count(), 3);
        assert!((packed.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn measured_adds_cross_check_cost_model() {
        // The analytic model counts a strassenified dense layer's W_b stage
        // as r·in additions (dense upper bound); the packed execution count
        // must never exceed it.
        use crate::cost::LayerCost;
        let (r, input) = (24usize, 48usize);
        let wb = random_ternary(r, input, 4);
        let packed = PackedTernary::from_tensor(&wb);
        let analytic =
            LayerCost::Dense { in_dim: input as u64, out_dim: 1 }.strassen_ops(r as f64).adds;
        assert!(
            (packed.add_count() as u64) <= analytic,
            "measured {} > analytic bound {analytic}",
            packed.add_count()
        );
        // And it should be a substantial fraction (TWN keeps ~2/3 nonzero).
        assert!(packed.add_count() as u64 * 2 > analytic / 2);
    }

    #[test]
    #[should_panic(expected = "non-ternary")]
    fn rejects_non_ternary_values() {
        PackedTernary::from_tensor(&Tensor::from_vec(vec![0.5], &[1, 1]));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let packed = PackedTernary::from_tensor(&Tensor::zeros(&[0, 5]));
        assert_eq!(packed.add_count(), 0);
        assert_eq!(packed.matvec(&[1.0; 5]).len(), 0);
    }
}
