//! A heterogeneous stack of strassenified and plain layers.
//!
//! Strassenified models interleave SPN layers with batch-norm and
//! activations. [`StStack`] is a `Sequential`-like container that keeps the
//! concrete layer types visible so the three-phase schedule
//! ([`Strassenified`]) can be driven across the whole model — and so a
//! frozen stack can be compiled layer-by-layer into the packed add-only
//! deployment engine (`thnt_core::engine`), which matches on the same
//! [`StLayer`] variants.

use thnt_nn::{BatchNorm2d, GlobalAvgPoolLayer, Layer, Param, Relu};
use thnt_tensor::Tensor;

use crate::conv::{StrassenConv2d, StrassenDepthwise2d};
use crate::dense::StrassenDense;
use crate::schedule::{QuantMode, Strassenified};

/// One layer of a strassenified model.
#[derive(Debug)]
pub enum StLayer {
    /// Strassenified standard convolution.
    Conv(StrassenConv2d),
    /// Strassenified depthwise convolution.
    Depthwise(StrassenDepthwise2d),
    /// Strassenified dense layer.
    Dense(StrassenDense),
    /// Batch normalisation (kept full-precision; folded at accounting time).
    BatchNorm(BatchNorm2d),
    /// ReLU activation.
    Relu(Relu),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPoolLayer),
}

impl StLayer {
    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            StLayer::Conv(l) => l,
            StLayer::Depthwise(l) => l,
            StLayer::Dense(l) => l,
            StLayer::BatchNorm(l) => l,
            StLayer::Relu(l) => l,
            StLayer::GlobalAvgPool(l) => l,
        }
    }

    /// The layer as an immutable [`Layer`] (for read-only traversals).
    pub fn as_layer(&self) -> &dyn Layer {
        match self {
            StLayer::Conv(l) => l,
            StLayer::Depthwise(l) => l,
            StLayer::Dense(l) => l,
            StLayer::BatchNorm(l) => l,
            StLayer::Relu(l) => l,
            StLayer::GlobalAvgPool(l) => l,
        }
    }

    /// The layer as a phase-controllable strassenified layer, if it is one.
    pub fn as_strassenified(&mut self) -> Option<&mut dyn Strassenified> {
        match self {
            StLayer::Conv(l) => Some(l),
            StLayer::Depthwise(l) => Some(l),
            StLayer::Dense(l) => Some(l),
            _ => None,
        }
    }
}

/// An ordered stack of [`StLayer`]s with whole-model phase control.
#[derive(Debug, Default)]
pub struct StStack {
    layers: Vec<StLayer>,
    act_bits: Option<u8>,
}

impl StStack {
    /// Creates a stack from layers.
    pub fn new(layers: Vec<StLayer>) -> Self {
        Self { layers, act_bits: None }
    }

    /// Fake-quantizes every inter-layer activation to `bits` at inference
    /// (`None` disables). Training-mode forwards are never quantized.
    pub fn set_activation_bits(&mut self, bits: Option<u8>) {
        self.act_bits = bits;
    }

    /// Current inter-layer activation quantization setting.
    pub fn activation_bits(&self) -> Option<u8> {
        self.act_bits
    }

    /// Sets the TWN threshold factor on every strassenified layer (the §6
    /// "constrain the number of additions" knob).
    pub fn set_ternary_threshold(&mut self, factor: f32) {
        for l in &mut self.layers {
            match l {
                StLayer::Conv(c) => c.set_ternary_threshold(factor),
                StLayer::Depthwise(d) => d.set_ternary_threshold(factor),
                StLayer::Dense(f) => f.set_ternary_threshold(factor),
                _ => {}
            }
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: StLayer) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrows the layers.
    pub fn layers(&self) -> &[StLayer] {
        &self.layers
    }

    /// Mutably borrows the layers.
    pub fn layers_mut(&mut self) -> &mut [StLayer] {
        &mut self.layers
    }

    /// Forward through the whole stack.
    ///
    /// With activation quantization enabled, tensors are snapped to the
    /// fixed-point grid at every layer boundary **except** immediately before
    /// a batch-norm layer: at deployment BN folds into the preceding
    /// convolution, so the pre-BN tensor never exists as a stored buffer
    /// (and its per-channel scale disparity would otherwise dominate the
    /// per-tensor range).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        let n = self.layers.len();
        for i in 0..n {
            cur = self.layers[i].as_layer_mut().forward(&cur, train);
            if !train {
                if let Some(bits) = self.act_bits {
                    let feeds_bn = matches!(self.layers.get(i + 1), Some(StLayer::BatchNorm(_)));
                    if !feeds_bn {
                        cur = thnt_tensor::fake_quantize_optimal(&cur, bits);
                    }
                }
            }
        }
        cur
    }

    /// Backward through the whole stack, returning the input gradient.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.as_layer_mut().backward(&cur);
        }
        cur
    }

    /// All parameters in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.as_layer_mut().params_mut()).collect()
    }

    /// Immutable view of all parameters, mirroring [`Self::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.as_layer().params()).collect()
    }
}

impl Strassenified for StStack {
    fn mode(&self) -> QuantMode {
        // The stack's mode is the mode of its first strassenified layer.
        for l in &self.layers {
            match l {
                StLayer::Conv(c) => return c.mode(),
                StLayer::Depthwise(d) => return d.mode(),
                StLayer::Dense(f) => return f.mode(),
                _ => continue,
            }
        }
        QuantMode::FullPrecision
    }

    fn activate_quantization(&mut self) {
        for l in &mut self.layers {
            if let Some(s) = l.as_strassenified() {
                s.activate_quantization();
            }
        }
    }

    fn freeze_ternary(&mut self) {
        for l in &mut self.layers {
            if let Some(s) = l.as_strassenified() {
                s.freeze_ternary();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use thnt_tensor::Conv2dSpec;

    fn stack() -> StStack {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let spec = Conv2dSpec::same(8, 8, 3, 3, 1, 1);
        StStack::new(vec![
            StLayer::Conv(StrassenConv2d::new(1, 4, 3, spec, &mut rng)),
            StLayer::BatchNorm(BatchNorm2d::new(4)),
            StLayer::Relu(Relu::new()),
            StLayer::GlobalAvgPool(GlobalAvgPoolLayer::new()),
            StLayer::Dense(StrassenDense::new(4, 3, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut s = stack();
        let x = Tensor::zeros(&[2, 1, 8, 8]);
        let y = s.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3]);
        let gx = s.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn phase_control_spans_all_strassen_layers() {
        let mut s = stack();
        assert_eq!(s.mode(), QuantMode::FullPrecision);
        s.activate_quantization();
        assert_eq!(s.mode(), QuantMode::Quantized);
        s.freeze_ternary();
        assert_eq!(s.mode(), QuantMode::Frozen);
    }
}
