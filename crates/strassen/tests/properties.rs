//! Property-based tests for StrassenNets invariants.

use proptest::prelude::*;
use thnt_strassen::{exact_strassen_2x2, spn_matmul_2x2, ternarize, PackedTernary};
use thnt_tensor::{matmul, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_strassen_equals_naive_product(
        a in proptest::collection::vec(-100.0f32..100.0, 4),
        b in proptest::collection::vec(-100.0f32..100.0, 4),
    ) {
        let spn = exact_strassen_2x2();
        let at = Tensor::from_vec(a, &[2, 2]);
        let bt = Tensor::from_vec(b, &[2, 2]);
        let got = spn_matmul_2x2(&spn, &at, &bt);
        let want = matmul(&at, &bt);
        for (x, y) in got.data().iter().zip(want.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-4 * y.abs(), "{x} vs {y}");
        }
    }

    #[test]
    fn ternarize_scale_positive_for_any_input(
        w in proptest::collection::vec(-10.0f32..10.0, 1..200),
        factor in 0.1f32..2.0,
    ) {
        let n = w.len();
        let t = ternarize(&Tensor::from_vec(w, &[n]), factor);
        prop_assert!(t.scale > 0.0);
    }

    #[test]
    fn ternarize_invariants(
        w in proptest::collection::vec(-10.0f32..10.0, 4..256),
        factor in 0.2f32..1.5,
    ) {
        let n = w.len();
        let t = ternarize(&Tensor::from_vec(w.clone(), &[n]), factor);
        // Values are exactly ternary.
        prop_assert!(t.values.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        // Scale is positive.
        prop_assert!(t.scale > 0.0);
        // Sign preservation: nonzero ternary entries match the sign of w.
        for (&orig, &tern) in w.iter().zip(t.values.data()) {
            if tern != 0.0 {
                prop_assert_eq!(orig.signum(), tern, "sign flip at {}", orig);
            }
        }
        // Reconstruction never beats the trivial bound ||w||.
        let rec = t.reconstruct();
        let err: f32 = w.iter().zip(rec.data()).map(|(a, b)| (a - b).powi(2)).sum();
        let norm: f32 = w.iter().map(|a| a * a).sum();
        prop_assert!(err <= norm + 1e-3, "err {err} > ||w||^2 {norm}");
    }

    #[test]
    fn ternarize_threshold_monotone_in_sparsity(
        w in proptest::collection::vec(-5.0f32..5.0, 16..128),
    ) {
        let n = w.len();
        let t_loose = ternarize(&Tensor::from_vec(w.clone(), &[n]), 0.3);
        let t_tight = ternarize(&Tensor::from_vec(w, &[n]), 1.2);
        prop_assert!(t_tight.nonzeros() <= t_loose.nonzeros());
    }

    #[test]
    fn packed_ternary_roundtrip_and_matvec(
        seed in 0u64..500,
        rows in 1usize..12,
        cols in 1usize..12,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f32> = (0..rows * cols)
            .map(|_| [-1.0f32, 0.0, 1.0][rng.gen_range(0..3usize)])
            .collect();
        let t = Tensor::from_vec(vals, &[rows, cols]);
        let packed = PackedTernary::from_tensor(&t);
        // Round trip.
        let unpacked = packed.to_tensor();
        prop_assert_eq!(unpacked.data(), t.data());
        // Add-only matvec equals dense matvec.
        let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let got = packed.matvec(&x);
        let want = thnt_tensor::matvec(&t, &Tensor::from_vec(x, &[cols]));
        for (g, w) in got.iter().zip(want.data()) {
            prop_assert!((g - w).abs() < 1e-4);
        }
        // Storage really is 2 bits per entry.
        prop_assert_eq!(packed.packed_bytes(), (rows * cols).div_ceil(4));
    }
}
