//! Property-based tests for StrassenNets invariants.

use proptest::prelude::*;
use thnt_strassen::{exact_strassen_2x2, spn_matmul_2x2, ternarize, PackedTernary};
use thnt_tensor::{matmul, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_strassen_equals_naive_product(
        a in proptest::collection::vec(-100.0f32..100.0, 4),
        b in proptest::collection::vec(-100.0f32..100.0, 4),
    ) {
        let spn = exact_strassen_2x2();
        let at = Tensor::from_vec(a, &[2, 2]);
        let bt = Tensor::from_vec(b, &[2, 2]);
        let got = spn_matmul_2x2(&spn, &at, &bt);
        let want = matmul(&at, &bt);
        for (x, y) in got.data().iter().zip(want.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + 1e-4 * y.abs(), "{x} vs {y}");
        }
    }

    #[test]
    fn ternarize_scale_positive_for_any_input(
        w in proptest::collection::vec(-10.0f32..10.0, 1..200),
        factor in 0.1f32..2.0,
    ) {
        let n = w.len();
        let t = ternarize(&Tensor::from_vec(w, &[n]), factor);
        prop_assert!(t.scale > 0.0);
    }

    #[test]
    fn ternarize_invariants(
        w in proptest::collection::vec(-10.0f32..10.0, 4..256),
        factor in 0.2f32..1.5,
    ) {
        let n = w.len();
        let t = ternarize(&Tensor::from_vec(w.clone(), &[n]), factor);
        // Values are exactly ternary.
        prop_assert!(t.values.data().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        // Scale is positive.
        prop_assert!(t.scale > 0.0);
        // Sign preservation: nonzero ternary entries match the sign of w.
        for (&orig, &tern) in w.iter().zip(t.values.data()) {
            if tern != 0.0 {
                prop_assert_eq!(orig.signum(), tern, "sign flip at {}", orig);
            }
        }
        // Reconstruction never beats the trivial bound ||w||.
        let rec = t.reconstruct();
        let err: f32 = w.iter().zip(rec.data()).map(|(a, b)| (a - b).powi(2)).sum();
        let norm: f32 = w.iter().map(|a| a * a).sum();
        prop_assert!(err <= norm + 1e-3, "err {err} > ||w||^2 {norm}");
    }

    #[test]
    fn ternarize_threshold_monotone_in_sparsity(
        w in proptest::collection::vec(-5.0f32..5.0, 16..128),
    ) {
        let n = w.len();
        let t_loose = ternarize(&Tensor::from_vec(w.clone(), &[n]), 0.3);
        let t_tight = ternarize(&Tensor::from_vec(w, &[n]), 1.2);
        prop_assert!(t_tight.nonzeros() <= t_loose.nonzeros());
    }

    #[test]
    fn packed_ternary_roundtrip_and_matvec(
        seed in 0u64..500,
        rows in 1usize..12,
        cols in 1usize..150,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f32> = (0..rows * cols)
            .map(|_| [-1.0f32, 0.0, 1.0][rng.gen_range(0..3usize)])
            .collect();
        let t = Tensor::from_vec(vals.clone(), &[rows, cols]);
        let packed = PackedTernary::from_tensor(&t);
        // Round trip on the bitplane layout.
        let unpacked = packed.to_tensor();
        prop_assert_eq!(unpacked.data(), t.data());
        // Add-only matvec equals dense matvec, and the word-level kernel
        // agrees with the per-entry reference decoder.
        let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let got = packed.matvec(&x);
        let per_entry = packed.matvec_per_entry(&x);
        let want = thnt_tensor::matvec(&t, &Tensor::from_vec(x, &[cols]));
        for ((g, p), w) in got.iter().zip(&per_entry).zip(want.data()) {
            prop_assert!((g - w).abs() < 1e-3 + 1e-4 * w.abs(), "{g} vs {w}");
            prop_assert!((g - p).abs() < 1e-4 + 1e-5 * p.abs(), "word {g} vs per-entry {p}");
        }
        // Storage is two u64 bitplanes with rows padded to whole words.
        prop_assert_eq!(packed.packed_bytes(), rows * cols.div_ceil(64) * 16);
        // Popcount add_count equals the nonzero count.
        prop_assert_eq!(packed.add_count(), vals.iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn packed_matmul_matches_dense_for_odd_shapes(
        seed in 0u64..300,
        rows in 1usize..20,
        cols in 1usize..140,
        n in 1usize..7,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vals: Vec<f32> = (0..rows * cols)
            .map(|_| [-1.0f32, 0.0, 1.0][rng.gen_range(0..3usize)])
            .collect();
        let t = Tensor::from_vec(vals, &[rows, cols]);
        let packed = PackedTernary::from_tensor(&t);
        let x = Tensor::from_vec(
            (0..n * cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect(),
            &[n, cols],
        );
        // Batched activations: Y = X · Wᵀ.
        let got = packed.matmul(&x);
        let want = thnt_tensor::matmul_nt(&x, &t);
        for (g, w) in got.data().iter().zip(want.data()) {
            prop_assert!((g - w).abs() < 1e-3 + 1e-4 * w.abs(), "{g} vs {w}");
        }
        // Column-matrix form: Y = W · M.
        let m = Tensor::from_vec(
            (0..cols * n).map(|_| rng.gen_range(-3.0f32..3.0)).collect(),
            &[cols, n],
        );
        let got = packed.matmul_rhs(&m);
        let want = thnt_tensor::matmul(&t, &m);
        for (g, w) in got.data().iter().zip(want.data()) {
            prop_assert!((g - w).abs() < 1e-3 + 1e-4 * w.abs(), "{g} vs {w}");
        }
    }

    #[test]
    fn packed_degenerate_shapes_are_consistent(
        seed in 0u64..100,
        dim in 1usize..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // 1×n and n×1 extremes, plus empty matrices.
        for (rows, cols) in [(1usize, dim), (dim, 1usize), (0, dim), (dim, 0)] {
            let vals: Vec<f32> = (0..rows * cols)
                .map(|_| [-1.0f32, 0.0, 1.0][rng.gen_range(0..3usize)])
                .collect();
            let t = Tensor::from_vec(vals, &[rows, cols]);
            let packed = PackedTernary::from_tensor(&t);
            prop_assert_eq!(packed.to_tensor().data(), t.data());
            let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let got = packed.matvec(&x);
            prop_assert_eq!(got.len(), rows);
            if rows > 0 && cols > 0 {
                let want = thnt_tensor::matvec(&t, &Tensor::from_vec(x, &[cols]));
                for (g, w) in got.iter().zip(want.data()) {
                    prop_assert!((g - w).abs() < 1e-3 + 1e-4 * w.abs());
                }
            } else {
                prop_assert!(got.iter().all(|&v| v == 0.0));
            }
        }
    }
}
