//! Property tests keeping the kernel backends provably interchangeable:
//! every SIMD backend the host supports is pitted against the scalar
//! reference on randomized shapes that straddle word and lane boundaries.
//!
//! Exactness contract (see `thnt_strassen::packed::kernel`):
//!
//! * `matvec` / `matmul` — the SIMD backends fold 8 (AVX2) or 4 (NEON)
//!   partial sums per row where the scalar kernel adds strictly
//!   left-to-right. Floating-point addition does not reassociate, so the
//!   backends agree only to rounding; the tolerance is `1e-5` scaled by the
//!   row's ℓ₁ mass (the bound on any partial sum, hence on the rounding
//!   error each reordered add can introduce). Exact equality would be a
//!   wrong spec — it only holds when every row sum is exact in `f32`.
//! * `matmul_rhs` — the SIMD version vectorises an *element-wise* slice
//!   add, which reorders nothing, so backends must agree **bitwise**.
//! * within one backend, a sample's result must not depend on the batch it
//!   arrived in (the serving layer's batching-invariance guarantee).
//!
//! CI runs this suite once per backend by exporting `THNT_KERNEL`
//! (`scalar` plus whatever the runner supports); the explicit-dispatch
//! tests below additionally cover every available backend in a single
//! process, whatever the environment says.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thnt_strassen::{BitSliced, Kernel, KernelDispatch, PackedTernary};
use thnt_tensor::Tensor;

/// Column widths that straddle the u64 word boundary and the 8/4-lane SIMD
/// group boundaries; index 6 selects an arbitrary width instead.
const COL_CHOICES: [usize; 6] = [63, 64, 65, 127, 128, 129];

fn pick_cols(sel: usize, raw: usize) -> usize {
    COL_CHOICES.get(sel).copied().unwrap_or(raw)
}

fn random_ternary(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1i32..=1) as f32).collect();
    Tensor::from_vec(data, &[rows, cols])
}

fn random_activations(len: usize, rng: &mut SmallRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn simd_backends() -> Vec<KernelDispatch> {
    Kernel::available()
        .into_iter()
        .filter(|k| *k != Kernel::Scalar)
        .map(|k| KernelDispatch::new(k).unwrap())
        .collect()
}

fn scalar() -> KernelDispatch {
    KernelDispatch::new(Kernel::Scalar).unwrap()
}

/// `1e-5` scaled by the ℓ₁ mass of the inputs a row sum touches — the
/// natural bound for reassociation-only divergence.
fn row_tol(x: &[f32]) -> f32 {
    1e-5 * (1.0 + x.iter().map(|v| v.abs()).sum::<f32>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported SIMD backend's matvec agrees with the scalar
    /// reference within reassociation rounding on shapes spanning word
    /// boundaries.
    #[test]
    fn simd_matvec_matches_scalar(
        seed in 0u64..1_000_000,
        rows in 1usize..40,
        colsel in 0usize..7,
        rawcols in 1usize..200,
    ) {
        let cols = pick_cols(colsel, rawcols);
        let mut rng = SmallRng::seed_from_u64(seed);
        let packed = PackedTernary::from_tensor(&random_ternary(rows, cols, &mut rng));
        let x = random_activations(cols, &mut rng);
        let mut want = vec![0.0f32; rows];
        packed.matvec_into_with(&scalar(), &x, &mut want);
        let tol = row_tol(&x);
        for d in simd_backends() {
            let mut got = vec![0.0f32; rows];
            packed.matvec_into_with(&d, &x, &mut got);
            for (r, (a, b)) in want.iter().zip(&got).enumerate() {
                prop_assert!(
                    (a - b).abs() <= tol,
                    "kernel {} {rows}x{cols} row {r}: scalar {a} vs simd {b} (tol {tol})",
                    d.kernel()
                );
            }
        }
    }

    /// Batched matmul: SIMD agrees with scalar within rounding, and within
    /// each backend every sample's row is bitwise independent of its batch.
    #[test]
    fn simd_matmul_matches_scalar_and_batching_is_invariant(
        seed in 0u64..1_000_000,
        rows in 1usize..24,
        colsel in 0usize..7,
        rawcols in 1usize..200,
        n in 1usize..7,
    ) {
        let cols = pick_cols(colsel, rawcols);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5);
        let packed = PackedTernary::from_tensor(&random_ternary(rows, cols, &mut rng));
        let x = random_activations(cols * n, &mut rng);
        let xt = Tensor::from_vec(x.clone(), &[n, cols]);
        let want = packed.matmul_with(&scalar(), &xt);
        for d in simd_backends().into_iter().chain([scalar()]) {
            let got = packed.matmul_with(&d, &xt);
            for s in 0..n {
                let xrow = &x[s * cols..(s + 1) * cols];
                let tol = row_tol(xrow);
                let grow = &got.data()[s * rows..(s + 1) * rows];
                let wrow = &want.data()[s * rows..(s + 1) * rows];
                for (r, (a, b)) in wrow.iter().zip(grow).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= tol,
                        "kernel {} sample {s} row {r}: {a} vs {b}",
                        d.kernel()
                    );
                }
                // Batching invariance is *bitwise* within one backend.
                let mut alone = vec![0.0f32; rows];
                packed.matvec_into_with(&d, xrow, &mut alone);
                prop_assert_eq!(
                    &alone[..],
                    grow,
                    "kernel {} sample {s}: batched row != same sample alone",
                    d.kernel()
                );
            }
        }
    }

    /// `matmul_rhs` vectorises an element-wise slice add — no
    /// reassociation — so every backend must agree with scalar bitwise.
    #[test]
    fn simd_matmul_rhs_is_bitwise_scalar(
        seed in 0u64..1_000_000,
        rows in 1usize..16,
        colsel in 0usize..7,
        rawcols in 1usize..200,
        p in 1usize..30,
    ) {
        let cols = pick_cols(colsel, rawcols);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5A5A);
        let packed = PackedTernary::from_tensor(&random_ternary(rows, cols, &mut rng));
        let mt = Tensor::from_vec(random_activations(cols * p, &mut rng), &[cols, p]);
        let mut want = vec![0.0f32; rows * p];
        packed.matmul_rhs_into_with(&scalar(), &mt, &mut want);
        for d in simd_backends() {
            let mut got = vec![0.0f32; rows * p];
            packed.matmul_rhs_into_with(&d, &mt, &mut got);
            prop_assert_eq!(&want, &got, "kernel {} diverged bitwise", d.kernel());
        }
    }

    /// Bit-sliced popcount matvec: integer arithmetic reassociates freely,
    /// so every backend — including the default dispatch route — must agree
    /// with an i32 reference computed straight from the signs **exactly**,
    /// on shapes straddling the 4- and 8-word SIMD block boundaries.
    #[test]
    fn bitsliced_matvec_is_exact_on_every_backend(
        seed in 0u64..1_000_000,
        rows in 1usize..24,
        colsel in 0usize..7,
        rawcols in 1usize..600,
        n in 1usize..4,
    ) {
        let cols = pick_cols(colsel, rawcols);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1D0D);
        let signs: Vec<i8> = (0..rows * cols).map(|_| rng.gen_range(-1i8..=1)).collect();
        let t = Tensor::from_vec(signs.iter().map(|&s| s as f32).collect(), &[rows, cols]);
        let packed = PackedTernary::from_tensor(&t);
        let x = random_activations(cols * n, &mut rng);
        let sliced = BitSliced::quantize(&x, cols, 1.0 / 64.0);
        // Integer reference from the reconstructed int8 levels.
        let mut want = vec![0i32; n * rows];
        for s in 0..n {
            for r in 0..rows {
                want[s * rows + r] = (0..cols)
                    .map(|c| signs[r * cols + c] as i32 * sliced.get(s, c) as i32)
                    .sum();
            }
        }
        for d in simd_backends().into_iter().chain([scalar()]) {
            let mut got = vec![0i32; n * rows];
            packed.bitsliced_matmul_into_with(&d, &sliced, &mut got);
            prop_assert_eq!(&want, &got, "kernel {} diverged", d.kernel());
        }
        // The default dispatch (THNT_KERNEL override or detection) too.
        let mut got = vec![0i32; rows];
        packed.bitsliced_matvec_into(
            &BitSliced::quantize(&x[..cols], cols, 1.0 / 64.0),
            &mut got,
        );
        prop_assert_eq!(&want[..rows], &got[..]);
    }

    /// The element-wise slice family (`slice_add` / `slice_sub` /
    /// `slice_axpy`) reorders nothing and never contracts to FMA, so every
    /// backend must match scalar **bitwise** on lengths straddling the
    /// 8/4-lane boundaries.
    #[test]
    fn slice_ops_are_bitwise_scalar(
        seed in 0u64..1_000_000,
        len in 1usize..70,
        a in -3.0f32..3.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE1E7);
        let src = random_activations(len, &mut rng);
        let dst0 = random_activations(len, &mut rng);
        let sc = scalar();
        for d in simd_backends() {
            for (name, op) in [
                ("add", 0usize), ("sub", 1), ("axpy", 2),
            ] {
                let mut want = dst0.clone();
                let mut got = dst0.clone();
                match op {
                    0 => { sc.slice_add(&mut want, &src); d.slice_add(&mut got, &src); }
                    1 => { sc.slice_sub(&mut want, &src); d.slice_sub(&mut got, &src); }
                    _ => { sc.slice_axpy(&mut want, a, &src); d.slice_axpy(&mut got, a, &src); }
                }
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&wb, &gb, "kernel {} slice_{} diverged bitwise", d.kernel(), name);
            }
        }
    }

    /// The default dispatch route (`THNT_KERNEL` override or detection —
    /// whatever this process resolved) stays within rounding of the scalar
    /// reference. CI runs the suite once per backend through this test.
    #[test]
    fn default_dispatch_matches_scalar(
        seed in 0u64..1_000_000,
        rows in 1usize..24,
        colsel in 0usize..7,
        rawcols in 1usize..200,
    ) {
        let cols = pick_cols(colsel, rawcols);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC3C3);
        let packed = PackedTernary::from_tensor(&random_ternary(rows, cols, &mut rng));
        let x = random_activations(cols, &mut rng);
        let got = packed.matvec(&x);
        let mut want = vec![0.0f32; rows];
        packed.matvec_into_with(&scalar(), &x, &mut want);
        let tol = row_tol(&x);
        for (a, b) in want.iter().zip(&got) {
            prop_assert!((a - b).abs() <= tol, "default dispatch diverged: {a} vs {b}");
        }
    }
}
