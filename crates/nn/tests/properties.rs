//! Property-based tests for loss functions and optimizers.

use proptest::prelude::*;
use thnt_nn::{accuracy, multiclass_hinge, softmax, softmax_cross_entropy};
use thnt_tensor::Tensor;

fn logits_strategy(n: usize, c: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, n * c).prop_map(move |v| Tensor::from_vec(v, &[n, c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_distribution(logits in logits_strategy(4, 5)) {
        let p = softmax(&logits);
        for s in 0..4 {
            let row = p.row(s);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_ordering(logits in logits_strategy(1, 6)) {
        let p = softmax(&logits);
        for i in 0..6 {
            for j in 0..6 {
                if logits.data()[i] > logits.data()[j] {
                    prop_assert!(p.data()[i] >= p.data()[j]);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grads_sum_to_zero(
        logits in logits_strategy(3, 4),
        labels in proptest::collection::vec(0usize..4, 3),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        // Per-sample gradient rows sum to zero (softmax minus one-hot).
        for s in 0..3 {
            let sum: f32 = grad.row(s).iter().sum();
            prop_assert!(sum.abs() < 1e-5, "row {s} sums to {sum}");
        }
    }

    #[test]
    fn hinge_loss_nonnegative_and_zero_grad_iff_satisfied(
        logits in logits_strategy(3, 4),
        labels in proptest::collection::vec(0usize..4, 3),
    ) {
        let (loss, grad) = multiclass_hinge(&logits, &labels, 1.0);
        prop_assert!(loss >= 0.0);
        if loss == 0.0 {
            prop_assert!(grad.data().iter().all(|&g| g == 0.0));
        } else {
            prop_assert!(grad.data().iter().any(|&g| g != 0.0));
        }
    }

    #[test]
    fn accuracy_bounded_and_exact_for_onehot(
        labels in proptest::collection::vec(0usize..5, 8),
    ) {
        // Build logits that argmax exactly at the label.
        let mut logits = Tensor::zeros(&[8, 5]);
        for (s, &y) in labels.iter().enumerate() {
            logits.set(&[s, y], 10.0);
        }
        prop_assert_eq!(accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn adam_always_reduces_simple_quadratic(
        x0 in -10.0f32..10.0,
        lr in 0.01f32..0.5,
    ) {
        use thnt_nn::{Adam, Optimizer, Param};
        prop_assume!(x0.abs() > 0.5);
        let mut p = Param::new("x", Tensor::from_vec(vec![x0], &[1]));
        let mut opt = Adam::new(lr);
        for _ in 0..300 {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            let mut list = [&mut p];
            opt.step(&mut list);
        }
        prop_assert!(p.value.data()[0].abs() < x0.abs(), "{} !< {}", p.value.data()[0], x0);
    }
}
