//! Optimizers and learning-rate schedules.

use thnt_tensor::Tensor;

use crate::param::Param;

/// An optimisation algorithm stepping a fixed, ordered parameter list.
///
/// State (momenta) is indexed by parameter position, so callers must pass the
/// parameters in the same order every step — [`crate::Model::params_mut`]
/// guarantees this.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated
    /// gradients. Frozen (`trainable == false`) parameters are skipped but
    /// still consume a state slot.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Sets the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter list changed size");
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            if !p.trainable {
                continue;
            }
            for ((vv, &g), w) in v.data_mut().iter_mut().zip(p.grad.data()).zip(p.value.data_mut())
            {
                *vv = self.momentum * *vv + g;
                *w -= self.lr * *vv;
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba), the optimizer the paper uses for every model.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            if !p.trainable {
                continue;
            }
            for (((mm, vv), &g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data())
                .zip(p.value.data_mut())
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mm / b1t;
                let v_hat = *vv / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// The paper's staged decay: "initial learning rate of 0.001 and
/// progressively smaller learning rates after every 45 epochs".
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Learning rate during the first stage.
    pub initial: f32,
    /// Multiplicative factor applied at each stage boundary.
    pub factor: f32,
    /// Stage length in epochs.
    pub every: usize,
}

impl StepDecay {
    /// The paper's schedule for a given initial LR: ×0.2 every 45 epochs.
    pub fn paper(initial: f32) -> Self {
        Self { initial, factor: 0.2, every: 45 }
    }

    /// Learning rate for 0-based `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.initial * self.factor.powi((epoch / self.every.max(1)) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new("x", Tensor::from_vec(vec![x0], &[1]))
    }

    /// Minimise f(x) = x² with the given optimizer; returns final |x|.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quadratic_param(5.0);
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            let mut list = [&mut p];
            opt.step(&mut list);
        }
        p.value.data()[0].abs()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        assert!(minimise(&mut Sgd::new(0.1, 0.0), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_still_converges() {
        assert!(minimise(&mut Sgd::new(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn adam_minimises_quadratic() {
        assert!(minimise(&mut Adam::new(0.3), 200) < 1e-2);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut p = quadratic_param(3.0);
        p.freeze();
        p.grad.data_mut()[0] = 100.0;
        let mut adam = Adam::new(0.1);
        let mut list = [&mut p];
        adam.step(&mut list);
        assert_eq!(p.value.data()[0], 3.0);
    }

    #[test]
    fn step_decay_matches_paper_schedule() {
        let sched = StepDecay::paper(0.001);
        assert_eq!(sched.lr_at(0), 0.001);
        assert_eq!(sched.lr_at(44), 0.001);
        assert!((sched.lr_at(45) - 0.0002).abs() < 1e-9);
        assert!((sched.lr_at(90) - 0.00004).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "changed size")]
    fn optimizer_detects_param_list_change() {
        let mut a = quadratic_param(1.0);
        let mut b = quadratic_param(1.0);
        let mut adam = Adam::new(0.1);
        {
            let mut list = [&mut a];
            adam.step(&mut list);
        }
        let mut list = [&mut a, &mut b];
        adam.step(&mut list);
    }
}
