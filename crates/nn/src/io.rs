//! Model checkpointing: a compact binary format for parameter sets.
//!
//! The format is deliberately simple (little-endian, no compression):
//!
//! ```text
//! magic "THNT" | version u32 | param_count u32
//! per param: name_len u16 | name utf-8 | trainable u8 | rank u8
//!            | dims u32 × rank | data f32 × numel
//! ```
//!
//! Loading validates names, shapes and order, so a checkpoint can only be
//! restored into an identically-constructed model — the failure mode is an
//! error, never silent weight corruption.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thnt_tensor::Tensor;

use crate::model::Model;

const MAGIC: &[u8; 4] = b"THNT";
const VERSION: u32 = 1;

/// Serializes `model`'s parameters to `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_model<W: Write>(model: &mut dyn Model, mut writer: W) -> io::Result<()> {
    let params = model.params_mut();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in &params {
        let name = p.name.as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(p.trainable as u8);
        let dims = p.value.dims();
        buf.put_u8(dims.len() as u8);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    writer.write_all(&buf)
}

/// Restores parameters saved by [`save_model`] into `model`.
///
/// # Errors
///
/// Returns `InvalidData` if the header, parameter names, shapes or count do
/// not exactly match the model, or any I/O error from the reader.
pub fn load_model<R: Read>(model: &mut dyn Model, mut reader: R) -> io::Result<()> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(fail("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(fail("unsupported version"));
    }
    let count = buf.get_u32_le() as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(fail(&format!(
            "parameter count mismatch: checkpoint has {count}, model has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        if buf.remaining() < 2 {
            return Err(fail("truncated checkpoint"));
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(fail("truncated name"));
        }
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes).map_err(|_| fail("non-utf8 name"))?;
        if name != p.name {
            return Err(fail(&format!("parameter name mismatch: {name} vs {}", p.name)));
        }
        if buf.remaining() < 2 {
            return Err(fail("truncated header"));
        }
        let trainable = buf.get_u8() != 0;
        let rank = buf.get_u8() as usize;
        if buf.remaining() < 4 * rank {
            return Err(fail("truncated dims"));
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        if dims != p.value.dims() {
            return Err(fail(&format!(
                "shape mismatch for {}: checkpoint {dims:?}, model {:?}",
                p.name,
                p.value.dims()
            )));
        }
        let numel: usize = dims.iter().product();
        if buf.remaining() < 4 * numel {
            return Err(fail("truncated data"));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        p.value = Tensor::from_vec(data, &dims);
        p.trainable = trainable;
    }
    if buf.has_remaining() {
        return Err(fail("trailing bytes after last parameter"));
    }
    Ok(())
}

/// Saves a model to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_model_file(model: &mut dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    save_model(model, std::fs::File::create(path)?)
}

/// Loads a model from a file path.
///
/// # Errors
///
/// Propagates file-open/read errors and format mismatches.
pub fn load_model_file(model: &mut dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    load_model(model, std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::model::Sequential;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 6, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(6, 3, &mut rng)),
        ])
    }

    #[test]
    fn save_load_roundtrip_restores_outputs() {
        let mut a = net(1);
        let mut b = net(2); // different weights
        let x = Tensor::ones(&[2, 4]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data());

        let mut blob = Vec::new();
        save_model(&mut a, &mut blob).unwrap();
        load_model(&mut b, blob.as_slice()).unwrap();
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    fn trainable_flags_roundtrip() {
        let mut a = net(3);
        a.params_mut()[0].freeze();
        let mut blob = Vec::new();
        save_model(&mut a, &mut blob).unwrap();
        let mut b = net(4);
        load_model(&mut b, blob.as_slice()).unwrap();
        assert!(!b.params_mut()[0].trainable);
        assert!(b.params_mut()[1].trainable);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut a = net(5);
        let mut blob = Vec::new();
        save_model(&mut a, &mut blob).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let mut wrong = Sequential::new(vec![
            Box::new(Dense::new(4, 7, &mut rng)), // 7 != 6
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 3, &mut rng)),
        ]);
        let err = load_model(&mut wrong, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut a = net(7);
        let err = load_model(&mut a, b"NOPE............".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut a = net(8);
        let mut blob = Vec::new();
        save_model(&mut a, &mut blob).unwrap();
        blob.truncate(blob.len() / 2);
        let err = load_model(&mut a, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
