//! Model checkpointing: a compact binary format for parameter sets, plus
//! the sectioned container scheme used by deployment artifacts.
//!
//! The checkpoint format is deliberately simple (little-endian, no
//! compression):
//!
//! ```text
//! magic "THNT" | version u32 | param_count u32
//! per param: name_len u16 | name utf-8 | trainable u8 | rank u8
//!            | dims u32 × rank | data f32 × numel
//! ```
//!
//! Loading validates names, shapes and order, so a checkpoint can only be
//! restored into an identically-constructed model — the failure mode is an
//! error, never silent weight corruption.
//!
//! [`SectionWriter`] / [`SectionReader`] extend the same header scheme into
//! a versioned multi-section container (magic `THN2`, a section table of
//! tag/length pairs, then the payloads). `thnt-core` uses it for the
//! `.thnt2` packed-model artifact; the scheme itself is model-agnostic.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thnt_tensor::Tensor;

use crate::model::Model;

const MAGIC: &[u8; 4] = b"THNT";
const VERSION: u32 = 1;

/// Magic bytes of the sectioned (`.thnt2`) container.
pub const SECTION_MAGIC: &[u8; 4] = b"THN2";
/// Current version of the sectioned container layout. Version 2 added the
/// optional quantization-schedule (`QNT8`) section. Version 3 made the
/// container mmap-friendly: the section table is followed by zero padding
/// to the next 8-byte boundary, and every payload is zero-padded at its end
/// to a multiple of 8 bytes (the table records the *exact* payload length;
/// the padding is implied by the version). Readers accept every version
/// back to 1 — unknown tags are simply skipped.
pub const SECTION_VERSION: u32 = 3;

/// Oldest container version this reader still accepts.
pub const SECTION_MIN_VERSION: u32 = 1;

/// First container version with 8-byte-aligned section payloads.
pub const SECTION_ALIGNED_VERSION: u32 = 3;

/// Payload alignment (bytes) of [`SECTION_ALIGNED_VERSION`]+ containers:
/// every section payload starts on a multiple of this offset within the
/// file, so `u64` bitplane words can be borrowed in place from an aligned
/// buffer.
pub const SECTION_ALIGN: usize = 8;

/// Rounds `n` up to the next multiple of [`SECTION_ALIGN`].
fn align8(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Zero source for alignment padding; pads are always shorter than
/// [`SECTION_ALIGN`].
const ZERO_PAD: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];

/// Shorthand for the `InvalidData` errors every loader in this module uses.
/// `#[cold]` keeps the error construction out of the decoders' hot paths:
/// the zero-copy loader's cost budget is nanoseconds per section.
#[cold]
pub fn invalid_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes `model`'s parameters to `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_model<W: Write>(model: &dyn Model, mut writer: W) -> io::Result<()> {
    let params = model.params();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in &params {
        let name = p.name.as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(p.trainable as u8);
        let dims = p.value.dims();
        buf.put_u8(dims.len() as u8);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    writer.write_all(&buf)
}

/// Restores parameters saved by [`save_model`] into `model`.
///
/// # Errors
///
/// Returns `InvalidData` if the header, parameter names, shapes or count do
/// not exactly match the model, or any I/O error from the reader.
pub fn load_model<R: Read>(model: &mut dyn Model, mut reader: R) -> io::Result<()> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(fail("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(fail("unsupported version"));
    }
    let count = buf.get_u32_le() as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(fail(&format!(
            "parameter count mismatch: checkpoint has {count}, model has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        if buf.remaining() < 2 {
            return Err(fail("truncated checkpoint"));
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(fail("truncated name"));
        }
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes).map_err(|_| fail("non-utf8 name"))?;
        if name != p.name {
            return Err(fail(&format!("parameter name mismatch: {name} vs {}", p.name)));
        }
        if buf.remaining() < 2 {
            return Err(fail("truncated header"));
        }
        let trainable = buf.get_u8() != 0;
        let rank = buf.get_u8() as usize;
        if buf.remaining() < 4 * rank {
            return Err(fail("truncated dims"));
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        if dims != p.value.dims() {
            return Err(fail(&format!(
                "shape mismatch for {}: checkpoint {dims:?}, model {:?}",
                p.name,
                p.value.dims()
            )));
        }
        let numel: usize = dims.iter().product();
        if buf.remaining() < 4 * numel {
            return Err(fail("truncated data"));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        p.value = Tensor::from_vec(data, &dims);
        p.trainable = trainable;
    }
    if buf.has_remaining() {
        return Err(fail("trailing bytes after last parameter"));
    }
    Ok(())
}

/// Saves a model to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_model_file(model: &dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    save_model(model, std::fs::File::create(path)?)
}

/// Loads a model from a file path.
///
/// # Errors
///
/// Propagates file-open/read errors and format mismatches.
pub fn load_model_file(model: &mut dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    load_model(model, std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Sectioned container (magic THN2).
// ---------------------------------------------------------------------------

/// Builds a sectioned binary container:
///
/// ```text
/// magic "THN2" | version u32 | section_count u32
/// section table: per section: tag [u8; 4] | payload_len u64
/// payloads, concatenated in table order
/// ```
///
/// Sections are identified by a four-byte ASCII tag. Writers append
/// sections with [`SectionWriter::section`]; readers locate them by tag, so
/// new section kinds can be added in later versions without breaking older
/// payload layouts (a reader skips tags it does not know and fails loudly
/// on missing required ones).
#[derive(Debug)]
pub struct SectionWriter {
    version: u32,
    sections: Vec<([u8; 4], BytesMut)>,
}

impl Default for SectionWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SectionWriter {
    /// An empty container at the current [`SECTION_VERSION`] (aligned
    /// payloads).
    pub fn new() -> Self {
        Self::with_version(SECTION_VERSION)
    }

    /// An empty container at an explicit layout version — how the artifact
    /// layer writes backward-compatible v2 containers for older readers.
    ///
    /// # Panics
    ///
    /// Panics if `version` is outside
    /// `SECTION_MIN_VERSION..=SECTION_VERSION` (writing a container no
    /// reader accepts is a construction bug, not a runtime condition).
    pub fn with_version(version: u32) -> Self {
        assert!(
            (SECTION_MIN_VERSION..=SECTION_VERSION).contains(&version),
            "unsupported container version {version}"
        );
        Self { version, sections: Vec::new() }
    }

    /// The container layout version this writer emits.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Starts a new section and returns its payload buffer.
    ///
    /// # Panics
    ///
    /// Panics if `tag` was already added — duplicate tags would make
    /// [`SectionReader::take`] ambiguous.
    pub fn section(&mut self, tag: [u8; 4]) -> &mut BytesMut {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate section tag {:?}",
            String::from_utf8_lossy(&tag)
        );
        self.sections.push((tag, BytesMut::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Pads the current (most recently started) section's payload with zero
    /// bytes until its length is a multiple of `alignment`, and returns the
    /// number of pad bytes written.
    ///
    /// Because an aligned (v3+) container places every payload start on an
    /// 8-byte file offset, aligning *within* the payload to a divisor of 8
    /// guarantees the same file-offset alignment for whatever is written
    /// next — the artifact encoder calls `align_to(8)` right before each
    /// `u64` bitplane array so a zero-copy reader can borrow the words in
    /// place. Pad bytes are always zero; readers verify that.
    ///
    /// # Panics
    ///
    /// Panics if no section has been started, or if `alignment` is not a
    /// power of two dividing [`SECTION_ALIGN`] (anything else cannot be
    /// guaranteed by the container's payload placement).
    pub fn align_to(&mut self, alignment: usize) -> usize {
        assert!(
            alignment.is_power_of_two() && alignment <= SECTION_ALIGN,
            "alignment {alignment} must be a power of two dividing {SECTION_ALIGN}"
        );
        let buf = &mut self.sections.last_mut().expect("align_to before any section").1;
        let pad = alignment - 1 - (buf.len() + alignment - 1) % alignment;
        buf.put_slice(&ZERO_PAD[..pad]);
        pad
    }

    /// Writes the header, section table and payloads to `writer`. Version 3
    /// containers additionally zero-pad the table and every payload to the
    /// next 8-byte boundary (see [`SECTION_VERSION`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(self, mut writer: W) -> io::Result<()> {
        let aligned = self.version >= SECTION_ALIGNED_VERSION;
        let mut buf = BytesMut::new();
        buf.put_slice(SECTION_MAGIC);
        buf.put_u32_le(self.version);
        buf.put_u32_le(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            buf.put_slice(tag);
            buf.put_u64_le(payload.len() as u64);
        }
        if aligned {
            buf.put_slice(&ZERO_PAD[..align8(buf.len()) - buf.len()]);
        }
        for (_, payload) in &self.sections {
            buf.put_slice(payload);
            if aligned {
                buf.put_slice(&ZERO_PAD[..align8(payload.len()) - payload.len()]);
            }
        }
        writer.write_all(&buf)
    }
}

/// One section located by [`SectionReaderRef`]: the payload slice plus its
/// absolute byte offset within the parsed buffer, so a zero-copy consumer
/// can reason about the memory alignment of anything inside the payload.
#[derive(Debug, Clone, Copy)]
pub struct SectionSlice<'a> {
    /// Byte offset of the payload start within the buffer passed to
    /// [`SectionReaderRef::parse`]. In an aligned (v3+) container this is a
    /// multiple of [`SECTION_ALIGN`].
    pub offset: usize,
    /// The exact payload bytes (pad bytes excluded).
    pub bytes: &'a [u8],
}

/// Borrowing counterpart of [`SectionReader`]: parses a container *in
/// place* and hands out payload `&[u8]` slices that alias the input buffer.
/// This is the parser under the zero-copy `.thnt2` loader — its cost is
/// O(header), independent of payload sizes.
#[derive(Debug)]
pub struct SectionReaderRef<'a> {
    version: u32,
    sections: Vec<([u8; 4], SectionSlice<'a>)>,
}

impl<'a> SectionReaderRef<'a> {
    /// Parses and validates the whole container without copying a payload
    /// byte.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic, unsupported version, duplicate
    /// tags, payload bytes not exactly matching the section table
    /// (truncated or trailing data), or — for aligned (v3+) containers —
    /// non-zero padding bytes.
    pub fn parse(buf: &'a [u8]) -> io::Result<Self> {
        if buf.len() < 12 || &buf[..4] != SECTION_MAGIC {
            return Err(invalid_data("bad container magic (want THN2)"));
        }
        let word = |at: usize| -> u32 {
            u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
        };
        let version = word(4);
        if !(SECTION_MIN_VERSION..=SECTION_VERSION).contains(&version) {
            return Err(invalid_data(format!("unsupported container version {version}")));
        }
        let aligned = version >= SECTION_ALIGNED_VERSION;
        let count = word(8) as usize;
        let table_end = 12usize
            .checked_add(
                count
                    .checked_mul(12)
                    .ok_or_else(|| invalid_data("section table length overflow"))?,
            )
            .ok_or_else(|| invalid_data("section table length overflow"))?;
        if buf.len() < table_end {
            return Err(invalid_data("truncated section table"));
        }
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 12;
            let tag: [u8; 4] = [buf[at], buf[at + 1], buf[at + 2], buf[at + 3]];
            let mut len_bytes = [0u8; 8];
            len_bytes.copy_from_slice(&buf[at + 4..at + 12]);
            let len = u64::from_le_bytes(len_bytes);
            if table.iter().any(|(t, _)| *t == tag) {
                return Err(invalid_data(format!(
                    "duplicate section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            table.push((tag, len));
        }
        let overflow = || invalid_data("section table length overflow");
        let mut total: u64 = 0;
        for (_, len) in &table {
            // Checked u64 arithmetic: a corrupt length near u64::MAX must
            // become an error, not an overflow panic.
            let stored = if aligned {
                len.checked_add(SECTION_ALIGN as u64 - 1).ok_or_else(overflow)?
                    & !(SECTION_ALIGN as u64 - 1)
            } else {
                *len
            };
            total = total.checked_add(stored).ok_or_else(overflow)?;
        }
        let data_start = if aligned { align8(table_end) } else { table_end };
        let pad_is_zero = |range: std::ops::Range<usize>| -> io::Result<()> {
            match buf.get(range.clone()) {
                Some(pad) if pad.iter().all(|&b| b == 0) => Ok(()),
                Some(_) => {
                    Err(invalid_data(format!("non-zero padding bytes at offset {}", range.start)))
                }
                None => Err(invalid_data("truncated container padding")),
            }
        };
        pad_is_zero(table_end..data_start)?;
        if total != (buf.len() - data_start) as u64 {
            return Err(invalid_data(format!(
                "section table claims {total} payload bytes, container has {}",
                buf.len() - data_start
            )));
        }
        let mut sections = Vec::with_capacity(count);
        let mut cur = data_start;
        for (tag, len) in table {
            let len = len as usize;
            // `total` already proved every payload fits the buffer exactly.
            let bytes = &buf[cur..cur + len];
            sections.push((tag, SectionSlice { offset: cur, bytes }));
            if aligned {
                pad_is_zero(cur + len..cur + align8(len))?;
                cur += align8(len);
            } else {
                cur += len;
            }
        }
        Ok(Self { version, sections })
    }

    /// The container's layout version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Removes and returns the section tagged `tag`, or `None` if absent.
    pub fn take(&mut self, tag: [u8; 4]) -> Option<SectionSlice<'a>> {
        let i = self.sections.iter().position(|(t, _)| *t == tag)?;
        Some(self.sections.remove(i).1)
    }

    /// Tags still present (unconsumed), in file order.
    pub fn remaining_tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

/// Parses a container written by [`SectionWriter`] and hands out payloads
/// by tag. The owning counterpart of [`SectionReaderRef`]: every payload is
/// copied into its own buffer, so this reader has no lifetime tie to the
/// input.
#[derive(Debug)]
pub struct SectionReader {
    version: u32,
    sections: Vec<([u8; 4], Bytes)>,
}

impl SectionReader {
    /// Reads and validates the whole container.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic, unsupported version, duplicate
    /// tags, or when the payload bytes do not exactly match the section
    /// table (truncated or trailing data), plus any I/O error from the
    /// reader.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Self> {
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw)?;
        let parsed = SectionReaderRef::parse(&raw)?;
        let version = parsed.version();
        let sections = parsed
            .sections
            .into_iter()
            .map(|(tag, s)| (tag, Bytes::from(s.bytes.to_vec())))
            .collect();
        Ok(Self { version, sections })
    }

    /// The container's layout version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Removes and returns the payload of `tag`, or `None` if absent.
    pub fn take(&mut self, tag: [u8; 4]) -> Option<Bytes> {
        let i = self.sections.iter().position(|(t, _)| *t == tag)?;
        Some(self.sections.remove(i).1)
    }

    /// Tags still present (unconsumed), in file order.
    pub fn remaining_tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::model::Sequential;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 6, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(6, 3, &mut rng)),
        ])
    }

    #[test]
    fn save_load_roundtrip_restores_outputs() {
        let mut a = net(1);
        let mut b = net(2); // different weights
        let x = Tensor::ones(&[2, 4]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data());

        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        load_model(&mut b, blob.as_slice()).unwrap();
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    fn trainable_flags_roundtrip() {
        let mut a = net(3);
        a.params_mut()[0].freeze();
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        let mut b = net(4);
        load_model(&mut b, blob.as_slice()).unwrap();
        assert!(!b.params_mut()[0].trainable);
        assert!(b.params_mut()[1].trainable);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = net(5);
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let mut wrong = Sequential::new(vec![
            Box::new(Dense::new(4, 7, &mut rng)), // 7 != 6
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 3, &mut rng)),
        ]);
        let err = load_model(&mut wrong, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut a = net(7);
        let err = load_model(&mut a, b"NOPE............".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut a = net(8);
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        blob.truncate(blob.len() / 2);
        let err = load_model(&mut a, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    fn two_section_blob() -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA").put_slice(&[1, 2, 3]);
        w.section(*b"BBBB").put_u32_le(0xDEAD_BEEF);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        blob
    }

    #[test]
    fn sections_roundtrip_by_tag() {
        let blob = two_section_blob();
        let mut r = SectionReader::read_from(blob.as_slice()).unwrap();
        // Out-of-order lookup works; unknown tags are simply absent.
        let mut b = r.take(*b"BBBB").unwrap();
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(&r.take(*b"AAAA").unwrap()[..], &[1, 2, 3]);
        assert!(r.take(*b"ZZZZ").is_none());
        assert!(r.remaining_tags().is_empty());
    }

    #[test]
    fn sections_reject_bad_magic_and_version() {
        let mut blob = two_section_blob();
        let err = SectionReader::read_from(&b"NOPE...."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        blob[4] = 0xFF; // version
        let err = SectionReader::read_from(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn sections_reject_any_truncation_or_trailing_bytes() {
        let blob = two_section_blob();
        for cut in 0..blob.len() {
            let err = SectionReader::read_from(&blob[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        let mut extended = blob.clone();
        extended.push(0);
        let err = SectionReader::read_from(extended.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn overflowing_section_lengths_are_rejected() {
        // Two u64 lengths that wrap to the real payload size must not pass
        // the total check (or panic): the reader errors on the overflow.
        let mut blob: Vec<u8> = Vec::new();
        blob.put_slice(SECTION_MAGIC);
        blob.put_u32_le(SECTION_VERSION);
        blob.put_u32_le(2);
        blob.put_slice(b"AAAA");
        blob.put_u64_le(1u64 << 63);
        blob.put_slice(b"BBBB");
        blob.put_u64_le((1u64 << 63) + 3);
        blob.put_slice(&[1, 2, 3]);
        let err = SectionReader::read_from(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_section_tags_panic_at_write() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA");
        w.section(*b"AAAA");
    }

    #[test]
    fn empty_container_roundtrips() {
        let mut blob = Vec::new();
        SectionWriter::new().write_to(&mut blob).unwrap();
        let r = SectionReader::read_from(blob.as_slice()).unwrap();
        assert!(r.remaining_tags().is_empty());
        assert_eq!(r.version(), SECTION_VERSION);
    }

    #[test]
    fn v2_containers_still_roundtrip() {
        let mut w = SectionWriter::with_version(2);
        w.section(*b"AAAA").put_slice(&[9; 5]);
        w.section(*b"BBBB").put_slice(&[7; 3]);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        // v2 layout: no padding anywhere — exact header + table + payloads.
        assert_eq!(blob.len(), 12 + 2 * 12 + 5 + 3);
        let mut r = SectionReader::read_from(blob.as_slice()).unwrap();
        assert_eq!(r.version(), 2);
        assert_eq!(&r.take(*b"AAAA").unwrap()[..], &[9; 5]);
        assert_eq!(&r.take(*b"BBBB").unwrap()[..], &[7; 3]);
    }

    #[test]
    fn v3_payloads_start_on_aligned_offsets() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA").put_slice(&[1, 2, 3]); // 3 bytes -> 5 pad bytes
        w.section(*b"BBBB").put_slice(&[4; 9]); // 9 bytes -> 7 pad bytes
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        // Header 12 + table 24 = 36, padded to 40; payloads 8 + 16.
        assert_eq!(blob.len(), 40 + 8 + 16);
        let mut r = SectionReaderRef::parse(&blob).unwrap();
        let a = r.take(*b"AAAA").unwrap();
        let b = r.take(*b"BBBB").unwrap();
        assert_eq!(a.offset % SECTION_ALIGN, 0);
        assert_eq!(b.offset % SECTION_ALIGN, 0);
        assert_eq!(a.bytes, &[1, 2, 3]);
        assert_eq!(b.bytes, &[4; 9]);
        // Every inter-payload pad byte the writer emitted is zero.
        assert!(blob[36..40].iter().all(|&x| x == 0));
        assert!(blob[40 + 3..48].iter().all(|&x| x == 0));
        assert!(blob[48 + 9..].iter().all(|&x| x == 0));
    }

    #[test]
    fn align_to_pads_with_zeros_and_reader_skips_them() {
        let mut w = SectionWriter::new();
        let buf = w.section(*b"AAAA");
        buf.put_slice(&[0xAB; 3]);
        assert_eq!(w.align_to(8), 5);
        assert_eq!(w.align_to(8), 0, "already aligned: no-op");
        w.section(*b"AAAB").put_u8(1);
        assert_eq!(w.align_to(4), 3);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        let mut r = SectionReaderRef::parse(&blob).unwrap();
        let a = r.take(*b"AAAA").unwrap();
        assert_eq!(a.bytes, &[0xAB, 0xAB, 0xAB, 0, 0, 0, 0, 0]);
        assert_eq!(r.take(*b"AAAB").unwrap().bytes, &[1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "power of two dividing")]
    fn align_to_rejects_unrepresentable_alignment() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA");
        w.align_to(16);
    }

    #[test]
    fn misaligned_v3_container_is_a_typed_error_not_a_panic() {
        // Hand-build a v3 container that omits the alignment padding — the
        // layout a v2 writer would produce under a v3 version stamp. The
        // reader must reject it with InvalidData (the total-bytes check
        // fails because v3 requires padded payload storage).
        let mut blob: Vec<u8> = Vec::new();
        blob.put_slice(SECTION_MAGIC);
        blob.put_u32_le(3);
        blob.put_u32_le(1);
        blob.put_slice(b"AAAA");
        blob.put_u64_le(3);
        blob.put_slice(&[1, 2, 3]); // unpadded table AND payload
        let err = SectionReaderRef::parse(&blob).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn nonzero_v3_padding_is_rejected() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA").put_slice(&[1, 2, 3]);
        w.section(*b"BBBB").put_slice(&[4, 5]);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        // Header 12 + table 24 = 36 -> 4 table pad bytes at 36..40.
        // Corrupt a table pad byte and a payload pad byte in turn.
        for at in [37, blob.len() - 1] {
            let mut bad = blob.clone();
            assert_eq!(bad[at], 0, "offset {at} should be padding");
            bad[at] = 0xFF;
            let err = SectionReaderRef::parse(&bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "offset {at}");
            assert!(err.to_string().contains("padding"), "{err}");
        }
    }

    #[test]
    fn ref_reader_payloads_alias_the_input_buffer() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA").put_slice(&[5; 24]);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        let mut r = SectionReaderRef::parse(&blob).unwrap();
        let s = r.take(*b"AAAA").unwrap();
        let blob_range = blob.as_ptr() as usize..blob.as_ptr() as usize + blob.len();
        assert!(blob_range.contains(&(s.bytes.as_ptr() as usize)), "payload must alias input");
    }
}
