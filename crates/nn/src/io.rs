//! Model checkpointing: a compact binary format for parameter sets, plus
//! the sectioned container scheme used by deployment artifacts.
//!
//! The checkpoint format is deliberately simple (little-endian, no
//! compression):
//!
//! ```text
//! magic "THNT" | version u32 | param_count u32
//! per param: name_len u16 | name utf-8 | trainable u8 | rank u8
//!            | dims u32 × rank | data f32 × numel
//! ```
//!
//! Loading validates names, shapes and order, so a checkpoint can only be
//! restored into an identically-constructed model — the failure mode is an
//! error, never silent weight corruption.
//!
//! [`SectionWriter`] / [`SectionReader`] extend the same header scheme into
//! a versioned multi-section container (magic `THN2`, a section table of
//! tag/length pairs, then the payloads). `thnt-core` uses it for the
//! `.thnt2` packed-model artifact; the scheme itself is model-agnostic.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thnt_tensor::Tensor;

use crate::model::Model;

const MAGIC: &[u8; 4] = b"THNT";
const VERSION: u32 = 1;

/// Magic bytes of the sectioned (`.thnt2`) container.
pub const SECTION_MAGIC: &[u8; 4] = b"THN2";
/// Current version of the sectioned container layout. Version 2 added the
/// optional quantization-schedule (`QNT8`) section; readers accept every
/// version back to 1 because section payload layouts never changed —
/// unknown tags are simply skipped.
pub const SECTION_VERSION: u32 = 2;

/// Oldest container version this reader still accepts.
pub const SECTION_MIN_VERSION: u32 = 1;

/// Shorthand for the `InvalidData` errors every loader in this module uses.
pub fn invalid_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes `model`'s parameters to `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_model<W: Write>(model: &dyn Model, mut writer: W) -> io::Result<()> {
    let params = model.params();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in &params {
        let name = p.name.as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u8(p.trainable as u8);
        let dims = p.value.dims();
        buf.put_u8(dims.len() as u8);
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    writer.write_all(&buf)
}

/// Restores parameters saved by [`save_model`] into `model`.
///
/// # Errors
///
/// Returns `InvalidData` if the header, parameter names, shapes or count do
/// not exactly match the model, or any I/O error from the reader.
pub fn load_model<R: Read>(model: &mut dyn Model, mut reader: R) -> io::Result<()> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(fail("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(fail("unsupported version"));
    }
    let count = buf.get_u32_le() as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(fail(&format!(
            "parameter count mismatch: checkpoint has {count}, model has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        if buf.remaining() < 2 {
            return Err(fail("truncated checkpoint"));
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(fail("truncated name"));
        }
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes).map_err(|_| fail("non-utf8 name"))?;
        if name != p.name {
            return Err(fail(&format!("parameter name mismatch: {name} vs {}", p.name)));
        }
        if buf.remaining() < 2 {
            return Err(fail("truncated header"));
        }
        let trainable = buf.get_u8() != 0;
        let rank = buf.get_u8() as usize;
        if buf.remaining() < 4 * rank {
            return Err(fail("truncated dims"));
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        if dims != p.value.dims() {
            return Err(fail(&format!(
                "shape mismatch for {}: checkpoint {dims:?}, model {:?}",
                p.name,
                p.value.dims()
            )));
        }
        let numel: usize = dims.iter().product();
        if buf.remaining() < 4 * numel {
            return Err(fail("truncated data"));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        p.value = Tensor::from_vec(data, &dims);
        p.trainable = trainable;
    }
    if buf.has_remaining() {
        return Err(fail("trailing bytes after last parameter"));
    }
    Ok(())
}

/// Saves a model to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_model_file(model: &dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    save_model(model, std::fs::File::create(path)?)
}

/// Loads a model from a file path.
///
/// # Errors
///
/// Propagates file-open/read errors and format mismatches.
pub fn load_model_file(model: &mut dyn Model, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    load_model(model, std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Sectioned container (magic THN2).
// ---------------------------------------------------------------------------

/// Builds a sectioned binary container:
///
/// ```text
/// magic "THN2" | version u32 | section_count u32
/// section table: per section: tag [u8; 4] | payload_len u64
/// payloads, concatenated in table order
/// ```
///
/// Sections are identified by a four-byte ASCII tag. Writers append
/// sections with [`SectionWriter::section`]; readers locate them by tag, so
/// new section kinds can be added in later versions without breaking older
/// payload layouts (a reader skips tags it does not know and fails loudly
/// on missing required ones).
#[derive(Debug, Default)]
pub struct SectionWriter {
    sections: Vec<([u8; 4], BytesMut)>,
}

impl SectionWriter {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new section and returns its payload buffer.
    ///
    /// # Panics
    ///
    /// Panics if `tag` was already added — duplicate tags would make
    /// [`SectionReader::take`] ambiguous.
    pub fn section(&mut self, tag: [u8; 4]) -> &mut BytesMut {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate section tag {:?}",
            String::from_utf8_lossy(&tag)
        );
        self.sections.push((tag, BytesMut::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Writes the header, section table and payloads to `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(self, mut writer: W) -> io::Result<()> {
        let mut buf = BytesMut::new();
        buf.put_slice(SECTION_MAGIC);
        buf.put_u32_le(SECTION_VERSION);
        buf.put_u32_le(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            buf.put_slice(tag);
            buf.put_u64_le(payload.len() as u64);
        }
        for (_, payload) in &self.sections {
            buf.put_slice(payload);
        }
        writer.write_all(&buf)
    }
}

/// Parses a container written by [`SectionWriter`] and hands out payloads
/// by tag.
#[derive(Debug)]
pub struct SectionReader {
    sections: Vec<([u8; 4], Bytes)>,
}

impl SectionReader {
    /// Reads and validates the whole container.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic, unsupported version, duplicate
    /// tags, or when the payload bytes do not exactly match the section
    /// table (truncated or trailing data), plus any I/O error from the
    /// reader.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Self> {
        let mut raw = Vec::new();
        reader.read_to_end(&mut raw)?;
        let mut buf = Bytes::from(raw);
        if buf.remaining() < 12 || &buf.copy_to_bytes(4)[..] != SECTION_MAGIC {
            return Err(invalid_data("bad container magic (want THN2)"));
        }
        let version = buf.get_u32_le();
        if !(SECTION_MIN_VERSION..=SECTION_VERSION).contains(&version) {
            return Err(invalid_data(format!("unsupported container version {version}")));
        }
        let count = buf.get_u32_le() as usize;
        if buf.remaining() < count.saturating_mul(12) {
            return Err(invalid_data("truncated section table"));
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let tag_bytes = buf.copy_to_bytes(4);
            let tag: [u8; 4] = tag_bytes[..].try_into().expect("4-byte tag");
            let len = buf.get_u64_le();
            if table.iter().any(|(t, _)| *t == tag) {
                return Err(invalid_data(format!(
                    "duplicate section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            table.push((tag, len));
        }
        let mut total: u64 = 0;
        for (_, len) in &table {
            total = total
                .checked_add(*len)
                .ok_or_else(|| invalid_data("section table length overflow"))?;
        }
        if total != buf.remaining() as u64 {
            return Err(invalid_data(format!(
                "section table claims {total} payload bytes, container has {}",
                buf.remaining()
            )));
        }
        let mut sections = Vec::with_capacity(count);
        for (tag, len) in table {
            sections.push((tag, buf.copy_to_bytes(len as usize)));
        }
        Ok(Self { sections })
    }

    /// Removes and returns the payload of `tag`, or `None` if absent.
    pub fn take(&mut self, tag: [u8; 4]) -> Option<Bytes> {
        let i = self.sections.iter().position(|(t, _)| *t == tag)?;
        Some(self.sections.remove(i).1)
    }

    /// Tags still present (unconsumed), in file order.
    pub fn remaining_tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::model::Sequential;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 6, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(6, 3, &mut rng)),
        ])
    }

    #[test]
    fn save_load_roundtrip_restores_outputs() {
        let mut a = net(1);
        let mut b = net(2); // different weights
        let x = Tensor::ones(&[2, 4]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data());

        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        load_model(&mut b, blob.as_slice()).unwrap();
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    fn trainable_flags_roundtrip() {
        let mut a = net(3);
        a.params_mut()[0].freeze();
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        let mut b = net(4);
        load_model(&mut b, blob.as_slice()).unwrap();
        assert!(!b.params_mut()[0].trainable);
        assert!(b.params_mut()[1].trainable);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = net(5);
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let mut wrong = Sequential::new(vec![
            Box::new(Dense::new(4, 7, &mut rng)), // 7 != 6
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 3, &mut rng)),
        ]);
        let err = load_model(&mut wrong, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut a = net(7);
        let err = load_model(&mut a, b"NOPE............".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut a = net(8);
        let mut blob = Vec::new();
        save_model(&a, &mut blob).unwrap();
        blob.truncate(blob.len() / 2);
        let err = load_model(&mut a, blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    fn two_section_blob() -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA").put_slice(&[1, 2, 3]);
        w.section(*b"BBBB").put_u32_le(0xDEAD_BEEF);
        let mut blob = Vec::new();
        w.write_to(&mut blob).unwrap();
        blob
    }

    #[test]
    fn sections_roundtrip_by_tag() {
        let blob = two_section_blob();
        let mut r = SectionReader::read_from(blob.as_slice()).unwrap();
        // Out-of-order lookup works; unknown tags are simply absent.
        let mut b = r.take(*b"BBBB").unwrap();
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(&r.take(*b"AAAA").unwrap()[..], &[1, 2, 3]);
        assert!(r.take(*b"ZZZZ").is_none());
        assert!(r.remaining_tags().is_empty());
    }

    #[test]
    fn sections_reject_bad_magic_and_version() {
        let mut blob = two_section_blob();
        let err = SectionReader::read_from(&b"NOPE...."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        blob[4] = 0xFF; // version
        let err = SectionReader::read_from(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn sections_reject_any_truncation_or_trailing_bytes() {
        let blob = two_section_blob();
        for cut in 0..blob.len() {
            let err = SectionReader::read_from(&blob[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        let mut extended = blob.clone();
        extended.push(0);
        let err = SectionReader::read_from(extended.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn overflowing_section_lengths_are_rejected() {
        // Two u64 lengths that wrap to the real payload size must not pass
        // the total check (or panic): the reader errors on the overflow.
        let mut blob: Vec<u8> = Vec::new();
        blob.put_slice(SECTION_MAGIC);
        blob.put_u32_le(SECTION_VERSION);
        blob.put_u32_le(2);
        blob.put_slice(b"AAAA");
        blob.put_u64_le(1u64 << 63);
        blob.put_slice(b"BBBB");
        blob.put_u64_le((1u64 << 63) + 3);
        blob.put_slice(&[1, 2, 3]);
        let err = SectionReader::read_from(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_section_tags_panic_at_write() {
        let mut w = SectionWriter::new();
        w.section(*b"AAAA");
        w.section(*b"AAAA");
    }

    #[test]
    fn empty_container_roundtrips() {
        let mut blob = Vec::new();
        SectionWriter::new().write_to(&mut blob).unwrap();
        let r = SectionReader::read_from(blob.as_slice()).unwrap();
        assert!(r.remaining_tags().is_empty());
    }
}
