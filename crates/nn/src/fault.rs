//! Fault injection for serving-layer robustness tests: a wrapper backend
//! that misbehaves **on purpose**.
//!
//! A deployed detector must survive a misbehaving model: a batching bug
//! that only bites above some batch size, logits of the wrong arity, an
//! input the network digests into `NaN`, or an outright panic inside the
//! inference call. [`FaultyBackend`] wraps any healthy
//! [`InferenceBackend`] and injects exactly one of those failure modes on a
//! deterministic trigger, so tests can prove the serving layer *isolates*
//! the fault — healthy sessions keep their byte-identical detections, the
//! server never panics, and every faulted window is accounted for.
//!
//! All triggers are pure functions of the call's input (batch size or row
//! content), never of wall-clock time or hidden call counters, so a faulty
//! run is exactly reproducible. The wrapper only counts injections through
//! an [`AtomicU64`] — observability, not behaviour.
//!
//! Used by `crates/core/tests/fault_injection.rs` and exercised in CI's
//! fault-injection step; it ships in the library (not `#[cfg(test)]`) so
//! downstream serving layers can reuse the same chaos harness.

use std::sync::atomic::{AtomicU64, Ordering};

use thnt_tensor::Tensor;

use crate::infer::InferenceBackend;

/// Which failure to inject, and when. See [`FaultyBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Pass every call through untouched (a control group that must be
    /// byte-identical to the bare inner backend).
    None,
    /// Panic on any call whose batch has at least `min_batch` rows — the
    /// shape of a batching bug that single-row execution does not hit. The
    /// panic payload contains `"injected"` so test harnesses can tell it
    /// from a genuine failure.
    PanicOnBatch {
        /// Smallest batch size that triggers the panic.
        min_batch: usize,
    },
    /// Return well-formed but wrong-arity logits (one extra class column)
    /// on any call with at least `min_batch` rows. With `min_batch: 1`
    /// every call misbehaves — the backend is unusable and every window
    /// must be quarantined rather than crash the server.
    WrongArityOnBatch {
        /// Smallest batch size that triggers the wrong arity.
        min_batch: usize,
    },
    /// Overwrite with `NaN` the logits of every row whose mean absolute
    /// input feature is at least `threshold` — an input-keyed fault
    /// modelling samples the model cannot digest. Rows below the threshold
    /// pass through byte-identical, which is what makes per-row
    /// quarantining provable.
    NanAboveEnergy {
        /// Mean-absolute-feature level at which a row's logits turn `NaN`.
        threshold: f32,
    },
}

/// An [`InferenceBackend`] wrapper that injects configurable faults:
/// panics, wrong-arity logits, or content-triggered `NaN` rows.
///
/// # Example
///
/// ```
/// use thnt_nn::{FaultMode, FaultyBackend, InferenceBackend};
/// use thnt_tensor::Tensor;
///
/// struct Two;
/// impl InferenceBackend for Two {
///     fn infer(&self, x: &Tensor) -> Tensor { Tensor::ones(&[x.dims()[0], 2]) }
///     fn num_classes(&self) -> usize { 2 }
///     fn adds_per_sample(&self) -> u64 { 0 }
///     fn model_bytes(&self) -> usize { 0 }
/// }
///
/// let inner = Two;
/// let faulty = FaultyBackend::new(&inner, FaultMode::WrongArityOnBatch { min_batch: 2 });
/// // Single rows are healthy; batches come back with the wrong arity.
/// assert_eq!(faulty.infer(&Tensor::zeros(&[1, 4])).dims(), &[1, 2]);
/// assert_eq!(faulty.infer(&Tensor::zeros(&[3, 4])).dims(), &[3, 3]);
/// assert_eq!(faulty.injected(), 1);
/// // infer_isolated recovers the healthy rows and marks nothing else ok.
/// let isolated = faulty.infer_isolated(&Tensor::zeros(&[3, 4]), 0);
/// assert!(isolated.ok.iter().all(|&ok| ok));
/// ```
pub struct FaultyBackend<'m, B: InferenceBackend + ?Sized> {
    inner: &'m B,
    mode: FaultMode,
    injected: AtomicU64,
}

impl<'m, B: InferenceBackend + ?Sized> FaultyBackend<'m, B> {
    /// Wraps `inner`, injecting faults per `mode`.
    pub fn new(inner: &'m B, mode: FaultMode) -> Self {
        Self { inner, mode, injected: AtomicU64::new(0) }
    }

    /// The configured failure mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// How many faults have been injected so far (panics thrown, wrong-arity
    /// responses returned, or rows overwritten with `NaN`).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<B: InferenceBackend + ?Sized> InferenceBackend for FaultyBackend<'_, B> {
    fn infer(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        match self.mode {
            FaultMode::None => self.inner.infer(x),
            FaultMode::PanicOnBatch { min_batch } => {
                if n >= min_batch {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    panic!("injected panic (FaultyBackend): batch of {n} rows");
                }
                self.inner.infer(x)
            }
            FaultMode::WrongArityOnBatch { min_batch } => {
                if n >= min_batch {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Tensor::zeros(&[n, self.inner.num_classes() + 1]);
                }
                self.inner.infer(x)
            }
            FaultMode::NanAboveEnergy { threshold } => {
                let mut out = self.inner.infer(x);
                let per = x.numel() / n.max(1);
                let classes = self.inner.num_classes();
                for s in 0..n {
                    let row = &x.data()[s * per..(s + 1) * per];
                    let energy = row.iter().map(|v| v.abs()).sum::<f32>() / per.max(1) as f32;
                    if energy >= threshold {
                        self.injected.fetch_add(1, Ordering::Relaxed);
                        out.data_mut()[s * classes..(s + 1) * classes].fill(f32::NAN);
                    }
                }
                out
            }
        }
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn adds_per_sample(&self) -> u64 {
        self.inner.adds_per_sample()
    }

    fn model_bytes(&self) -> usize {
        self.inner.model_bytes()
    }

    fn backend_name(&self) -> &'static str {
        "faulty"
    }
}

impl<B: InferenceBackend + ?Sized> std::fmt::Debug for FaultyBackend<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("inner", &self.inner.backend_name())
            .field("mode", &self.mode)
            .field("injected", &self.injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Input-dependent inner backend: logit = sum of the row's features
    /// plus the class index, so corruption is visible per row.
    struct Echo;
    impl InferenceBackend for Echo {
        fn infer(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.numel() / n.max(1);
            let mut out = Tensor::zeros(&[n, 3]);
            for s in 0..n {
                let sum: f32 = x.data()[s * per..(s + 1) * per].iter().sum();
                for c in 0..3 {
                    out.data_mut()[s * 3 + c] = sum + c as f32;
                }
            }
            out
        }
        fn num_classes(&self) -> usize {
            3
        }
        fn adds_per_sample(&self) -> u64 {
            7
        }
        fn model_bytes(&self) -> usize {
            11
        }
    }

    #[test]
    fn none_mode_is_transparent() {
        let inner = Echo;
        let faulty = FaultyBackend::new(&inner, FaultMode::None);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(faulty.infer(&x).data(), inner.infer(&x).data());
        assert_eq!(faulty.injected(), 0);
        assert_eq!(faulty.num_classes(), 3);
        assert_eq!(faulty.adds_per_sample(), 7);
        assert_eq!(faulty.model_bytes(), 11);
    }

    #[test]
    fn panic_mode_spares_small_batches() {
        let inner = Echo;
        let faulty = FaultyBackend::new(&inner, FaultMode::PanicOnBatch { min_batch: 2 });
        let one = Tensor::zeros(&[1, 2]);
        assert_eq!(faulty.infer(&one).dims(), &[1, 3]);
        let two = Tensor::zeros(&[2, 2]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.infer(&two)));
        assert!(err.is_err(), "batch of 2 must panic");
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn nan_mode_targets_only_hot_rows() {
        let inner = Echo;
        let faulty = FaultyBackend::new(&inner, FaultMode::NanAboveEnergy { threshold: 5.0 });
        // Row 0 is quiet (energy 1), row 1 is hot (energy 10).
        let x = Tensor::from_vec(vec![1.0, 1.0, 10.0, 10.0], &[2, 2]);
        let out = faulty.infer(&x);
        assert!(out.row(0).iter().all(|v| v.is_finite()), "quiet row stays healthy");
        assert!(out.row(1).iter().all(|v| v.is_nan()), "hot row is poisoned");
        assert_eq!(out.row(0), inner.infer(&x).row(0), "healthy row is byte-identical");
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn infer_isolated_recovers_healthy_rows_from_a_panicking_batch() {
        let inner = Echo;
        let faulty = FaultyBackend::new(&inner, FaultMode::PanicOnBatch { min_batch: 2 });
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let want = inner.infer(&x);
        let got = faulty.infer_isolated(&x, 0);
        assert!(got.ok.iter().all(|&ok| ok), "single-row retries recover every row");
        assert_eq!(got.logits.data(), want.data(), "recovered rows are byte-identical");
        assert!(got.faulted_calls >= 1);
    }

    #[test]
    fn infer_isolated_marks_unrecoverable_rows() {
        let inner = Echo;
        // min_batch 1: even single-row retries misbehave.
        let faulty = FaultyBackend::new(&inner, FaultMode::WrongArityOnBatch { min_batch: 1 });
        let got = faulty.infer_isolated(&Tensor::zeros(&[3, 2]), 2);
        assert!(got.ok.iter().all(|&ok| !ok), "no row is trustworthy");
        assert_eq!(got.faulted_rows(), 3);
        assert!(got.logits.data().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn infer_isolated_quarantines_nan_rows_without_touching_neighbours() {
        let inner = Echo;
        let faulty = FaultyBackend::new(&inner, FaultMode::NanAboveEnergy { threshold: 5.0 });
        let x = Tensor::from_vec(vec![1.0, 1.0, 10.0, 10.0, 2.0, 2.0], &[3, 2]);
        let want = inner.infer(&x);
        let got = faulty.infer_isolated(&x, 0);
        assert_eq!(got.ok, vec![true, false, true]);
        assert_eq!(got.logits.row(0), want.row(0));
        assert_eq!(got.logits.row(2), want.row(2));
    }
}
