//! The [`Model`] abstraction and [`Sequential`] composition.

use thnt_tensor::Tensor;

use crate::param::Param;

/// A trainable model: forward produces logits, backward consumes the loss
/// gradient with respect to those logits.
///
/// `forward(_, train=true)` must cache whatever the subsequent `backward`
/// needs; calling `backward` without a preceding training-mode forward is a
/// logic error and may panic.
pub trait Model {
    /// Runs the model on a batch, returning its output (usually logits
    /// `[n, classes]`). `train` enables caching for backprop and
    /// training-mode behaviour (batch-norm batch statistics).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad` (gradient w.r.t. the forward output),
    /// accumulating parameter gradients.
    fn backward(&mut self, grad: &Tensor);

    /// All trainable parameters in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Immutable view of the parameters, in the **same order** as
    /// [`Model::params_mut`]. Read-only consumers (checkpointing, cost
    /// reporting, inference backends) use this so they never need `&mut`.
    fn params(&self) -> Vec<&Param>;

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

/// A single differentiable layer.
///
/// Layers cache their forward inputs (or equivalent) internally; `backward`
/// returns the gradient with respect to the layer input.
pub trait Layer: std::fmt::Debug {
    /// Forward pass. `train` requests caching for a later backward pass.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass: consumes `∂L/∂output`, accumulates parameter
    /// gradients, returns `∂L/∂input`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// The layer's trainable parameters (stable order; empty by default).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Immutable view of the parameters (must mirror `params_mut` order).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Short layer name for diagnostics.
    fn name(&self) -> &'static str;
}

/// A feed-forward stack of layers executed in order.
///
/// # Example
///
/// ```
/// use thnt_nn::{Dense, Relu, Sequential, Model};
/// use thnt_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut net = Sequential::new(vec![
///     Box::new(Dense::new(2, 4, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(4, 2, &mut rng)),
/// ]);
/// assert_eq!(net.forward(&Tensor::zeros(&[3, 2]), false).dims(), &[3, 2]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a stack from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrows the layers (for inspection / cost accounting).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrows the layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Model for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// Adapts a single [`Layer`] into a [`Model`].
///
/// Useful for models that are one big layer, like a Bonsai tree head used
/// standalone (Table 2 of the paper).
///
/// # Example
///
/// ```
/// use thnt_nn::{Dense, LayerModel, Model};
/// use thnt_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut model = LayerModel::new(Dense::new(4, 2, &mut rng));
/// assert_eq!(model.forward(&Tensor::zeros(&[1, 4]), false).dims(), &[1, 2]);
/// ```
#[derive(Debug)]
pub struct LayerModel<L: Layer> {
    layer: L,
}

impl<L: Layer> LayerModel<L> {
    /// Wraps `layer`.
    pub fn new(layer: L) -> Self {
        Self { layer }
    }

    /// Borrows the wrapped layer.
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// Mutably borrows the wrapped layer.
    pub fn layer_mut(&mut self) -> &mut L {
        &mut self.layer
    }

    /// Unwraps the layer.
    pub fn into_inner(self) -> L {
        self.layer
    }
}

impl<L: Layer> Model for LayerModel<L> {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.layer.forward(x, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        self.layer.backward(grad);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layer.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.layer.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_shapes() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(5, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 3, &mut rng)),
        ]);
        let y = net.forward(&Tensor::zeros(&[4, 5]), true);
        assert_eq!(y.dims(), &[4, 3]);
        net.backward(&Tensor::ones(&[4, 3]));
        assert_eq!(net.params_mut().len(), 4); // two dense layers x (W, b)
        assert!(net.num_params() > 0);
    }

    #[test]
    fn params_mirrors_params_mut_order() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(5, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 3, &mut rng)),
        ]);
        let names: Vec<String> = net.params().iter().map(|p| p.name.clone()).collect();
        let names_mut: Vec<String> = net.params_mut().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, names_mut);
        assert_eq!(net.params().len(), 4);
    }

    #[test]
    fn zero_grad_resets_all() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![Box::new(Dense::new(3, 2, &mut rng))]);
        let y = net.forward(&Tensor::ones(&[2, 3]), true);
        net.backward(&Tensor::ones(y.dims()));
        assert!(net.params_mut().iter().any(|p| p.grad.norm() > 0.0));
        net.zero_grad();
        assert!(net.params_mut().iter().all(|p| p.grad.norm() == 0.0));
    }
}
