//! Trainable parameters.

use thnt_tensor::Tensor;

/// A trainable tensor paired with its gradient accumulator.
///
/// Layers own their `Param`s and expose them (in a stable order) through
/// [`Model::params_mut`](crate::Model::params_mut); optimizers index
/// parameters by position, so the order must not change between steps.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Human-readable name, used in reports and gradient-check output.
    pub name: String,
    /// When `false`, optimizers skip this parameter (used for frozen ternary
    /// matrices in phase 3 of Strassen training).
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self { value, grad, name: name.into(), trainable: true }
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Freezes the parameter (optimizers will skip it).
    pub fn freeze(&mut self) {
        self.trainable = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.trainable);
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn freeze_marks_untrainable() {
        let mut p = Param::new("w", Tensor::ones(&[1]));
        p.freeze();
        assert!(!p.trainable);
    }

    #[test]
    fn zero_grad_clears_accumulator() {
        let mut p = Param::new("w", Tensor::ones(&[3]));
        p.grad = Tensor::full(&[3], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
