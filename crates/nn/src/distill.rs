//! Knowledge distillation (Hinton et al.), as used in §3 of the paper to
//! train strassenified students from uncompressed teachers.

use thnt_tensor::Tensor;

use crate::loss::{softmax, softmax_cross_entropy};
use crate::model::Model;
use crate::optim::{Adam, Optimizer};
use crate::trainer::{evaluate, gather_rows, TrainConfig, TrainReport};

/// Distillation hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Softmax temperature `T` for the soft targets.
    pub temperature: f32,
    /// Weight of the hard-label loss (`1 − alpha` goes to the soft loss).
    pub alpha: f32,
}

impl Default for DistillConfig {
    fn default() -> Self {
        Self { temperature: 4.0, alpha: 0.3 }
    }
}

/// Computes the distillation loss and its gradient w.r.t. the student logits.
///
/// `L = alpha · CE(labels, student) + (1 − alpha) · T² · CE(softmax_T(teacher), softmax_T(student))`
///
/// The `T²` factor keeps soft-loss gradient magnitudes comparable across
/// temperatures (Hinton et al. 2015).
///
/// # Panics
///
/// Panics if logit shapes differ or labels mismatch the batch.
pub fn distill_grad(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    labels: &[usize],
    cfg: &DistillConfig,
) -> (f32, Tensor) {
    assert_eq!(student_logits.dims(), teacher_logits.dims(), "logit shape mismatch");
    let (n, c) = (student_logits.dims()[0], student_logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let t = cfg.temperature;

    // Soft loss on temperature-scaled logits.
    let ps = softmax(&student_logits.map(|v| v / t));
    let pt = softmax(&teacher_logits.map(|v| v / t));
    let mut soft_loss = 0.0f32;
    for i in 0..n * c {
        soft_loss -= pt.data()[i] * ps.data()[i].max(1e-12).ln();
    }
    soft_loss = soft_loss / n as f32 * t * t;
    // d(soft)/d(student logits) = T² · (ps − pt) / (n·T) = T·(ps − pt)/n
    let mut soft_grad = &ps - &pt;
    soft_grad.scale(t / n as f32);

    let (hard_loss, hard_grad) = softmax_cross_entropy(student_logits, labels);

    let loss = cfg.alpha * hard_loss + (1.0 - cfg.alpha) * soft_loss;
    let mut grad = hard_grad;
    grad.scale(cfg.alpha);
    grad.axpy(1.0 - cfg.alpha, &soft_grad);
    (loss, grad)
}

/// Trains `student` with knowledge distillation from `teacher` (run in
/// inference mode) on `(x_train, y_train)`.
///
/// Mirrors [`crate::train_classifier`] but replaces the loss with
/// [`distill_grad`]. The teacher's parameters are not updated.
#[allow(clippy::too_many_arguments)] // mirrors train_classifier's surface
pub fn train_distilled(
    student: &mut dyn Model,
    teacher: &mut dyn Model,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    config: &TrainConfig,
    distill: &DistillConfig,
) -> TrainReport {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut opt = Adam::new(config.schedule.initial);
    let mut report = TrainReport { epochs: Vec::new(), best_val_acc: 0.0, final_val_acc: 0.0 };
    let n = y_train.len();
    for epoch in 0..config.epochs {
        opt.set_lr(config.schedule.lr_at(epoch));
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(config.seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let bx = gather_rows(x_train, chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| y_train[i]).collect();
            let teacher_logits = teacher.forward(&bx, false);
            let student_logits = student.forward(&bx, true);
            let (loss, grad) = distill_grad(&student_logits, &teacher_logits, &by, distill);
            student.zero_grad();
            student.backward(&grad);
            let mut params = student.params_mut();
            opt.step(&mut params);
            total_loss += loss;
            batches += 1;
        }
        let val_acc = evaluate(student, x_val, y_val, config.batch_size.max(32));
        report.best_val_acc = report.best_val_acc.max(val_acc);
        report.final_val_acc = val_acc;
        report.epochs.push(crate::trainer::EpochStats {
            epoch,
            train_loss: total_loss / batches.max(1) as f32,
            train_acc: 0.0,
            val_acc,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_logits_minimise_soft_loss() {
        let logits = Tensor::from_vec(vec![2.0, -1.0, 0.5, 0.0, 1.0, -0.5], &[2, 3]);
        let cfg = DistillConfig { temperature: 2.0, alpha: 0.0 };
        let (loss_same, grad_same) = distill_grad(&logits, &logits, &[0, 1], &cfg);
        // Gradient vanishes when student == teacher (soft loss at minimum).
        assert!(grad_same.norm() < 1e-6, "grad {}", grad_same.norm());
        // Any perturbation increases the soft loss.
        let mut other = logits.clone();
        other.data_mut()[0] += 1.0;
        let (loss_diff, _) = distill_grad(&other, &logits, &[0, 1], &cfg);
        assert!(loss_diff > loss_same);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let student = Tensor::from_vec(vec![0.3, -0.2, 0.8, -0.5, 0.1, 0.6], &[2, 3]);
        let teacher = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5, -0.5, 0.2], &[2, 3]);
        let labels = [2usize, 0];
        let cfg = DistillConfig { temperature: 3.0, alpha: 0.4 };
        let (_, grad) = distill_grad(&student, &teacher, &labels, &cfg);
        let eps = 1e-3;
        for i in 0..6 {
            let mut p = student.clone();
            p.data_mut()[i] += eps;
            let mut m = student.clone();
            m.data_mut()[i] -= eps;
            let (lp, _) = distill_grad(&p, &teacher, &labels, &cfg);
            let (lm, _) = distill_grad(&m, &teacher, &labels, &cfg);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "elem {i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn alpha_one_reduces_to_cross_entropy() {
        let student = Tensor::from_vec(vec![0.5, -0.5, 0.2, 0.9], &[2, 2]);
        let teacher = Tensor::from_vec(vec![9.0, -9.0, -9.0, 9.0], &[2, 2]);
        let labels = [0usize, 1];
        let cfg = DistillConfig { temperature: 5.0, alpha: 1.0 };
        let (loss, grad) = distill_grad(&student, &teacher, &labels, &cfg);
        let (ce, ce_grad) = softmax_cross_entropy(&student, &labels);
        assert!((loss - ce).abs() < 1e-6);
        thnt_tensor::assert_close(grad.data(), ce_grad.data(), 1e-6, 1e-5);
    }
}
