//! The serving-side model abstraction: [`InferenceBackend`].
//!
//! Training code mutates models ([`Model::forward`] takes `&mut self` so
//! layers can cache activations for backprop), but a deployed model is a
//! frozen function: logits out, no state touched. `InferenceBackend` is that
//! contract — an **immutable** `&self` forward plus the two cost numbers the
//! paper's deployment story revolves around (additions per inference, packed
//! model bytes) — so every serving consumer (the streaming detector, the
//! experiment drivers' test-set evaluations, the bench binaries) can swap
//! between the dense frozen path and the packed add-only engine without
//! caring which one it holds.
//!
//! Two implementations ship with the workspace:
//!
//! * [`DenseBackend`] (here) — adapts any trained [`Model`] through interior
//!   mutability, running the ordinary `forward(x, train=false)` path,
//! * `PackedStHybrid` (in `thnt-core`) — the bitplane-packed add-only
//!   engine, whose forward is already `&self`.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use thnt_tensor::Tensor;

use crate::loss::accuracy;
use crate::model::Model;
use crate::trainer::gather_rows;

/// A frozen model served for inference: immutable forward producing logits,
/// plus deployment-cost reporting.
///
/// Implementations must be deterministic: the same input always produces the
/// same logits (no training-mode randomness, no state updates).
pub trait InferenceBackend {
    /// Runs inference on a batch, returning logits `[n, num_classes]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use thnt_nn::{Dense, DenseBackend, InferenceBackend, LayerModel};
    /// use thnt_tensor::Tensor;
    ///
    /// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    /// let mut model = LayerModel::new(Dense::new(4, 3, &mut rng));
    /// let backend = DenseBackend::new(&mut model, 3);
    /// // `&self` inference: the same backend could serve any number of
    /// // concurrent consumers.
    /// let logits = backend.infer(&Tensor::zeros(&[2, 4]));
    /// assert_eq!(logits.dims(), &[2, backend.num_classes()]);
    /// ```
    fn infer(&self, x: &Tensor) -> Tensor;

    /// Width of the logits row — the model's class count. Consumers derive
    /// task shape (e.g. keyword-vs-filler splits) from this instead of
    /// hardcoding a dataset.
    fn num_classes(&self) -> usize;

    /// Additions/subtractions executed (or, for dense backends, analytically
    /// modelled) per input sample.
    fn adds_per_sample(&self) -> u64;

    /// Serialized model size in bytes for this backend's storage format.
    fn model_bytes(&self) -> usize;

    /// Short backend label for reports and benchmark rows.
    fn backend_name(&self) -> &'static str {
        "backend"
    }

    /// Batched multi-window inference with a bounded per-call batch: splits
    /// `x` along its leading (batch) dimension into chunks of at most
    /// `max_batch` samples, runs [`Self::infer`] on each, and reassembles
    /// the logits `[n, num_classes]`.
    ///
    /// This is the entry point a serving layer uses to push an arbitrary
    /// number of gathered windows through the model in one call while
    /// keeping per-call latency and scratch memory bounded. `max_batch` of
    /// `0` (or `>= n`) degenerates to a single [`Self::infer`] call.
    /// Because every implementation computes each batch row independently,
    /// chunking never changes any logit.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no batch dimension or an implementation returns
    /// logits of the wrong shape.
    fn infer_chunked(&self, x: &Tensor, max_batch: usize) -> Tensor {
        let n = x.dims()[0];
        if max_batch == 0 || n <= max_batch {
            return self.infer(x);
        }
        let per = x.numel() / n;
        let classes = self.num_classes();
        let mut out = Tensor::zeros(&[n, classes]);
        let mut dims = x.dims().to_vec();
        let mut s = 0usize;
        while s < n {
            let e = (s + max_batch).min(n);
            dims[0] = e - s;
            let chunk = Tensor::from_vec(x.data()[s * per..e * per].to_vec(), &dims);
            let logits = self.infer(&chunk);
            assert_eq!(logits.dims(), &[e - s, classes], "backend logits shape mismatch");
            out.data_mut()[s * classes..e * classes].copy_from_slice(logits.data());
            s = e;
        }
        out
    }

    /// [`Self::infer_chunked`] with fault isolation: the serving entry point
    /// for backends that are not trusted to be healthy.
    ///
    /// Each bounded sub-batch runs under [`std::panic::catch_unwind`]. A
    /// call that panics or returns logits of the wrong shape does not take
    /// its batch down with it: the sub-batch degrades to row-at-a-time
    /// retries, so every healthy row recovers **exactly** the logits it
    /// would have produced in a fault-free batch (rows are computed
    /// independently of their batch neighbours — the contract the serving
    /// equivalence proptests enforce) and only genuinely faulty rows stay
    /// marked. Rows whose logits contain a non-finite value are marked
    /// faulted even when the call itself succeeded, so `NaN` never leaks
    /// into a posterior vote.
    ///
    /// This method never panics on a misbehaving backend; the trade-off is
    /// that a faulty batch costs up to `rows + 1` backend calls. Callers on
    /// a trusted path should keep using [`Self::infer_chunked`].
    ///
    /// The `AssertUnwindSafe` is justified by the trait contract: `infer`
    /// takes `&self` and must not leave observable state behind, so an
    /// unwound call has nothing consistent to corrupt.
    fn infer_isolated(&self, x: &Tensor, max_batch: usize) -> IsolatedBatch {
        let n = x.dims()[0];
        let per = x.numel() / n.max(1);
        let classes = self.num_classes();
        let mut logits = Tensor::from_vec(vec![f32::NAN; n * classes], &[n, classes]);
        let mut ok = vec![false; n];
        let mut faulted_calls = 0u64;
        let mut dims = x.dims().to_vec();
        // Runs rows [s, e) through the backend, demanding the advertised
        // logits shape; None on panic or shape mismatch.
        let mut infer_rows = |s: usize, e: usize| -> Option<Tensor> {
            dims[0] = e - s;
            let chunk = Tensor::from_vec(x.data()[s * per..e * per].to_vec(), &dims);
            let out = catch_unwind(AssertUnwindSafe(|| self.infer(&chunk))).ok()?;
            (out.dims() == [e - s, classes]).then_some(out)
        };
        let step = if max_batch == 0 { n.max(1) } else { max_batch };
        let mut s = 0usize;
        while s < n {
            let e = (s + step).min(n);
            match infer_rows(s, e) {
                Some(out) => {
                    logits.data_mut()[s * classes..e * classes].copy_from_slice(out.data());
                    ok[s..e].fill(true);
                }
                None if e - s == 1 => faulted_calls += 1,
                None => {
                    faulted_calls += 1;
                    for w in s..e {
                        match infer_rows(w, w + 1) {
                            Some(out) => {
                                logits.data_mut()[w * classes..(w + 1) * classes]
                                    .copy_from_slice(out.data());
                                ok[w] = true;
                            }
                            None => faulted_calls += 1,
                        }
                    }
                }
            }
            s = e;
        }
        for w in 0..n {
            if ok[w] && logits.row(w).iter().any(|v| !v.is_finite()) {
                ok[w] = false;
            }
        }
        IsolatedBatch { logits, ok, faulted_calls }
    }
}

/// Outcome of [`InferenceBackend::infer_isolated`]: batched logits plus a
/// per-row health verdict, so a serving layer can quarantine faulty windows
/// without losing the healthy ones that shared their batch.
#[derive(Debug, Clone)]
pub struct IsolatedBatch {
    /// Logits `[n, num_classes]`. Rows whose [`Self::ok`] flag is `false`
    /// hold `NaN` and must not be interpreted.
    pub logits: Tensor,
    /// `ok[i]` is `true` iff row `i`'s logits came from a backend call that
    /// neither panicked, nor returned the wrong shape, nor produced a
    /// non-finite value in that row.
    pub ok: Vec<bool>,
    /// Number of backend calls that misbehaved (panicked or returned
    /// wrong-shaped logits), including failed single-row retries.
    pub faulted_calls: u64,
}

impl IsolatedBatch {
    /// Number of rows whose logits are unusable.
    pub fn faulted_rows(&self) -> usize {
        self.ok.iter().filter(|&&ok| !ok).count()
    }
}

/// Adapts a trained [`Model`] into an [`InferenceBackend`]: the dense
/// forward path, served immutably.
///
/// [`Model::forward`] takes `&mut self` purely so training can cache; in
/// eval mode nothing observable changes, so the adapter wraps the exclusive
/// borrow in a [`RefCell`] and exposes `&self` inference. `model_bytes`
/// defaults to f32 parameter storage (4 bytes per scalar, from
/// [`Model::params`]); strassenified callers can override both cost numbers
/// with [`DenseBackend::with_cost`] to report their analytic budget instead.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use thnt_nn::{Dense, InferenceBackend, LayerModel, DenseBackend};
/// use thnt_tensor::Tensor;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut model = LayerModel::new(Dense::new(4, 3, &mut rng));
/// let backend = DenseBackend::new(&mut model, 3);
/// let logits = backend.infer(&Tensor::zeros(&[2, 4]));
/// assert_eq!(logits.dims(), &[2, 3]);
/// assert_eq!(backend.model_bytes(), (4 * 3 + 3) * 4);
/// ```
pub struct DenseBackend<'m, M: Model + ?Sized> {
    model: RefCell<&'m mut M>,
    num_classes: usize,
    adds_per_sample: u64,
    model_bytes: usize,
}

impl<'m, M: Model + ?Sized> DenseBackend<'m, M> {
    /// Wraps `model`. `num_classes` is the logits width the model produces.
    pub fn new(model: &'m mut M, num_classes: usize) -> Self {
        let model_bytes = model.params().iter().map(|p| p.numel() * 4).sum();
        Self { model: RefCell::new(model), num_classes, adds_per_sample: 0, model_bytes }
    }

    /// Overrides the reported cost numbers (e.g. with a strassenified
    /// model's analytic addition budget and 2-bit-packed size).
    pub fn with_cost(mut self, adds_per_sample: u64, model_bytes: usize) -> Self {
        self.adds_per_sample = adds_per_sample;
        self.model_bytes = model_bytes;
        self
    }
}

impl<M: Model + ?Sized> InferenceBackend for DenseBackend<'_, M> {
    fn infer(&self, x: &Tensor) -> Tensor {
        self.model.borrow_mut().forward(x, false)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn adds_per_sample(&self) -> u64 {
        self.adds_per_sample
    }

    fn model_bytes(&self) -> usize {
        self.model_bytes
    }

    fn backend_name(&self) -> &'static str {
        "dense"
    }
}

impl<M: Model + ?Sized> std::fmt::Debug for DenseBackend<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseBackend")
            .field("num_classes", &self.num_classes)
            .field("model_bytes", &self.model_bytes)
            .finish()
    }
}

/// Top-1 accuracy of `backend` over a labelled set, batched — the
/// serving-path counterpart of [`crate::evaluate`] and bit-identical to it
/// for a [`DenseBackend`] over the same model.
pub fn evaluate_backend<B: InferenceBackend + ?Sized>(
    backend: &B,
    x: &Tensor,
    y: &[usize],
    batch_size: usize,
) -> f32 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let bx = gather_rows(x, chunk);
        let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
        let logits = backend.infer(&bx);
        correct += accuracy(&logits, &by) * by.len() as f32;
    }
    correct / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::model::LayerModel;
    use crate::trainer::evaluate;
    use rand::SeedableRng;

    #[test]
    fn dense_backend_matches_eval_forward() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut model = LayerModel::new(Dense::new(6, 4, &mut rng));
        let x = thnt_tensor::gaussian(&[3, 6], 0.0, 1.0, &mut rng);
        let want = model.forward(&x, false);
        let backend = DenseBackend::new(&mut model, 4);
        let got = backend.infer(&x);
        assert_eq!(got.data(), want.data());
        assert_eq!(backend.num_classes(), 4);
        assert_eq!(backend.backend_name(), "dense");
    }

    #[test]
    fn with_cost_overrides_reporting() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut model = LayerModel::new(Dense::new(2, 2, &mut rng));
        let backend = DenseBackend::new(&mut model, 2).with_cost(123, 456);
        assert_eq!(backend.adds_per_sample(), 123);
        assert_eq!(backend.model_bytes(), 456);
    }

    #[test]
    fn infer_chunked_matches_one_shot() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut model = LayerModel::new(Dense::new(6, 4, &mut rng));
        let x = thnt_tensor::gaussian(&[7, 6], 0.0, 1.0, &mut rng);
        let backend = DenseBackend::new(&mut model, 4);
        let want = backend.infer(&x);
        for max_batch in [0, 1, 2, 3, 7, 100] {
            let got = backend.infer_chunked(&x, max_batch);
            assert_eq!(got.dims(), want.dims(), "max_batch={max_batch}");
            assert_eq!(got.data(), want.data(), "max_batch={max_batch}");
        }
    }

    #[test]
    fn evaluate_backend_matches_evaluate() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut model = LayerModel::new(Dense::new(5, 3, &mut rng));
        let x = thnt_tensor::gaussian(&[11, 5], 0.0, 1.0, &mut rng);
        let y: Vec<usize> = (0..11).map(|i| i % 3).collect();
        let want = evaluate(&mut model, &x, &y, 4);
        let got = evaluate_backend(&DenseBackend::new(&mut model, 3), &x, &y, 4);
        assert_eq!(got, want);
    }
}
