//! Dense, activation, flatten and pooling layers.

use rand::rngs::SmallRng;
use thnt_tensor::{global_avg_pool, kaiming_normal, matmul, matmul_nt, matmul_tn, Tensor};

use crate::model::Layer;
use crate::param::Param;

/// Fully-connected layer: `y = x · Wᵀ + b` with `W: [out, in]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SmallRng) -> Self {
        Self {
            weight: Param::new("dense.w", kaiming_normal(&[out_dim, in_dim], in_dim, rng)),
            bias: Param::new("dense.b", Tensor::zeros(&[out_dim])),
            input: None,
        }
    }

    /// Builds a dense layer around existing weights (used by strassenified
    /// layer collapse and tests).
    ///
    /// # Panics
    ///
    /// Panics if `bias.numel() != weight.dims()[0]`.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(bias.numel(), weight.dims()[0], "bias/out_dim mismatch");
        Self {
            weight: Param::new("dense.w", weight),
            bias: Param::new("dense.b", bias),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter (pruning masks, quantization).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Immutable access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Dense expects [n, features]");
        assert_eq!(x.dims()[1], self.in_dim(), "Dense input width mismatch");
        if train {
            self.input = Some(x.clone());
        }
        let mut y = matmul_nt(x, &self.weight.value);
        let (n, out) = (y.dims()[0], y.dims()[1]);
        let b = self.bias.value.data();
        let yd = y.data_mut();
        for s in 0..n {
            for o in 0..out {
                yd[s * out + o] += b[o];
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("Dense::backward without training forward");
        // dW = gradᵀ · x ; db = Σ_n grad ; dx = grad · W
        self.weight.grad.axpy(1.0, &matmul_tn(grad, x));
        let (n, out) = (grad.dims()[0], grad.dims()[1]);
        let gd = grad.data();
        let bg = self.bias.grad.data_mut();
        for s in 0..n {
            for o in 0..out {
                bg[o] += gd[s * out + o];
            }
        }
        matmul(grad, &self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward without training forward");
        let mut out = grad.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(f32::tanh);
        if train {
            self.output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Tanh::backward without training forward");
        let mut out = grad.clone();
        for (g, &t) in out.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - t * t;
        }
        out
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scalar logistic function `1 / (1 + e^{-x})`.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(sigmoid);
        if train {
            self.output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("Sigmoid::backward without training forward");
        let mut out = grad.clone();
        for (g, &s) in out.data_mut().iter_mut().zip(y.data()) {
            *g *= s * (1.0 - s);
        }
        out
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Flattens `[n, ...] → [n, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_dims = Some(x.dims().to_vec());
        }
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dims = self.input_dims.as_ref().expect("Flatten::backward without forward");
        grad.reshape(dims)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPoolLayer {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPoolLayer {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPoolLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_dims = Some(x.dims().to_vec());
        }
        global_avg_pool(x)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dims = self.input_dims.as_ref().expect("pool backward without forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let mut out = Tensor::zeros(dims);
        let scale = 1.0 / (h * w) as f32;
        let od = out.data_mut();
        for s in 0..n {
            for ch in 0..c {
                let g = grad.at(&[s, ch]) * scale;
                let start = (s * c + ch) * h * w;
                for v in &mut od[start..start + h * w] {
                    *v = g;
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_matches_manual() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut layer = Dense::from_weights(w, b);
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]);
        let y = layer.forward(&x, false);
        // row0: 1*1 + 0*2 + (-1)*3 + .5 = -1.5 ; row1: 4 - 6 - .5 = -2.5
        assert_eq!(y.data(), &[-1.5, -2.5]);
    }

    #[test]
    fn relu_zeroes_negative_grads() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_formula() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![0.7], &[1, 1]);
        let y = t.forward(&x, true);
        let g = t.backward(&Tensor::ones(&[1, 1]));
        assert!((g.data()[0] - (1.0 - y.data()[0] * y.data()[0])).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_at_zero_is_half() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::zeros(&[1, 1]), true);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        let g = s.backward(&Tensor::ones(&[1, 1]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&Tensor::ones(&[2, 12]));
        assert_eq!(g.dims(), &[2, 3, 4]);
    }

    #[test]
    fn global_pool_backward_spreads_gradient() {
        let mut p = GlobalAvgPoolLayer::new();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1]));
        assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn dense_param_count() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let mut d = Dense::new(10, 4, &mut rng);
        let n: usize = d.params_mut().iter().map(|p| p.numel()).sum();
        assert_eq!(n, 44);
    }
}
