//! Generic training loop for classifiers.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use thnt_tensor::Tensor;

use crate::loss::{accuracy, Loss};
use crate::model::Model;
use crate::optim::{Adam, Optimizer, StepDecay};

/// Training-run configuration.
///
/// Defaults mirror the paper's recipe: Adam, batch size 20, initial learning
/// rate 0.001 decayed every 45 epochs.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 20).
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepDecay,
    /// Loss function.
    pub loss: Loss,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per `log_every` epochs (0 = silent).
    pub log_every: usize,
}

impl TrainConfig {
    /// The paper's 135-epoch recipe with the given loss.
    pub fn paper(loss: Loss) -> Self {
        Self {
            epochs: 135,
            batch_size: 20,
            schedule: StepDecay::paper(0.001),
            loss,
            seed: 7,
            log_every: 0,
        }
    }

    /// A shortened recipe for CI-scale runs: `epochs` epochs with
    /// proportionally compressed LR decay stages.
    pub fn quick(loss: Loss, epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 20,
            schedule: StepDecay { initial: 0.01, factor: 0.25, every: epochs.div_ceil(3).max(1) },
            loss,
            seed: 7,
            log_every: 0,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (running, pre-update per batch).
    pub train_acc: f32,
    /// Validation accuracy after the epoch.
    pub val_acc: f32,
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Statistics per epoch.
    pub epochs: Vec<EpochStats>,
    /// Best validation accuracy seen.
    pub best_val_acc: f32,
    /// Validation accuracy after the final epoch.
    pub final_val_acc: f32,
}

/// Trains `model` on `(x_train, y_train)`, validating on `(x_val, y_val)`.
///
/// Returns per-epoch statistics. Deterministic given the config seed (and the
/// model's initial weights).
///
/// # Panics
///
/// Panics if sample counts disagree with label counts.
pub fn train_classifier(
    model: &mut dyn Model,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    config: &TrainConfig,
) -> TrainReport {
    assert_eq!(x_train.dims()[0], y_train.len(), "train sample/label mismatch");
    assert_eq!(x_val.dims()[0], y_val.len(), "val sample/label mismatch");
    let mut opt = Adam::new(config.schedule.initial);
    let mut report = TrainReport { epochs: Vec::new(), best_val_acc: 0.0, final_val_acc: 0.0 };
    let n = y_train.len();
    for epoch in 0..config.epochs {
        opt.set_lr(config.schedule.lr_at(epoch));
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f32;
        let mut total_correct = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let bx = gather_rows(x_train, chunk);
            let by: Vec<usize> = chunk.iter().map(|&i| y_train[i]).collect();
            let logits = model.forward(&bx, true);
            let (loss, grad) = config.loss.compute(&logits, &by);
            total_correct += accuracy(&logits, &by) * by.len() as f32;
            model.zero_grad();
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
            total_loss += loss;
            batches += 1;
        }
        let val_acc = evaluate(model, x_val, y_val, config.batch_size.max(32));
        let stats = EpochStats {
            epoch,
            train_loss: total_loss / batches.max(1) as f32,
            train_acc: total_correct / n.max(1) as f32,
            val_acc,
        };
        if config.log_every > 0 && epoch % config.log_every == 0 {
            eprintln!(
                "epoch {:3}  lr {:.5}  loss {:.4}  train_acc {:.3}  val_acc {:.3}",
                epoch,
                opt.lr(),
                stats.train_loss,
                stats.train_acc,
                stats.val_acc
            );
        }
        report.best_val_acc = report.best_val_acc.max(val_acc);
        report.final_val_acc = val_acc;
        report.epochs.push(stats);
    }
    report
}

/// Evaluates classification accuracy in inference mode, batched.
pub fn evaluate(model: &mut dyn Model, x: &Tensor, y: &[usize], batch_size: usize) -> f32 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0.0f32;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let bx = gather_rows(x, chunk);
        let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
        let logits = model.forward(&bx, false);
        correct += accuracy(&logits, &by) * by.len() as f32;
    }
    correct / n as f32
}

/// Gathers rows of `x` (axis 0) at `indices`.
pub(crate) fn gather_rows(x: &Tensor, indices: &[usize]) -> Tensor {
    let per: usize = x.dims()[1..].iter().product();
    let mut dims = x.dims().to_vec();
    dims[0] = indices.len();
    let mut out = Tensor::zeros(&dims);
    for (row, &i) in indices.iter().enumerate() {
        out.data_mut()[row * per..(row + 1) * per]
            .copy_from_slice(&x.data()[i * per..(i + 1) * per]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::model::Sequential;
    use rand::Rng;

    /// Two-class separable toy problem.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            x.set(&[i, 0], cx + rng.gen_range(-0.3f32..0.3));
            x.set(&[i, 1], rng.gen_range(-0.3..0.3));
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn trains_to_high_accuracy_on_separable_data() {
        let (x, y) = toy_data(64, 1);
        let (xv, yv) = toy_data(32, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ]);
        let config = TrainConfig::quick(Loss::CrossEntropy, 20);
        let report = train_classifier(&mut net, &x, &y, &xv, &yv, &config);
        assert!(report.final_val_acc > 0.9, "val acc {}", report.final_val_acc);
        assert_eq!(report.epochs.len(), 20);
    }

    #[test]
    fn hinge_loss_also_trains() {
        let (x, y) = toy_data(64, 4);
        let (xv, yv) = toy_data(32, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
        let mut config = TrainConfig::quick(Loss::Hinge, 40);
        config.schedule = StepDecay { initial: 0.05, factor: 0.3, every: 15 };
        let report = train_classifier(&mut net, &x, &y, &xv, &yv, &config);
        assert!(report.final_val_acc > 0.9, "val acc {}", report.final_val_acc);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = toy_data(32, 7);
        let run = || {
            let mut rng = SmallRng::seed_from_u64(8);
            let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
            let config = TrainConfig::quick(Loss::CrossEntropy, 5);
            train_classifier(&mut net, &x, &y, &x, &y, &config).final_val_acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, y) = toy_data(64, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ]);
        let config = TrainConfig::quick(Loss::CrossEntropy, 15);
        let report = train_classifier(&mut net, &x, &y, &x, &y, &config);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }
}
