//! Classification losses.
//!
//! The paper trains the hybrid and Bonsai models with **multi-class hinge
//! loss** and the strassenified DS-CNN baselines with **cross-entropy**
//! (§4, footnote 4); both are provided here with analytic gradients.

use thnt_tensor::Tensor;

/// Which loss to optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax cross-entropy.
    CrossEntropy,
    /// Weston–Watkins multi-class hinge with unit margin.
    Hinge,
}

impl Loss {
    /// Computes `(mean loss, ∂loss/∂logits)` for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not `[n, classes]` or labels are out of range.
    pub fn compute(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        match self {
            Loss::CrossEntropy => softmax_cross_entropy(logits, labels),
            Loss::Hinge => multiclass_hinge(logits, labels, 1.0),
        }
    }
}

/// Row-wise softmax of `[n, c]` logits (numerically stabilised).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects [n, classes]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for s in 0..n {
        let row = &mut out.data_mut()[s * c..(s + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy and its gradient `(softmax − onehot)/n`.
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let mut probs = softmax(logits);
    let mut loss = 0.0f32;
    for (s, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range ({c} classes)");
        let p = probs.at(&[s, y]).max(1e-12);
        loss -= p.ln();
    }
    loss /= n as f32;
    // grad = (p - onehot) / n
    for (s, &y) in labels.iter().enumerate() {
        let v = probs.at(&[s, y]);
        probs.set(&[s, y], v - 1.0);
    }
    probs.scale(1.0 / n as f32);
    (loss, probs)
}

/// Weston–Watkins multi-class hinge loss:
/// `L = (1/n) Σ_i Σ_{j≠yᵢ} max(0, margin + s_{ij} − s_{iyᵢ})`.
///
/// Returns the mean loss and its subgradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if shapes mismatch or any label is out of range.
pub fn multiclass_hinge(logits: &Tensor, labels: &[usize], margin: f32) -> (f32, Tensor) {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let mut grad = Tensor::zeros(&[n, c]);
    let mut loss = 0.0f32;
    for (s, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range ({c} classes)");
        let sy = logits.at(&[s, y]);
        for j in 0..c {
            if j == y {
                continue;
            }
            let v = margin + logits.at(&[s, j]) - sy;
            if v > 0.0 {
                loss += v;
                let g = grad.at(&[s, j]);
                grad.set(&[s, j], g + 1.0);
                let gy = grad.at(&[s, y]);
                grad.set(&[s, y], gy - 1.0);
            }
        }
    }
    grad.scale(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if the batch sizes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (s, &y) in labels.iter().enumerate() {
        let row = &logits.data()[s * c..(s + 1) * c];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == y {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for s in 0..2 {
            let sum: f32 = p.row(s).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(p.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        thnt_tensor::assert_close(softmax(&a).data(), softmax(&b).data(), 1e-5, 0.0);
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.2, 0.1, 0.9, -0.7], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "index {i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn hinge_zero_when_margin_satisfied() {
        let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0], &[1, 3]);
        let (loss, grad) = multiclass_hinge(&logits, &[0], 1.0);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn hinge_gradient_matches_finite_difference_away_from_kinks() {
        let logits = Tensor::from_vec(vec![0.3, 0.7, -0.2, 0.9, 0.05, 0.4], &[2, 3]);
        let labels = [1usize, 2];
        let (_, grad) = multiclass_hinge(&logits, &labels, 1.0);
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = multiclass_hinge(&plus, &labels, 1.0);
            let (lm, _) = multiclass_hinge(&minus, &labels, 1.0);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "index {i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(accuracy(&logits, &[2, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[2, 1]), 0.5);
        assert_eq!(accuracy(&logits, &[0, 1]), 0.0);
    }
}
