//! Finite-difference gradient checking.
//!
//! Every layer in the workspace is validated with [`check_gradients`]: a
//! random linear functional of the layer output is used as a scalar loss,
//! its analytic parameter/input gradients are compared against central
//! differences.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thnt_tensor::Tensor;

use crate::model::Layer;

/// Result of a gradient check: the worst relative error seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error over all checked parameter elements.
    pub max_param_err: f32,
    /// Maximum relative error over checked input elements.
    pub max_input_err: f32,
}

/// Checks analytic gradients of `layer` at input `x` against central finite
/// differences.
///
/// Loss is `L = Σ (layer(x) ⊙ R)` for a fixed random tensor `R`. Up to
/// `max_checks` elements of each parameter (and of the input) are probed with
/// step `eps`. Relative error uses `|a − n| / max(1, |a|, |n|)`.
///
/// # Panics
///
/// Panics if any relative error exceeds `tol`.
pub fn check_gradients(
    layer: &mut dyn Layer,
    x: &Tensor,
    eps: f32,
    tol: f32,
    max_checks: usize,
    seed: u64,
) -> GradCheckReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = layer.forward(x, true);
    let r = Tensor::from_vec(
        (0..out.numel()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        out.dims(),
    );
    let dx = layer.backward(&r);

    // Snapshot analytic parameter gradients.
    let analytic: Vec<Tensor> = layer.params_mut().iter().map(|p| p.grad.clone()).collect();

    let loss = |layer: &mut dyn Layer, x: &Tensor, r: &Tensor| -> f32 {
        let y = layer.forward(x, false);
        y.data().iter().zip(r.data()).map(|(a, b)| a * b).sum()
    };

    let mut max_param_err = 0.0f32;
    let num_params = layer.params_mut().len();
    for pi in 0..num_params {
        let n = layer.params_mut()[pi].value.numel();
        let stride = (n / max_checks.max(1)).max(1);
        for i in (0..n).step_by(stride) {
            let orig = layer.params_mut()[pi].value.data()[i];
            layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
            let lp = loss(layer, x, &r);
            layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
            let lm = loss(layer, x, &r);
            layer.params_mut()[pi].value.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[pi].data()[i];
            let err = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0);
            assert!(
                err <= tol,
                "param {pi} ({}) elem {i}: analytic {a} vs numeric {numeric} (err {err})",
                layer.params_mut()[pi].name
            );
            max_param_err = max_param_err.max(err);
        }
    }

    // Input gradient check.
    let mut max_input_err = 0.0f32;
    let n = x.numel();
    let stride = (n / max_checks.max(1)).max(1);
    let mut xp = x.clone();
    for i in (0..n).step_by(stride) {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = loss(layer, &xp, &r);
        xp.data_mut()[i] = orig - eps;
        let lm = loss(layer, &xp, &r);
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        let a = dx.data()[i];
        let err = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0);
        assert!(err <= tol, "input elem {i}: analytic {a} vs numeric {numeric} (err {err})");
        max_input_err = max_input_err.max(err);
    }
    GradCheckReport { max_param_err, max_input_err }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layers::{BatchNorm2d, Conv2dLayer, DepthwiseConv2dLayer};
    use crate::layers::{Dense, GlobalAvgPoolLayer, Relu, Sigmoid, Tanh};
    use crate::rnn::{Gru, Lstm};
    use thnt_tensor::Conv2dSpec;

    fn input(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        thnt_tensor::gaussian(dims, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn dense_gradients() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut layer = Dense::new(6, 4, &mut rng);
        check_gradients(&mut layer, &input(&[3, 6], 1), 1e-2, 2e-2, 40, 2);
    }

    #[test]
    fn conv2d_gradients() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = Conv2dSpec::same(5, 4, 3, 3, 1, 1);
        let mut layer = Conv2dLayer::new(2, 3, spec, &mut rng);
        check_gradients(&mut layer, &input(&[2, 2, 5, 4], 3), 1e-2, 2e-2, 40, 4);
    }

    #[test]
    fn conv2d_strided_gradients() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = Conv2dSpec::same(9, 6, 4, 3, 2, 2);
        let mut layer = Conv2dLayer::new(1, 4, spec, &mut rng);
        check_gradients(&mut layer, &input(&[2, 1, 9, 6], 5), 1e-2, 2e-2, 40, 6);
    }

    #[test]
    fn depthwise_gradients() {
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = Conv2dSpec::same(5, 5, 3, 3, 1, 1);
        let mut layer = DepthwiseConv2dLayer::new(3, 1, spec, &mut rng);
        check_gradients(&mut layer, &input(&[2, 3, 5, 5], 7), 1e-2, 2e-2, 40, 8);
    }

    #[test]
    fn depthwise_multiplier_gradients() {
        let mut rng = SmallRng::seed_from_u64(4);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let mut layer = DepthwiseConv2dLayer::new(2, 2, spec, &mut rng);
        check_gradients(&mut layer, &input(&[1, 2, 5, 5], 9), 1e-2, 2e-2, 40, 10);
    }

    #[test]
    fn activation_gradients() {
        check_gradients(&mut Relu::new(), &input(&[3, 7], 11), 1e-3, 2e-2, 21, 12);
        check_gradients(&mut Tanh::new(), &input(&[3, 7], 13), 1e-3, 2e-2, 21, 14);
        check_gradients(&mut Sigmoid::new(), &input(&[3, 7], 15), 1e-3, 2e-2, 21, 16);
    }

    #[test]
    fn pooling_gradients() {
        check_gradients(
            &mut GlobalAvgPoolLayer::new(),
            &input(&[2, 3, 4, 4], 17),
            1e-3,
            2e-2,
            40,
            18,
        );
    }

    // Batch-norm's train/eval asymmetry means the finite-difference loss must
    // run in train mode; check manually with a train-mode loss.
    #[test]
    fn batchnorm_gradients_manual() {
        let mut bn = BatchNorm2d::new(2);
        let x = input(&[3, 2, 2, 2], 19);
        let mut rng = SmallRng::seed_from_u64(20);
        let out = bn.forward(&x, true);
        let r = Tensor::from_vec(
            (0..out.numel()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            out.dims(),
        );
        let dx = bn.backward(&r);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            use crate::model::Layer as _;
            let y = bn.forward(x, true);
            y.data().iter().zip(r.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        let mut xp = x.clone();
        for i in (0..x.numel()).step_by(3) {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss(&mut bn, &xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss(&mut bn, &xp);
            xp.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = dx.data()[i];
            let err = (a - numeric).abs() / a.abs().max(numeric.abs()).max(1.0);
            assert!(err < 3e-2, "elem {i}: {a} vs {numeric}");
        }
    }

    #[test]
    fn lstm_gradients() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut layer = Lstm::new(3, 4, &mut rng);
        check_gradients(&mut layer, &input(&[2, 3, 3], 21), 1e-2, 3e-2, 30, 22);
    }

    #[test]
    fn lstm_projection_gradients() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut layer = Lstm::with_projection(3, 5, Some(4), &mut rng);
        check_gradients(&mut layer, &input(&[2, 3, 3], 23), 1e-2, 3e-2, 30, 24);
    }

    #[test]
    fn gru_gradients() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut layer = Gru::new(3, 4, &mut rng);
        check_gradients(&mut layer, &input(&[2, 3, 3], 25), 1e-2, 3e-2, 30, 26);
    }
}
