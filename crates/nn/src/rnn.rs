//! Recurrent layers (LSTM, GRU) with truncated-free full BPTT.
//!
//! These power the Table 3 baselines (Basic LSTM, LSTM-with-projection, GRU,
//! CRNN). Inputs are `[n, T, F]` sequences; the layer output is the **last**
//! hidden state `[n, H]`, which is what the KWS classifiers consume.
//! Gradients flow back through all `T` steps.

use rand::rngs::SmallRng;
use thnt_tensor::{matmul, matmul_nt, matmul_tn, xavier_uniform, Tensor};

use crate::layers::sigmoid;
use crate::model::Layer;
use crate::param::Param;

/// Extracts timestep `t` of a `[n, T, F]` tensor as `[n, F]`.
fn timestep(x: &Tensor, t: usize) -> Tensor {
    let (n, steps, f) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    assert!(t < steps, "timestep {t} out of range");
    let mut out = Tensor::zeros(&[n, f]);
    for s in 0..n {
        let src = (s * steps + t) * f;
        out.data_mut()[s * f..(s + 1) * f].copy_from_slice(&x.data()[src..src + f]);
    }
    out
}

/// Adds `grad` (shape `[n, F]`) into timestep `t` of `out` (`[n, T, F]`).
fn add_timestep(out: &mut Tensor, t: usize, grad: &Tensor) {
    let (n, steps, f) = (out.dims()[0], out.dims()[1], out.dims()[2]);
    for s in 0..n {
        let dst = (s * steps + t) * f;
        for (o, &g) in out.data_mut()[dst..dst + f].iter_mut().zip(grad.row(s)) {
            *o += g;
        }
    }
}

/// Long short-term memory layer, optionally with a projection layer
/// (the "LSTMP" used by the paper's `LSTM` baseline; `Basic LSTM` has none).
///
/// Gate order in the stacked weight matrices is `i, f, g, o`.
#[derive(Debug)]
pub struct Lstm {
    w_x: Param,
    w_h: Param,
    b: Param,
    w_proj: Option<Param>,
    hidden: usize,
    input_dim: usize,
    cache: Option<LstmCache>,
}

#[derive(Debug)]
struct LstmCache {
    x: Tensor,
    /// Recurrent inputs `r_0..r_T` (projected hidden if projecting).
    rs: Vec<Tensor>,
    /// Cell states `c_0..c_T`.
    cs: Vec<Tensor>,
    /// Post-activation gates per step `[n, 4H]`.
    gates: Vec<Tensor>,
    /// Pre-projection hidden `o ∘ tanh(c)` per step.
    hos: Vec<Tensor>,
}

impl Lstm {
    /// Creates an LSTM over `input_dim` features with `hidden` units and no
    /// projection.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        Self::with_projection(input_dim, hidden, None, rng)
    }

    /// Creates an LSTM with an optional output projection to `proj` units.
    pub fn with_projection(
        input_dim: usize,
        hidden: usize,
        proj: Option<usize>,
        rng: &mut SmallRng,
    ) -> Self {
        let rec = proj.unwrap_or(hidden);
        let mut b = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias 1.0: standard recipe for gradient flow.
        for i in hidden..2 * hidden {
            b.data_mut()[i] = 1.0;
        }
        Self {
            w_x: Param::new(
                "lstm.w_x",
                xavier_uniform(&[4 * hidden, input_dim], input_dim, hidden, rng),
            ),
            w_h: Param::new("lstm.w_h", xavier_uniform(&[4 * hidden, rec], rec, hidden, rng)),
            b: Param::new("lstm.b", b),
            w_proj: proj
                .map(|p| Param::new("lstm.w_proj", xavier_uniform(&[p, hidden], hidden, p, rng))),
            hidden,
            input_dim,
            cache: None,
        }
    }

    /// Output width (projection size if projecting, else hidden size).
    pub fn output_dim(&self) -> usize {
        self.w_proj.as_ref().map(|p| p.value.dims()[0]).unwrap_or(self.hidden)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 3, "Lstm expects [n, T, F]");
        assert_eq!(x.dims()[2], self.input_dim, "Lstm input width mismatch");
        let (n, steps) = (x.dims()[0], x.dims()[1]);
        let h = self.hidden;
        let rec_dim = self.output_dim();
        let mut r = Tensor::zeros(&[n, rec_dim]);
        let mut c = Tensor::zeros(&[n, h]);
        let mut cache = LstmCache {
            x: x.clone(),
            rs: vec![r.clone()],
            cs: vec![c.clone()],
            gates: Vec::new(),
            hos: Vec::new(),
        };
        for t in 0..steps {
            let xt = timestep(x, t);
            // z = xt·W_xᵀ + r·W_hᵀ + b  → [n, 4H]
            let mut z = matmul_nt(&xt, &self.w_x.value);
            let zr = matmul_nt(&r, &self.w_h.value);
            z.axpy(1.0, &zr);
            {
                let zd = z.data_mut();
                let bd = self.b.value.data();
                for s in 0..n {
                    for k in 0..4 * h {
                        zd[s * 4 * h + k] += bd[k];
                    }
                }
            }
            // Activate gates in place: i, f, o via sigmoid; g via tanh.
            let mut gates = z;
            {
                let gd = gates.data_mut();
                for s in 0..n {
                    for k in 0..4 * h {
                        let idx = s * 4 * h + k;
                        gd[idx] = if k / h == 2 { gd[idx].tanh() } else { sigmoid(gd[idx]) };
                    }
                }
            }
            // c = f∘c + i∘g ; ho = o∘tanh(c)
            let mut ho = Tensor::zeros(&[n, h]);
            {
                let gd = gates.data();
                let cd = c.data_mut();
                let hod = ho.data_mut();
                for s in 0..n {
                    for k in 0..h {
                        let i = gd[s * 4 * h + k];
                        let f = gd[s * 4 * h + h + k];
                        let g = gd[s * 4 * h + 2 * h + k];
                        let o = gd[s * 4 * h + 3 * h + k];
                        let cv = f * cd[s * h + k] + i * g;
                        cd[s * h + k] = cv;
                        hod[s * h + k] = o * cv.tanh();
                    }
                }
            }
            r = match &self.w_proj {
                Some(p) => matmul_nt(&ho, &p.value),
                None => ho.clone(),
            };
            if train {
                cache.gates.push(gates);
                cache.cs.push(c.clone());
                cache.hos.push(ho);
                cache.rs.push(r.clone());
            }
        }
        if train {
            self.cache = Some(cache);
        }
        r
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Lstm::backward without training forward");
        let (n, steps) = (cache.x.dims()[0], cache.x.dims()[1]);
        let h = self.hidden;
        let mut dx = Tensor::zeros(cache.x.dims());
        let mut dr = grad.clone();
        let mut dc = Tensor::zeros(&[n, h]);
        for t in (0..steps).rev() {
            // Through projection.
            let dho = match &mut self.w_proj {
                Some(p) => {
                    p.grad.axpy(1.0, &matmul_tn(&dr, &cache.hos[t]));
                    matmul(&dr, &p.value)
                }
                None => dr.clone(),
            };
            let gates = &cache.gates[t];
            let c_t = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let mut dz = Tensor::zeros(&[n, 4 * h]);
            {
                let gd = gates.data();
                let dzd = dz.data_mut();
                let dcd = dc.data_mut();
                for s in 0..n {
                    for k in 0..h {
                        let i = gd[s * 4 * h + k];
                        let f = gd[s * 4 * h + h + k];
                        let g = gd[s * 4 * h + 2 * h + k];
                        let o = gd[s * 4 * h + 3 * h + k];
                        let tc = c_t.data()[s * h + k].tanh();
                        let dho_v = dho.data()[s * h + k];
                        let do_ = dho_v * tc;
                        let dc_v = dcd[s * h + k] + dho_v * o * (1.0 - tc * tc);
                        let di = dc_v * g;
                        let df = dc_v * c_prev.data()[s * h + k];
                        let dg = dc_v * i;
                        dcd[s * h + k] = dc_v * f; // becomes dc_prev
                        dzd[s * 4 * h + k] = di * i * (1.0 - i);
                        dzd[s * 4 * h + h + k] = df * f * (1.0 - f);
                        dzd[s * 4 * h + 2 * h + k] = dg * (1.0 - g * g);
                        dzd[s * 4 * h + 3 * h + k] = do_ * o * (1.0 - o);
                    }
                }
            }
            let xt = timestep(&cache.x, t);
            self.w_x.grad.axpy(1.0, &matmul_tn(&dz, &xt));
            self.w_h.grad.axpy(1.0, &matmul_tn(&dz, &cache.rs[t]));
            {
                let bg = self.b.grad.data_mut();
                for s in 0..n {
                    for k in 0..4 * h {
                        bg[k] += dz.data()[s * 4 * h + k];
                    }
                }
            }
            add_timestep(&mut dx, t, &matmul(&dz, &self.w_x.value));
            dr = matmul(&dz, &self.w_h.value);
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![&mut self.w_x, &mut self.w_h, &mut self.b];
        if let Some(p) = &mut self.w_proj {
            ps.push(p);
        }
        ps
    }

    fn params(&self) -> Vec<&Param> {
        let mut ps = vec![&self.w_x, &self.w_h, &self.b];
        if let Some(p) = &self.w_proj {
            ps.push(p);
        }
        ps
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

/// Gated recurrent unit layer. Gate order in stacked matrices is `r, z, n`.
#[derive(Debug)]
pub struct Gru {
    w_x: Param,
    w_h: Param,
    b_x: Param,
    b_hn: Param,
    hidden: usize,
    input_dim: usize,
    cache: Option<GruCache>,
}

#[derive(Debug)]
struct GruCache {
    x: Tensor,
    hs: Vec<Tensor>,
    /// Per step: r, z, n activations `[n, 3H]` (stacked) and `u_nh`.
    gates: Vec<Tensor>,
    u_nhs: Vec<Tensor>,
}

impl Gru {
    /// Creates a GRU over `input_dim` features with `hidden` units.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        Self {
            w_x: Param::new(
                "gru.w_x",
                xavier_uniform(&[3 * hidden, input_dim], input_dim, hidden, rng),
            ),
            w_h: Param::new("gru.w_h", xavier_uniform(&[3 * hidden, hidden], hidden, hidden, rng)),
            b_x: Param::new("gru.b_x", Tensor::zeros(&[3 * hidden])),
            b_hn: Param::new("gru.b_hn", Tensor::zeros(&[hidden])),
            hidden,
            input_dim,
            cache: None,
        }
    }

    /// Hidden width.
    pub fn output_dim(&self) -> usize {
        self.hidden
    }
}

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 3, "Gru expects [n, T, F]");
        assert_eq!(x.dims()[2], self.input_dim, "Gru input width mismatch");
        let (n, steps) = (x.dims()[0], x.dims()[1]);
        let h = self.hidden;
        let mut hprev = Tensor::zeros(&[n, h]);
        let mut cache = GruCache {
            x: x.clone(),
            hs: vec![hprev.clone()],
            gates: Vec::new(),
            u_nhs: Vec::new(),
        };
        for t in 0..steps {
            let xt = timestep(x, t);
            // zx = xt·W_xᵀ + b_x ; zh = hprev·W_hᵀ (rows: r, z, n blocks)
            let mut zx = matmul_nt(&xt, &self.w_x.value);
            {
                let d = zx.data_mut();
                let b = self.b_x.value.data();
                for s in 0..n {
                    for k in 0..3 * h {
                        d[s * 3 * h + k] += b[k];
                    }
                }
            }
            let zh = matmul_nt(&hprev, &self.w_h.value);
            let mut gates = Tensor::zeros(&[n, 3 * h]);
            let mut u_nh = Tensor::zeros(&[n, h]);
            let mut hnew = Tensor::zeros(&[n, h]);
            {
                let zxd = zx.data();
                let zhd = zh.data();
                let gd = gates.data_mut();
                let ud = u_nh.data_mut();
                let hd = hnew.data_mut();
                let hp = hprev.data();
                let bhn = self.b_hn.value.data();
                for s in 0..n {
                    for k in 0..h {
                        let r = sigmoid(zxd[s * 3 * h + k] + zhd[s * 3 * h + k]);
                        let z = sigmoid(zxd[s * 3 * h + h + k] + zhd[s * 3 * h + h + k]);
                        let u = zhd[s * 3 * h + 2 * h + k] + bhn[k];
                        let nv = (zxd[s * 3 * h + 2 * h + k] + r * u).tanh();
                        gd[s * 3 * h + k] = r;
                        gd[s * 3 * h + h + k] = z;
                        gd[s * 3 * h + 2 * h + k] = nv;
                        ud[s * h + k] = u;
                        hd[s * h + k] = (1.0 - z) * nv + z * hp[s * h + k];
                    }
                }
            }
            hprev = hnew;
            if train {
                cache.gates.push(gates);
                cache.u_nhs.push(u_nh);
                cache.hs.push(hprev.clone());
            }
        }
        if train {
            self.cache = Some(cache);
        }
        hprev
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Gru::backward without training forward");
        let (n, steps) = (cache.x.dims()[0], cache.x.dims()[1]);
        let h = self.hidden;
        let mut dx = Tensor::zeros(cache.x.dims());
        let mut dh = grad.clone();
        for t in (0..steps).rev() {
            let gates = &cache.gates[t];
            let u_nh = &cache.u_nhs[t];
            let hprev = &cache.hs[t];
            // dzx covers the x-side pre-activations (r, z, n);
            // dzh covers the h-side (r, z share with x; n-block is d(u_nh)).
            let mut dzx = Tensor::zeros(&[n, 3 * h]);
            let mut dzh = Tensor::zeros(&[n, 3 * h]);
            let mut dh_prev = Tensor::zeros(&[n, h]);
            {
                let gd = gates.data();
                let ud = u_nh.data();
                let hp = hprev.data();
                let dhd = dh.data();
                let dzxd = dzx.data_mut();
                let dzhd = dzh.data_mut();
                let dhp = dh_prev.data_mut();
                let bhg = self.b_hn.grad.data_mut();
                for s in 0..n {
                    for k in 0..h {
                        let r = gd[s * 3 * h + k];
                        let z = gd[s * 3 * h + h + k];
                        let nv = gd[s * 3 * h + 2 * h + k];
                        let u = ud[s * h + k];
                        let g = dhd[s * h + k];
                        let dz_gate = g * (hp[s * h + k] - nv);
                        let dn = g * (1.0 - z);
                        dhp[s * h + k] += g * z;
                        let dn_pre = dn * (1.0 - nv * nv);
                        let dr = dn_pre * u;
                        let du = dn_pre * r;
                        let dz_pre = dz_gate * z * (1.0 - z);
                        let dr_pre = dr * r * (1.0 - r);
                        dzxd[s * 3 * h + k] = dr_pre;
                        dzxd[s * 3 * h + h + k] = dz_pre;
                        dzxd[s * 3 * h + 2 * h + k] = dn_pre;
                        dzhd[s * 3 * h + k] = dr_pre;
                        dzhd[s * 3 * h + h + k] = dz_pre;
                        dzhd[s * 3 * h + 2 * h + k] = du;
                        bhg[k] += du;
                    }
                }
            }
            let xt = timestep(&cache.x, t);
            self.w_x.grad.axpy(1.0, &matmul_tn(&dzx, &xt));
            self.w_h.grad.axpy(1.0, &matmul_tn(&dzh, hprev));
            {
                let bg = self.b_x.grad.data_mut();
                for s in 0..n {
                    for k in 0..3 * h {
                        bg[k] += dzx.data()[s * 3 * h + k];
                    }
                }
            }
            add_timestep(&mut dx, t, &matmul(&dzx, &self.w_x.value));
            dh_prev.axpy(1.0, &matmul(&dzh, &self.w_h.value));
            dh = dh_prev;
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.b_x, &mut self.b_hn]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_x, &self.w_h, &self.b_x, &self.b_hn]
    }

    fn name(&self) -> &'static str {
        "gru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lstm_output_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut lstm = Lstm::new(10, 16, &mut rng);
        let y = lstm.forward(&Tensor::zeros(&[3, 5, 10]), false);
        assert_eq!(y.dims(), &[3, 16]);
    }

    #[test]
    fn lstm_projection_shrinks_output() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lstm = Lstm::with_projection(10, 32, Some(12), &mut rng);
        assert_eq!(lstm.output_dim(), 12);
        let y = lstm.forward(&Tensor::zeros(&[2, 4, 10]), false);
        assert_eq!(y.dims(), &[2, 12]);
        assert_eq!(lstm.params_mut().len(), 4);
    }

    #[test]
    fn gru_output_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut gru = Gru::new(8, 12, &mut rng);
        let y = gru.forward(&Tensor::zeros(&[2, 6, 8]), false);
        assert_eq!(y.dims(), &[2, 12]);
    }

    #[test]
    fn zero_input_zero_state_lstm_output_is_small() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lstm = Lstm::new(4, 8, &mut rng);
        let y = lstm.forward(&Tensor::zeros(&[1, 3, 4]), false);
        // With zero inputs, gates are constant; output is bounded well below 1.
        assert!(y.data().iter().all(|&v| v.abs() < 0.8));
    }

    #[test]
    fn recurrence_sees_history() {
        // Same final timestep, different history -> different output.
        let mut rng = SmallRng::seed_from_u64(4);
        let mut gru = Gru::new(2, 6, &mut rng);
        let mut a = Tensor::zeros(&[1, 3, 2]);
        let mut b = Tensor::zeros(&[1, 3, 2]);
        a.set(&[0, 0, 0], 1.0);
        b.set(&[0, 0, 0], -1.0);
        a.set(&[0, 2, 1], 0.5);
        b.set(&[0, 2, 1], 0.5);
        let ya = gru.forward(&a, false);
        let yb = gru.forward(&b, false);
        let diff: f32 = ya.data().iter().zip(yb.data()).map(|(p, q)| (p - q).abs()).sum();
        assert!(diff > 1e-4, "history ignored: {diff}");
    }

    #[test]
    fn backward_produces_input_grads_of_right_shape() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let x = thnt_tensor::gaussian(&[2, 4, 3], 0.0, 1.0, &mut rng);
        let y = lstm.forward(&x, true);
        let dx = lstm.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.norm() > 0.0);

        let mut gru = Gru::new(3, 5, &mut rng);
        let y = gru.forward(&x, true);
        let dx = gru.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.norm() > 0.0);
    }
}
