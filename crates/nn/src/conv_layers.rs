//! Convolutional and batch-normalisation layers.

use rand::rngs::SmallRng;
use thnt_tensor::{
    col2im, conv2d, depthwise_conv2d, im2col, kaiming_normal, matmul_nt, matmul_tn, Conv2dSpec,
    Tensor,
};

use crate::model::Layer;
use crate::param::Param;

/// Standard 2-D convolution layer (NCHW).
#[derive(Debug)]
pub struct Conv2dLayer {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    cached_cols: Vec<Tensor>,
    input_dims: Option<Vec<usize>>,
}

impl Conv2dLayer {
    /// Creates a conv layer with `out_ch` filters of size `kh × kw` over
    /// `in_ch` channels, Kaiming-initialised.
    pub fn new(in_ch: usize, out_ch: usize, spec: Conv2dSpec, rng: &mut SmallRng) -> Self {
        let fan_in = in_ch * spec.kh * spec.kw;
        Self {
            weight: Param::new(
                "conv.w",
                kaiming_normal(&[out_ch, in_ch, spec.kh, spec.kw], fan_in, rng),
            ),
            bias: Param::new("conv.b", Tensor::zeros(&[out_ch])),
            spec,
            cached_cols: Vec::new(),
            input_dims: None,
        }
    }

    /// Builds a conv layer around existing weights.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not 4-D or the bias length mismatches.
    pub fn from_weights(weight: Tensor, bias: Tensor, spec: Conv2dSpec) -> Self {
        assert_eq!(weight.shape().rank(), 4, "conv weight must be [oc, ic, kh, kw]");
        assert_eq!(bias.numel(), weight.dims()[0], "bias length mismatch");
        Self {
            weight: Param::new("conv.w", weight),
            bias: Param::new("conv.b", bias),
            spec,
            cached_cols: Vec::new(),
            input_dims: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Immutable weight access.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight access (pruning, quantization).
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable bias access (batch-norm folding).
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }
}

impl Layer for Conv2dLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let out = conv2d(x, &self.weight.value, Some(&self.bias.value), &self.spec);
        if train {
            self.input_dims = Some(x.dims().to_vec());
            self.cached_cols =
                (0..x.dims()[0]).map(|s| im2col(&x.slice_batch(s), &self.spec)).collect();
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let dims = self.input_dims.clone().expect("Conv2d::backward without training forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let oc = self.weight.value.dims()[0];
        let k = c * self.spec.kh * self.spec.kw;
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let w2d = self.weight.value.reshape(&[oc, k]);
        let mut grad_x = Tensor::zeros(&dims);
        for s in 0..n {
            let g = grad.slice_batch(s).reshape(&[oc, spatial]);
            let cols = &self.cached_cols[s];
            // dW += g · colsᵀ
            let dw = matmul_nt(&g, cols);
            self.weight.grad.axpy(1.0, &dw.reshape(self.weight.value.dims()));
            // db += Σ_spatial g
            for ch in 0..oc {
                let sum: f32 = g.row(ch).iter().sum();
                self.bias.grad.data_mut()[ch] += sum;
            }
            // dx = col2im(Wᵀ · g)
            let dcols = matmul_tn(&w2d, &g);
            let dx = col2im(&dcols, &self.spec, c, h, w);
            grad_x.data_mut()[s * c * h * w..(s + 1) * c * h * w].copy_from_slice(dx.data());
        }
        grad_x
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Depthwise 2-D convolution layer with channel multiplier `m`.
#[derive(Debug)]
pub struct DepthwiseConv2dLayer {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    input: Option<Tensor>,
}

impl DepthwiseConv2dLayer {
    /// Creates a depthwise layer over `channels` input channels with
    /// multiplier `multiplier`.
    pub fn new(channels: usize, multiplier: usize, spec: Conv2dSpec, rng: &mut SmallRng) -> Self {
        let fan_in = spec.kh * spec.kw;
        Self {
            weight: Param::new(
                "dwconv.w",
                kaiming_normal(&[channels, multiplier, spec.kh, spec.kw], fan_in, rng),
            ),
            bias: Param::new("dwconv.b", Tensor::zeros(&[channels * multiplier])),
            spec,
            input: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Immutable weight access.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight access.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Mutable bias access (batch-norm folding).
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }
}

impl Layer for DepthwiseConv2dLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.input = Some(x.clone());
        }
        depthwise_conv2d(x, &self.weight.value, Some(&self.bias.value), &self.spec)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.input.as_ref().expect("Depthwise::backward without training forward");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let m = self.weight.value.dims()[1];
        let (kh, kw) = (self.spec.kh, self.spec.kw);
        let (oh, ow) = self.spec.out_dims(h, w);
        let mut grad_x = Tensor::zeros(x.dims());
        let wd = self.weight.value.data();
        let wg = self.weight.grad.data_mut();
        let bg = self.bias.grad.data_mut();
        let xd = x.data();
        let gd = grad.data();
        let gxd = grad_x.data_mut();
        for s in 0..n {
            for ch in 0..c {
                let img_off = (s * c + ch) * h * w;
                for j in 0..m {
                    let oc = ch * m + j;
                    let g_off = (s * c * m + oc) * oh * ow;
                    let w_off = oc * kh * kw;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gd[g_off + oy * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            bg[oc] += g;
                            for ki in 0..kh {
                                let iy = (oy * self.spec.stride_h + ki) as isize
                                    - self.spec.pad_top as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kj in 0..kw {
                                    let ix = (ox * self.spec.stride_w + kj) as isize
                                        - self.spec.pad_left as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = img_off + iy as usize * w + ix as usize;
                                    wg[w_off + ki * kw + kj] += g * xd[xi];
                                    gxd[xi] += g * wd[w_off + ki * kw + kj];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_x
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

/// Batch normalisation over `[n, c, h, w]`, per channel.
///
/// At inference the running statistics are used; [`BatchNorm2d::fold_into`]
/// merges a trained layer into the preceding convolution's weights/bias, as
/// the paper does before measuring memory footprints (§4, footnote 5).
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    std_inv: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new("bn.gamma", Tensor::ones(&[channels])),
            beta: Param::new("bn.beta", Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Returns `(scale, shift)` per channel such that
    /// `bn(x) = scale ⊙ x + shift` with the running statistics — the folding
    /// transform applied to conv weights at inference.
    pub fn fold_factors(&self) -> (Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let mut scale = Vec::with_capacity(c);
        let mut shift = Vec::with_capacity(c);
        for ch in 0..c {
            let s = self.gamma.value.data()[ch] / (self.running_var.data()[ch] + self.eps).sqrt();
            scale.push(s);
            shift.push(self.beta.value.data()[ch] - s * self.running_mean.data()[ch]);
        }
        (scale, shift)
    }

    /// Folds this layer into a preceding convolution: scales output-channel
    /// filters and rewrites the bias so the BN becomes the identity.
    pub fn fold_into(&self, conv_weight: &mut Tensor, conv_bias: &mut Tensor) {
        let (scale, shift) = self.fold_factors();
        let oc = conv_weight.dims()[0];
        assert_eq!(oc, self.channels(), "fold channel mismatch");
        let per = conv_weight.numel() / oc;
        for ch in 0..oc {
            for v in &mut conv_weight.data_mut()[ch * per..(ch + 1) * per] {
                *v *= scale[ch];
            }
            let b = conv_bias.data()[ch];
            conv_bias.data_mut()[ch] = b * scale[ch] + shift[ch];
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "BatchNorm2d expects [n, c, h, w]");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = x.clone();
        if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for s in 0..n {
                for ch in 0..c {
                    let start = (s * c + ch) * plane;
                    mean[ch] += x.data()[start..start + plane].iter().sum::<f32>();
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            for s in 0..n {
                for ch in 0..c {
                    let start = (s * c + ch) * plane;
                    var[ch] += x.data()[start..start + plane]
                        .iter()
                        .map(|&v| (v - mean[ch]).powi(2))
                        .sum::<f32>();
                }
            }
            for v in &mut var {
                *v /= count;
            }
            // Update running stats.
            for ch in 0..c {
                let rm = self.running_mean.data()[ch];
                self.running_mean.data_mut()[ch] =
                    (1.0 - self.momentum) * rm + self.momentum * mean[ch];
                let rv = self.running_var.data()[ch];
                self.running_var.data_mut()[ch] =
                    (1.0 - self.momentum) * rv + self.momentum * var[ch];
            }
            let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut x_hat = Tensor::zeros(x.dims());
            for s in 0..n {
                for ch in 0..c {
                    let start = (s * c + ch) * plane;
                    let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for i in start..start + plane {
                        let xh = (x.data()[i] - mean[ch]) * std_inv[ch];
                        x_hat.data_mut()[i] = xh;
                        out.data_mut()[i] = g * xh + b;
                    }
                }
            }
            self.cache = Some(BnCache { x_hat, std_inv });
        } else {
            let (scale, shift) = self.fold_factors();
            for s in 0..n {
                for ch in 0..c {
                    let start = (s * c + ch) * plane;
                    for i in start..start + plane {
                        out.data_mut()[i] = scale[ch] * x.data()[i] + shift[ch];
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("BatchNorm2d::backward without training forward");
        let (n, c) = (grad.dims()[0], grad.dims()[1]);
        let plane = grad.dims()[2] * grad.dims()[3];
        let count = (n * plane) as f32;
        let mut out = Tensor::zeros(grad.dims());
        for ch in 0..c {
            // Accumulate channel sums.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                let start = (s * c + ch) * plane;
                for i in start..start + plane {
                    let dy = grad.data()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[i];
                }
            }
            self.beta.grad.data_mut()[ch] += sum_dy;
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat;
            let g = self.gamma.value.data()[ch];
            let k = g * cache.std_inv[ch];
            for s in 0..n {
                let start = (s * c + ch) * plane;
                for i in start..start + plane {
                    let dy = grad.data()[i];
                    out.data_mut()[i] =
                        k * (dy - sum_dy / count - cache.x_hat.data()[i] * sum_dy_xhat / count);
                }
            }
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn name(&self) -> &'static str {
        "batch_norm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let spec = Conv2dSpec::same(49, 10, 10, 4, 2, 2);
        let mut layer = Conv2dLayer::new(1, 8, spec, &mut rng);
        let y = layer.forward(&Tensor::zeros(&[2, 1, 49, 10]), true);
        assert_eq!(y.dims(), &[2, 8, 25, 5]);
        let gx = layer.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), &[2, 1, 49, 10]);
    }

    #[test]
    fn depthwise_layer_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = Conv2dSpec::same(6, 6, 3, 3, 1, 1);
        let mut layer = DepthwiseConv2dLayer::new(4, 1, spec, &mut rng);
        let y = layer.forward(&Tensor::zeros(&[2, 4, 6, 6]), true);
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
        let gx = layer.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), &[2, 4, 6, 6]);
    }

    #[test]
    fn batchnorm_normalises_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let x = thnt_tensor::gaussian(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per channel, output should be ~N(0,1) (gamma=1, beta=0).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                for i in 0..9 {
                    vals.push(y.at(&[s, ch, i / 3, i % 3]));
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_fold_matches_inference() {
        let mut bn = BatchNorm2d::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        // Train a few batches to move the running stats.
        for _ in 0..10 {
            let x = thnt_tensor::gaussian(&[8, 3, 2, 2], 1.0, 3.0, &mut rng);
            bn.forward(&x, true);
        }
        let x = thnt_tensor::gaussian(&[2, 3, 2, 2], 1.0, 3.0, &mut rng);
        let direct = bn.forward(&x, false);
        let (scale, shift) = bn.fold_factors();
        let mut manual = x.clone();
        for s in 0..2 {
            for ch in 0..3 {
                for i in 0..4 {
                    let idx = [(s, ch, i / 2, i % 2)];
                    let v = x.at(&[idx[0].0, idx[0].1, idx[0].2, idx[0].3]);
                    manual.set(&[s, ch, i / 2, i % 2], scale[ch] * v + shift[ch]);
                }
            }
        }
        thnt_tensor::assert_close(direct.data(), manual.data(), 1e-5, 1e-5);
    }

    #[test]
    fn fold_into_conv_preserves_output() {
        let mut rng = SmallRng::seed_from_u64(4);
        let spec = Conv2dSpec::valid(3, 3, 1, 1);
        let mut conv = Conv2dLayer::new(2, 3, spec, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        for _ in 0..10 {
            let x = thnt_tensor::gaussian(&[4, 2, 5, 5], 0.0, 1.0, &mut rng);
            let y = conv.forward(&x, false);
            bn.forward(&y, true);
        }
        let x = thnt_tensor::gaussian(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let unfolded = bn.forward(&conv.forward(&x, false), false);
        let mut w = conv.weight().value.clone();
        let mut b = conv.bias().value.clone();
        bn.fold_into(&mut w, &mut b);
        conv.weight_mut().value = w;
        conv.bias_mut().value = b;
        let folded = conv.forward(&x, false);
        thnt_tensor::assert_close(folded.data(), unfolded.data(), 1e-4, 1e-4);
    }
}
