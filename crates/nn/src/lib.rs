//! From-scratch neural-network training framework for the THNT reproduction.
//!
//! The paper trains its models in TensorFlow; this crate is the substitute
//! substrate — a compact layer-wise backprop framework with exactly the
//! pieces the paper's recipe needs:
//!
//! * [`Layer`]s: dense, conv2d, depthwise conv2d, batch-norm, activations,
//!   pooling, flatten, plus LSTM/GRU recurrences for the Table 3 baselines
//! * [`Model`] / [`Sequential`] composition
//! * losses: softmax cross-entropy and the multi-class hinge loss the paper
//!   uses for tree-bearing models, plus knowledge distillation (§3)
//! * optimizers: SGD with momentum and Adam, with the paper's staged
//!   learning-rate decay ("progressively smaller learning rates after every
//!   45 epochs")
//! * a generic training loop and finite-difference gradient checking
//!
//! Gradients are computed layer-by-layer (each layer caches what its
//! backward pass needs); there is no tape. This matches the fixed,
//! feed-forward topologies of every model in the paper while keeping the
//! whole framework auditable.
//!
//! # Example
//!
//! ```
//! use thnt_nn::{Dense, Relu, Sequential, Model};
//! use thnt_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 3, &mut rng)),
//! ]);
//! let logits = net.forward(&Tensor::zeros(&[2, 4]), false);
//! assert_eq!(logits.dims(), &[2, 3]);
//! ```

// Every public item must be documented: these crates are the repo's API
// surface, and CI runs `cargo doc` with `-D warnings`.
#![warn(missing_docs)]
// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod conv_layers;
pub mod distill;
pub mod fault;
pub mod gradcheck;
pub mod infer;
pub mod io;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod param;
pub mod rnn;
pub mod trainer;

pub use conv_layers::{BatchNorm2d, Conv2dLayer, DepthwiseConv2dLayer};
pub use distill::{distill_grad, DistillConfig};
pub use fault::{FaultMode, FaultyBackend};
pub use gradcheck::check_gradients;
pub use infer::{evaluate_backend, DenseBackend, InferenceBackend, IsolatedBatch};
pub use io::{
    load_model, load_model_file, save_model, save_model_file, SectionReader, SectionWriter,
};
pub use layers::{Dense, Flatten, GlobalAvgPoolLayer, Relu, Sigmoid, Tanh};
pub use loss::{accuracy, multiclass_hinge, softmax, softmax_cross_entropy, Loss};
pub use model::{Layer, LayerModel, Model, Sequential};
pub use optim::{Adam, Optimizer, Sgd, StepDecay};
pub use param::Param;
pub use rnn::{Gru, Lstm};
pub use trainer::{evaluate, train_classifier, EpochStats, TrainConfig, TrainReport};
