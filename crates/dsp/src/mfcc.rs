//! The end-to-end MFCC extractor.
//!
//! [`Mfcc`] is a thin wrapper over the planned pipeline in
//! [`crate::plan`]: construction builds an [`MfccPlan`] (cached FFT
//! tables, sparse mel bands, folded DCT matrix) and [`Mfcc::compute`]
//! extracts frames in parallel through it. The original straight-line
//! pipeline survives as [`ReferenceMfcc`] / [`reference_mfcc`] — the
//! slow-but-obvious oracle the optimized path is tested and benchmarked
//! against.

use thnt_tensor::Tensor;

use crate::fft::power_spectrum;
use crate::mel::{mel_filterbank, MelBank};
use crate::plan::MfccPlan;
use crate::window::{frame_signal, hann_window};

/// Configuration of the MFCC pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfccConfig {
    /// Input sample rate in Hz.
    pub sample_rate: f32,
    /// Analysis frame length in samples.
    pub frame_len: usize,
    /// Hop (stride) between frames in samples.
    pub hop: usize,
    /// FFT size (power of two, ≥ `frame_len`).
    pub fft_size: usize,
    /// Number of mel filters.
    pub num_mel: usize,
    /// Number of cepstral coefficients kept after the DCT.
    pub num_coeffs: usize,
    /// Lower band edge in Hz.
    pub f_lo: f32,
    /// Upper band edge in Hz.
    pub f_hi: f32,
    /// Pre-emphasis coefficient (`0.0` disables).
    pub preemphasis: f32,
}

impl MfccConfig {
    /// The paper's configuration: 16 kHz audio, 40 ms frames, 20 ms stride,
    /// 40 mel filters, 10 coefficients → a 49×10 map for 1 s of audio.
    pub fn paper() -> Self {
        Self {
            sample_rate: 16_000.0,
            frame_len: 640,
            hop: 320,
            fft_size: 1024,
            num_mel: 40,
            num_coeffs: 10,
            f_lo: 20.0,
            f_hi: 7_600.0,
            preemphasis: 0.97,
        }
    }

    /// Number of frames produced for a signal of `num_samples` samples.
    pub fn num_frames(&self, num_samples: usize) -> usize {
        if num_samples < self.frame_len {
            0
        } else {
            (num_samples - self.frame_len) / self.hop + 1
        }
    }
}

impl Default for MfccConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// MFCC feature extractor.
///
/// Construction precomputes the full pipeline plan (window, real-FFT
/// tables, sparse mel filterbank, folded DCT matrix); [`Mfcc::compute`]
/// then turns raw audio into a `[frames, num_coeffs]` tensor, extracting
/// frames in parallel.
///
/// Pipeline: pre-emphasis → framing → Hann window → power spectrum → mel
/// filterbank → `ln(energy + ε)` → DCT-II → truncate.
///
/// Callers that manage their own buffers and threading (batched servers,
/// dataset loaders) should reach through [`Mfcc::plan`] for the
/// allocation-free [`MfccPlan::compute_into`] drivers.
#[derive(Debug, Clone)]
pub struct Mfcc {
    plan: MfccPlan,
}

impl Mfcc {
    /// Builds the extractor for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `fft_size` is smaller than `frame_len`, not a power of two,
    /// or the mel band is invalid.
    pub fn new(config: MfccConfig) -> Self {
        Self { plan: MfccPlan::new(config) }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &MfccConfig {
        self.plan.config()
    }

    /// The underlying pipeline plan, for callers that want the
    /// allocation-free `compute_into` drivers or a reusable scratch.
    pub fn plan(&self) -> &MfccPlan {
        &self.plan
    }

    /// Computes the MFCC feature map of `audio`: shape
    /// `[num_frames, num_coeffs]`.
    pub fn compute(&self, audio: &[f32]) -> Tensor {
        self.plan.compute(audio)
    }
}

/// The original per-call MFCC pipeline, kept verbatim as the testing and
/// benchmarking oracle for the planned path.
///
/// Every stage re-derives its work each call: dense complex FFT via
/// [`power_spectrum`], dense mel rows, per-frame `cos()` DCT, and a frame
/// buffer copy. Do not use in serving paths — that is the point.
#[derive(Debug, Clone)]
pub struct ReferenceMfcc {
    config: MfccConfig,
    window: Vec<f32>,
    bank: MelBank,
}

impl ReferenceMfcc {
    /// Builds the reference extractor (precomputes window and filterbank,
    /// exactly like the pre-plan implementation did).
    ///
    /// # Panics
    ///
    /// Same contract as [`Mfcc::new`].
    pub fn new(config: MfccConfig) -> Self {
        assert!(
            config.fft_size >= config.frame_len,
            "fft_size {} < frame_len {}",
            config.fft_size,
            config.frame_len
        );
        let window = hann_window(config.frame_len);
        let bank = mel_filterbank(
            config.num_mel,
            config.fft_size,
            config.sample_rate,
            config.f_lo,
            config.f_hi,
        );
        Self { config, window, bank }
    }

    /// Computes the MFCC feature map with the straight-line pipeline.
    pub fn compute(&self, audio: &[f32]) -> Tensor {
        let c = &self.config;
        // Pre-emphasis: y[t] = x[t] - a·x[t-1].
        let emphasized: Vec<f32> = if c.preemphasis > 0.0 {
            std::iter::once(audio.first().copied().unwrap_or(0.0))
                .chain(audio.windows(2).map(|w| w[1] - c.preemphasis * w[0]))
                .collect()
        } else {
            audio.to_vec()
        };
        let (frames, num_frames) = frame_signal(&emphasized, c.frame_len, c.hop);
        let mut out = Tensor::zeros(&[num_frames, c.num_coeffs]);
        let mut scratch = vec![0.0f32; c.frame_len];
        for f in 0..num_frames {
            let frame = &frames[f * c.frame_len..(f + 1) * c.frame_len];
            for ((s, &x), &w) in scratch.iter_mut().zip(frame).zip(&self.window) {
                *s = x * w;
            }
            let ps = power_spectrum(&scratch, c.fft_size);
            let mel = self.bank.apply(&ps);
            let logged: Vec<f32> = mel.iter().map(|&e| (e + 1e-6).ln()).collect();
            let coeffs = crate::dct::dct_ii(&logged, c.num_coeffs);
            out.row_mut(f).copy_from_slice(&coeffs);
        }
        out
    }
}

/// One-shot convenience wrapper over [`ReferenceMfcc`] for tests.
pub fn reference_mfcc(config: &MfccConfig, audio: &[f32]) -> Tensor {
    ReferenceMfcc::new(*config).compute(audio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f32, len: usize, fs: f32) -> Vec<f32> {
        (0..len).map(|t| (2.0 * std::f32::consts::PI * freq * t as f32 / fs).sin()).collect()
    }

    #[test]
    fn paper_shape_is_49x10() {
        let mfcc = Mfcc::new(MfccConfig::paper());
        let feats = mfcc.compute(&vec![0.0; 16_000]);
        assert_eq!(feats.dims(), &[49, 10]);
    }

    #[test]
    fn silence_gives_constant_rows() {
        let mfcc = Mfcc::new(MfccConfig::paper());
        let feats = mfcc.compute(&vec![0.0; 16_000]);
        let first = feats.row(0).to_vec();
        for f in 1..49 {
            for (a, b) in feats.row(f).iter().zip(first.iter()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn different_tones_give_different_features() {
        let mfcc = Mfcc::new(MfccConfig::paper());
        let lo = mfcc.compute(&tone(300.0, 16_000, 16_000.0));
        let hi = mfcc.compute(&tone(3_000.0, 16_000, 16_000.0));
        let dist: f32 =
            lo.data().iter().zip(hi.data()).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt();
        assert!(dist > 1.0, "tones should be separable, dist={dist}");
    }

    #[test]
    fn louder_signal_raises_c0() {
        let mfcc = Mfcc::new(MfccConfig::paper());
        let quiet = mfcc
            .compute(&tone(500.0, 16_000, 16_000.0).iter().map(|x| x * 0.1).collect::<Vec<_>>());
        let loud = mfcc.compute(&tone(500.0, 16_000, 16_000.0));
        // c0 tracks log-energy.
        assert!(loud.at(&[24, 0]) > quiet.at(&[24, 0]));
    }

    #[test]
    fn feature_count_scales_with_signal_length() {
        let mfcc = Mfcc::new(MfccConfig::paper());
        let feats = mfcc.compute(&vec![0.0; 8_000]);
        assert_eq!(feats.dims()[0], MfccConfig::paper().num_frames(8_000));
    }

    #[test]
    fn wrapper_matches_reference_on_a_tone() {
        let cfg = MfccConfig::paper();
        let mfcc = Mfcc::new(cfg);
        // Tone plus broadband noise: keeps every mel energy well above the
        // ln(e + ε) floor, where the log would amplify FFT rounding noise.
        let mut state = 0x8765_4321u32;
        let audio: Vec<f32> = tone(700.0, 16_000, 16_000.0)
            .into_iter()
            .map(|x| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                x + ((state >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 0.1
            })
            .collect();
        let got = mfcc.compute(&audio);
        let want = reference_mfcc(&cfg, &audio);
        assert_eq!(got.dims(), want.dims());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
