//! Planned real-input FFT: half-spectrum power in one N/2-point complex
//! transform.
//!
//! The streaming front-end only ever transforms *real* audio frames, yet the
//! generic [`crate::fft::fft_in_place`] path pays for a full N-point complex
//! FFT per frame — and recomputes every twiddle factor with a chain of
//! complex multiplications on every call. [`RealFft`] is the planned
//! replacement:
//!
//! * **Pack** the N real samples into an N/2-point complex buffer
//!   (`z[m] = x[2m] + i·x[2m+1]`), halving the butterfly work.
//! * **Transform** with tables computed once at plan construction: the
//!   bit-reversal permutation and one twiddle factor per butterfly
//!   (`exp(−2πik/len)` for every stage), looked up instead of accumulated —
//!   which is also *more* accurate than the iterative `w·wlen` recurrence.
//! * **Unpack** the half-spectrum using the conjugate-symmetry
//!   post-processing twiddles `W_N^k`, emitting `|X[k]|²` for the
//!   `N/2 + 1` non-negative frequency bins directly — no full complex
//!   spectrum is ever materialised.
//!
//! The plan owns no per-call state: callers pass a reusable `N/2`-element
//! [`Complex`] scratch buffer, so a hot loop performs zero allocations.

use crate::fft::Complex;

/// A precomputed real-input FFT of one fixed power-of-two size.
///
/// Construction computes the bit-reversal and twiddle tables once;
/// [`RealFft::power_into`] then produces half-spectrum power from a real
/// signal with no allocation and no trigonometry.
#[derive(Debug, Clone)]
pub struct RealFft {
    /// Full transform size N (power of two, ≥ 2).
    n: usize,
    /// N/2 — the size of the packed complex transform.
    half: usize,
    /// Bit-reversal permutation for the N/2-point transform.
    bitrev: Vec<u32>,
    /// Stage twiddles `exp(−2πik/len)` for `len = 2, 4, …, N/2`, flattened;
    /// the stage with butterfly span `len` starts at offset `len/2 − 1`.
    twiddles: Vec<Complex>,
    /// Post-processing twiddles `W_N^k = exp(−2πik/N)` for `k ≤ N/4`.
    post: Vec<Complex>,
}

impl RealFft {
    /// Builds the plan for transforms of `n` real samples.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        assert!(n >= 2, "real FFT needs at least 2 samples, got {n}");
        let half = n / 2;
        let bits = half.trailing_zeros();
        let bitrev = (0..half)
            .map(|i| if half <= 1 { 0 } else { (i.reverse_bits() >> (usize::BITS - bits)) as u32 })
            .collect();
        // One twiddle per butterfly index of every stage: stage `len` uses
        // `exp(−2πik/len)` for k in 0..len/2, stored at `len/2 − 1 + k`.
        let mut twiddles = Vec::with_capacity(half.saturating_sub(1));
        let mut len = 2usize;
        while len <= half {
            for k in 0..len / 2 {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                twiddles.push(Complex::new(angle.cos() as f32, angle.sin() as f32));
            }
            len <<= 1;
        }
        let post = (0..=half / 2)
            .map(|k| {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex::new(angle.cos() as f32, angle.sin() as f32)
            })
            .collect();
        Self { n, half, bitrev, twiddles, post }
    }

    /// The full transform size N.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Required scratch length: N/2 complex values.
    pub fn scratch_len(&self) -> usize {
        self.half
    }

    /// Number of output bins: N/2 + 1 (non-negative frequencies).
    pub fn num_bins(&self) -> usize {
        self.half + 1
    }

    /// In-place N/2-point DIT butterfly passes over `buf`, which must
    /// already be in bit-reversed order (the pack step scatters directly).
    ///
    /// The first two stages use only the trivial twiddles `1` and `−i`, so
    /// they run multiply-free; later stages iterate slice-zipped (no index
    /// arithmetic in the hot loop) over the cached twiddle table.
    fn butterflies(&self, buf: &mut [Complex]) {
        let half = self.half;
        if half >= 2 {
            for pair in buf.chunks_exact_mut(2) {
                let (u, b) = (pair[0], pair[1]);
                pair[0] = Complex::new(u.re + b.re, u.im + b.im);
                pair[1] = Complex::new(u.re - b.re, u.im - b.im);
            }
        }
        if half >= 4 {
            for quad in buf.chunks_exact_mut(4) {
                let (u0, u1, b0, b1) = (quad[0], quad[1], quad[2], quad[3]);
                // Twiddle of the odd butterfly is −i: (re, im) → (im, −re).
                let v1 = Complex::new(b1.im, -b1.re);
                quad[0] = Complex::new(u0.re + b0.re, u0.im + b0.im);
                quad[2] = Complex::new(u0.re - b0.re, u0.im - b0.im);
                quad[1] = Complex::new(u1.re + v1.re, u1.im + v1.im);
                quad[3] = Complex::new(u1.re - v1.re, u1.im - v1.im);
            }
        }
        let mut len = 8usize;
        while len <= half {
            let tw = &self.twiddles[len / 2 - 1..len - 1];
            for chunk in buf.chunks_exact_mut(len) {
                let (a, b) = chunk.split_at_mut(len / 2);
                for ((x, y), &w) in a.iter_mut().zip(b.iter_mut()).zip(tw) {
                    let v = Complex::new(y.re * w.re - y.im * w.im, y.re * w.im + y.im * w.re);
                    *y = Complex::new(x.re - v.re, x.im - v.im);
                    *x = Complex::new(x.re + v.re, x.im + v.im);
                }
            }
            len <<= 1;
        }
    }

    /// Power spectrum of a real signal, zero-padded to N: writes
    /// `|X[k]|² / N` for `k = 0..=N/2` into `out` (periodogram convention,
    /// matching [`crate::fft::power_spectrum`]).
    ///
    /// `scratch` is caller-owned reusable workspace; its prior contents are
    /// ignored and overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > N`, `scratch.len() != N/2`, or
    /// `out.len() != N/2 + 1`.
    pub fn power_into(&self, signal: &[f32], scratch: &mut [Complex], out: &mut [f32]) {
        let (n, half) = (self.n, self.half);
        assert!(signal.len() <= n, "signal ({}) longer than fft size ({n})", signal.len());
        assert_eq!(scratch.len(), half, "scratch length must be N/2");
        assert_eq!(out.len(), half + 1, "output length must be N/2 + 1");
        // Pack `z[m] = x[2m] + i·x[2m+1]` scattered straight into
        // bit-reversed order (bit reversal is an involution), fusing the
        // permutation pass into the fill; unwritten slots are the zero pad.
        scratch.fill(Complex::default());
        let pairs = signal.len() / 2;
        for (m, pair) in signal.chunks_exact(2).enumerate() {
            scratch[self.bitrev[m] as usize] = Complex::new(pair[0], pair[1]);
        }
        if signal.len() % 2 == 1 {
            scratch[self.bitrev[pairs] as usize] = Complex::new(signal[signal.len() - 1], 0.0);
        }
        self.butterflies(scratch);
        // Unpack via conjugate symmetry. For k in 1..=N/4 with j = N/2 − k:
        //   Ze = (Z[k] + conj(Z[j])) / 2     (spectrum of the even samples)
        //   Zo = (Z[k] − conj(Z[j])) / 2i    (spectrum of the odd samples)
        //   X[k] = Ze + W_N^k·Zo,   X[j] = conj(Ze − W_N^k·Zo)
        // and the conjugation is irrelevant to |X|². DC and Nyquist come
        // straight from Z[0].
        let inv_n = 1.0 / n as f32;
        let z0 = scratch[0];
        out[0] = (z0.re + z0.im) * (z0.re + z0.im) * inv_n;
        out[half] = (z0.re - z0.im) * (z0.re - z0.im) * inv_n;
        for k in 1..=half / 2 {
            let j = half - k;
            let (zk, zj) = (scratch[k], scratch[j]);
            let ze = Complex::new((zk.re + zj.re) * 0.5, (zk.im - zj.im) * 0.5);
            let zo = Complex::new((zk.im + zj.im) * 0.5, (zj.re - zk.re) * 0.5);
            let w = self.post[k];
            let t = Complex::new(zo.re * w.re - zo.im * w.im, zo.re * w.im + zo.im * w.re);
            let xk = Complex::new(ze.re + t.re, ze.im + t.im);
            let xj = Complex::new(ze.re - t.re, ze.im - t.im);
            out[k] = xk.norm_sq() * inv_n;
            out[j] = xj.norm_sq() * inv_n;
        }
    }

    /// Allocating convenience wrapper around [`RealFft::power_into`].
    pub fn power(&self, signal: &[f32]) -> Vec<f32> {
        let mut scratch = vec![Complex::default(); self.half];
        let mut out = vec![0.0f32; self.half + 1];
        self.power_into(signal, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::power_spectrum;

    #[test]
    fn matches_complex_path_on_a_tone() {
        let n = 512;
        let signal: Vec<f32> = (0..n)
            .map(|t| (2.0 * std::f32::consts::PI * 1000.0 * t as f32 / 16_000.0).sin())
            .collect();
        let plan = RealFft::new(n);
        let fast = plan.power(&signal);
        let slow = power_spectrum(&signal, n);
        assert_eq!(fast.len(), slow.len());
        for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((a - b).abs() < 1e-3, "bin {k}: {a} vs {b}");
        }
    }

    #[test]
    fn handles_zero_padding_and_odd_lengths() {
        for sig_len in [0usize, 1, 7, 100, 128] {
            let signal: Vec<f32> =
                (0..sig_len).map(|t| ((t * 37 % 19) as f32 - 9.0) / 9.0).collect();
            let plan = RealFft::new(128);
            let fast = plan.power(&signal);
            let slow = power_spectrum(&signal, 128);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-4, "len {sig_len} bin {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn smallest_size_is_exact() {
        // N = 2: X[0] = x0 + x1, X[1] = x0 − x1.
        let plan = RealFft::new(2);
        let p = plan.power(&[3.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert!((p[0] - 16.0 / 2.0).abs() < 1e-6);
        assert!((p[1] - 4.0 / 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        RealFft::new(12);
    }

    #[test]
    fn tables_have_expected_sizes() {
        let plan = RealFft::new(1024);
        assert_eq!(plan.scratch_len(), 512);
        assert_eq!(plan.num_bins(), 513);
        assert_eq!(plan.twiddles.len(), 511);
        assert_eq!(plan.post.len(), 257);
    }
}
