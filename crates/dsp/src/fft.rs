//! Iterative radix-2 Cooley–Tukey FFT.

/// A complex number over `f32`, sufficient for spectral analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// The squared magnitude `re² + im²`.
    pub fn norm_sq(&self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let angle = -2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2].mul(w);
                buf[start + k] = u.add(v);
                buf[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Power spectrum of a real signal, zero-padded to `fft_size`.
///
/// Returns `fft_size / 2 + 1` values: `|X[k]|²` for the non-negative
/// frequencies, scaled by `1 / fft_size` (periodogram convention).
///
/// # Panics
///
/// Panics if `fft_size` is not a power of two or `signal.len() > fft_size`.
pub fn power_spectrum(signal: &[f32], fft_size: usize) -> Vec<f32> {
    assert!(fft_size.is_power_of_two(), "fft_size must be a power of two");
    assert!(
        signal.len() <= fft_size,
        "signal ({}) longer than fft_size ({fft_size})",
        signal.len()
    );
    let mut buf = vec![Complex::default(); fft_size];
    for (b, &s) in buf.iter_mut().zip(signal.iter()) {
        b.re = s;
    }
    fft_in_place(&mut buf);
    buf[..fft_size / 2 + 1].iter().map(|c| c.norm_sq() / fft_size as f32).collect()
}

/// Naïve O(n²) DFT used as the FFT test oracle.
pub fn dft_reference(signal: &[Complex]) -> Vec<Complex> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, x) in signal.iter().enumerate() {
                let angle = -2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32;
                acc = acc.add(x.mul(Complex::new(angle.cos(), angle.sin())));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_complex_close(a: &[Complex], b: &[Complex], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fft_matches_dft_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for &n in &[2usize, 8, 64, 256] {
            let signal: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut fast = signal.clone();
            fft_in_place(&mut fast);
            let slow = dft_reference(&signal);
            assert_complex_close(&fast, &slow, 1e-2 * (n as f32).sqrt());
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 16];
        buf[0].re = 1.0;
        fft_in_place(&mut buf);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        // A 1 kHz tone at 16 kHz sampled into a 512-point FFT lands in bin 32.
        let n = 512;
        let fs = 16_000.0;
        let f = 1_000.0;
        let signal: Vec<f32> =
            (0..n).map(|t| (2.0 * std::f32::consts::PI * f * t as f32 / fs).sin()).collect();
        let ps = power_spectrum(&signal, n);
        let peak = ps.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, 32);
    }

    #[test]
    fn parseval_energy_conservation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let n = 128;
        let signal: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let time_energy: f32 = signal.iter().map(|c| c.norm_sq()).sum();
        let mut freq = signal.clone();
        fft_in_place(&mut freq);
        let freq_energy: f32 = freq.iter().map(|c| c.norm_sq()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = [Complex::default(); 12];
        fft_in_place(&mut buf);
    }

    #[test]
    fn power_spectrum_length() {
        assert_eq!(power_spectrum(&[0.0; 100], 1024).len(), 513);
    }
}
