//! Orthonormal DCT-II (the "MFCC DCT").

/// Computes the first `num_coeffs` coefficients of the orthonormal DCT-II of
/// `input`.
///
/// `X[k] = s(k) · Σ_n x[n] · cos(π k (2n + 1) / (2N))` with
/// `s(0) = sqrt(1/N)` and `s(k>0) = sqrt(2/N)`, which makes the transform
/// orthonormal (energy-preserving when all coefficients are kept).
///
/// # Panics
///
/// Panics if `input` is empty or `num_coeffs > input.len()`.
pub fn dct_ii(input: &[f32], num_coeffs: usize) -> Vec<f32> {
    let n = input.len();
    assert!(n > 0, "dct of empty input");
    assert!(num_coeffs <= n, "cannot keep {num_coeffs} coefficients of {n} inputs");
    let norm0 = (1.0 / n as f32).sqrt();
    let norm = (2.0 / n as f32).sqrt();
    (0..num_coeffs)
        .map(|k| {
            let scale = if k == 0 { norm0 } else { norm };
            let acc: f32 = input
                .iter()
                .enumerate()
                .map(|(t, &x)| {
                    x * (std::f32::consts::PI * k as f32 * (2 * t + 1) as f32 / (2 * n) as f32)
                        .cos()
                })
                .sum();
            scale * acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_component_of_constant_signal() {
        let x = vec![2.0f32; 8];
        let c = dct_ii(&x, 8);
        // X[0] = sqrt(1/8) * 16
        assert!((c[0] - (1.0f32 / 8.0).sqrt() * 16.0).abs() < 1e-5);
        for k in 1..8 {
            assert!(c[k].abs() < 1e-5, "coefficient {k} should vanish");
        }
    }

    #[test]
    fn orthonormal_energy_preservation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let x: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let c = dct_ii(&x, 32);
        let ex: f32 = x.iter().map(|v| v * v).sum();
        let ec: f32 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-3 * ex.max(1.0), "{ex} vs {ec}");
    }

    #[test]
    fn truncation_keeps_prefix() {
        let x: Vec<f32> = (0..16).map(|t| (t as f32 * 0.3).sin()).collect();
        let full = dct_ii(&x, 16);
        let short = dct_ii(&x, 5);
        assert_eq!(&full[..5], short.as_slice());
    }

    #[test]
    fn basis_orthogonality() {
        // DCT of a DCT basis vector has a single non-zero coefficient.
        let n = 16;
        let k0 = 3;
        let norm = (2.0 / n as f32).sqrt();
        let basis: Vec<f32> = (0..n)
            .map(|t| {
                norm * (std::f32::consts::PI * k0 as f32 * (2 * t + 1) as f32 / (2 * n) as f32)
                    .cos()
            })
            .collect();
        let c = dct_ii(&basis, n);
        for (k, &v) in c.iter().enumerate() {
            if k == k0 {
                assert!((v - 1.0).abs() < 1e-4);
            } else {
                assert!(v.abs() < 1e-4, "leakage at {k}: {v}");
            }
        }
    }
}
