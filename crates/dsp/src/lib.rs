//! Audio front-end for the THNT reproduction: FFT, mel filterbank, DCT-II and
//! the full MFCC pipeline.
//!
//! The paper converts 1-second, 16 kHz audio into a 49×10 MFCC feature map
//! (40 ms frames, 20 ms stride, 40 mel filters, first 10 DCT coefficients),
//! following Zhang et al.'s *Hello Edge* preprocessing. [`Mfcc`] implements
//! exactly that pipeline from first principles; every stage is unit-tested
//! against a naïve reference (DFT, hand-rolled cosine transform).
//!
//! # Example
//!
//! ```
//! use thnt_dsp::{Mfcc, MfccConfig};
//!
//! let mfcc = Mfcc::new(MfccConfig::paper());
//! let audio = vec![0.0f32; 16_000]; // 1 s of silence
//! let feats = mfcc.compute(&audio);
//! assert_eq!(feats.dims(), &[49, 10]);
//! ```

// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod dct;
pub mod fft;
pub mod mel;
pub mod mfcc;
pub mod window;

pub use dct::dct_ii;
pub use fft::{fft_in_place, power_spectrum, Complex};
pub use mel::{hz_to_mel, mel_filterbank, mel_to_hz, MelBank};
pub use mfcc::{Mfcc, MfccConfig};
pub use window::{frame_signal, hann_window};
