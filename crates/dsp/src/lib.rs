//! Audio front-end for the THNT reproduction: FFT, mel filterbank, DCT-II and
//! the full MFCC pipeline.
//!
//! The paper converts 1-second, 16 kHz audio into a 49×10 MFCC feature map
//! (40 ms frames, 20 ms stride, 40 mel filters, first 10 DCT coefficients),
//! following Zhang et al.'s *Hello Edge* preprocessing. [`Mfcc`] implements
//! exactly that pipeline from first principles; every stage is unit-tested
//! against a naïve reference (DFT, hand-rolled cosine transform).
//!
//! The serving hot path runs through [`MfccPlan`] — a fully precomputed
//! pipeline (real-input FFT with cached tables, sparse mel band matrix,
//! folded DCT) with reusable scratch and SIMD-dispatched inner loops. The
//! straight-line pipeline survives as [`mfcc::ReferenceMfcc`], the oracle
//! the planned path is tested against. See `docs/ARCHITECTURE.md` for the
//! design.
//!
//! # Example
//!
//! ```
//! use thnt_dsp::{Mfcc, MfccConfig};
//!
//! let mfcc = Mfcc::new(MfccConfig::paper());
//! let audio = vec![0.0f32; 16_000]; // 1 s of silence
//! let feats = mfcc.compute(&audio);
//! assert_eq!(feats.dims(), &[49, 10]);
//! ```

#![warn(missing_docs)]
// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod dct;
pub mod fft;
pub mod mel;
pub mod mfcc;
pub mod plan;
pub mod rfft;
pub mod simd;
pub mod window;

pub use dct::dct_ii;
pub use fft::{fft_in_place, power_spectrum, Complex};
pub use mel::{hz_to_mel, mel_filterbank, mel_to_hz, MelBank};
pub use mfcc::{reference_mfcc, Mfcc, MfccConfig, ReferenceMfcc};
pub use plan::{MfccPlan, MfccScratch};
pub use rfft::RealFft;
pub use simd::{DspDispatch, DspKernel};
pub use window::{frame_signal, hann_window};
