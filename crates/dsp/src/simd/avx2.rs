//! AVX2 implementations of the front-end primitives: 8-lane dot products
//! and a Cephes-style polynomial `ln`.
//!
//! The dot product keeps two independent 8-lane accumulators (breaking the
//! addition dependency chain, same trick as the packed matvec kernel) and
//! folds them at the end; the ragged tail is scalar. The log follows the
//! classic `sse_mathfun` / Cephes `logf` reduction: split the float into
//! exponent and mantissa, normalise the mantissa into `[√½, √2)`, evaluate
//! a degree-9 polynomial, and reassemble with `e·ln 2` split into a
//! high/low pair so the result keeps full f32 accuracy (absolute error
//! ≲ 3e-7 across the normal range). Inputs are clamped to the smallest
//! positive normal, so zero mel energies resolve to `ln(ε)` rather than
//! `-inf` garbage — callers add ε before the call.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_and_ps, _mm256_castps256_ps128, _mm256_castps_si256,
    _mm256_castsi256_ps, _mm256_cmp_ps, _mm256_cvtepi32_ps, _mm256_extractf128_ps, _mm256_loadu_ps,
    _mm256_max_ps, _mm256_mul_ps, _mm256_or_ps, _mm256_set1_epi32, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_srli_epi32, _mm256_storeu_ps, _mm256_sub_epi32, _mm256_sub_ps,
    _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_movehl_ps, _mm_shuffle_ps, _CMP_LT_OQ,
};

use super::LOG_EPS;

/// Horizontal sum of all 8 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256) -> f32 {
    let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    _mm_cvtss_f32(_mm_add_ss(s, _mm_shuffle_ps(s, s, 1)))
}

/// `Σ a[i]·b[i]` with two 8-lane accumulators and a scalar tail.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime. Slices must have
/// equal length.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let (mut acc0, mut acc1) = (_mm256_setzero_ps(), _mm256_setzero_ps());
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = _mm256_add_ps(
            acc0,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
        );
        acc1 = _mm256_add_ps(
            acc1,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8))),
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm256_add_ps(
            acc0,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
        );
        i += 8;
    }
    let mut sum = hsum(_mm256_add_ps(acc0, acc1));
    for j in i..n {
        sum += a[j] * b[j];
    }
    sum
}

/// 8-lane natural log via the Cephes reduction; valid for `x > 0`.
// The polynomial and ln2-split constants are Cephes' exact literals;
// 0.693_359_375 in particular is 355/512, the hi half of the split, and
// must not be "simplified" to a shorter decimal.
#[allow(clippy::excessive_precision)]
#[target_feature(enable = "avx2")]
unsafe fn ln_ps(x: __m256) -> __m256 {
    let one = _mm256_set1_ps(1.0);
    // Clamp away zeros/denormals; callers guarantee positivity.
    let x = _mm256_max_ps(x, _mm256_set1_ps(f32::MIN_POSITIVE));
    let xi = _mm256_castps_si256(x);
    // Unbiased exponent + 1 (the mantissa below is folded into [0.5, 1)).
    let emm0 = _mm256_sub_epi32(_mm256_srli_epi32::<23>(xi), _mm256_set1_epi32(0x7e));
    let mut e = _mm256_cvtepi32_ps(emm0);
    // Mantissa in [0.5, 1): keep the fraction bits, force exponent of 0.5.
    let mant = _mm256_or_ps(
        _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(0x007f_ffff))),
        _mm256_set1_ps(0.5),
    );
    // Normalise into [√½, √2): below √½, double the mantissa and drop the
    // exponent by one.
    let mask = _mm256_cmp_ps::<_CMP_LT_OQ>(mant, _mm256_set1_ps(std::f32::consts::FRAC_1_SQRT_2));
    let tmp = _mm256_and_ps(mant, mask);
    let m = _mm256_add_ps(_mm256_sub_ps(mant, one), tmp);
    e = _mm256_sub_ps(e, _mm256_and_ps(one, mask));
    // Degree-9 Cephes polynomial for ln(1 + m).
    let z = _mm256_mul_ps(m, m);
    let mut y = _mm256_set1_ps(7.037_683_6e-2);
    for &c in &[
        -1.151_461e-1,
        1.167_699_9e-1,
        -1.242_014_1e-1,
        1.424_932_3e-1,
        -1.666_805_7e-1,
        2.000_071_5e-1,
        -2.499_999_4e-1,
        3.333_333_1e-1,
    ] {
        y = _mm256_add_ps(_mm256_mul_ps(y, m), _mm256_set1_ps(c));
    }
    y = _mm256_mul_ps(_mm256_mul_ps(y, m), z);
    // e·ln2 split into a low/high pair for accuracy.
    y = _mm256_add_ps(y, _mm256_mul_ps(e, _mm256_set1_ps(-2.121_944_4e-4)));
    y = _mm256_sub_ps(y, _mm256_mul_ps(z, _mm256_set1_ps(0.5)));
    let r = _mm256_add_ps(m, y);
    _mm256_add_ps(r, _mm256_mul_ps(e, _mm256_set1_ps(0.693_359_375)))
}

/// `dst[i] = ln(src[i] + ε)`: full 8-lane blocks through [`ln_ps`], the
/// ragged tail through scalar `f32::ln`.
///
/// # Safety
///
/// The caller must have verified AVX2 support at runtime. Slices must have
/// equal length; inputs must be non-negative.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn ln_eps(src: &[f32], dst: &mut [f32]) {
    let n = src.len();
    let eps = _mm256_set1_ps(LOG_EPS);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_add_ps(_mm256_loadu_ps(src.as_ptr().add(i)), eps);
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), ln_ps(v));
        i += 8;
    }
    for j in i..n {
        dst[j] = (src[j] + LOG_EPS).ln();
    }
}
