//! Runtime-dispatched SIMD primitives for the MFCC hot loops.
//!
//! [`crate::plan::MfccPlan`] spends its per-frame time in two dense f32
//! loops: the sparse mel-band **dot products** (filter weights × power
//! spectrum, and the folded DCT matrix × log energies) and the
//! **log-energy** pass `ln(e + ε)` over the mel outputs. This module gives
//! both a scalar reference and SIMD implementations behind the same
//! dispatch discipline as `thnt_strassen::packed::kernel`:
//!
//! * the backend is resolved **once** per process by [`DspDispatch::get`],
//! * the `THNT_KERNEL` environment variable (`scalar` | `avx2` | `neon`)
//!   forces a backend — the *same* names and values the packed inference
//!   kernels accept, so one override pins the whole serving path,
//! * an unknown or unsupported value aborts loudly instead of silently
//!   falling back (a benchmark reporting a silently-degraded backend would
//!   report fiction).
//!
//! # Exactness
//!
//! The scalar backend sums strictly left-to-right and takes logs through
//! `f32::ln`. The SIMD backends keep lane-parallel partial sums folded at
//! the end (reassociation ⇒ agreement to rounding, not bitwise) and
//! evaluate `ln` with a Cephes-style polynomial after exponent/mantissa
//! splitting (absolute error below ~1e-6 for the positive inputs the
//! pipeline produces — two orders of magnitude inside the front-end's 1e-4
//! feature tolerance). Within one backend, results are deterministic.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "aarch64")]
mod neon;

/// The `ε` in the front-end's `ln(energy + ε)` — shared by every backend
/// and by the legacy reference pipeline.
pub const LOG_EPS: f32 = 1e-6;

/// A DSP compute-backend identity. Mirrors
/// `thnt_strassen::packed::kernel::Kernel`: same names, same `THNT_KERNEL`
/// values, same loud-failure contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DspKernel {
    /// Portable reference: left-to-right sums, `f32::ln` (always available).
    Scalar,
    /// 8-lane AVX2 dot products and polynomial log (x86_64 with AVX2).
    Avx2,
    /// 4-lane NEON dot products and polynomial log (aarch64).
    Neon,
}

impl DspKernel {
    /// The backend's stable lowercase name — the value `THNT_KERNEL`
    /// accepts.
    pub fn name(&self) -> &'static str {
        match self {
            DspKernel::Scalar => "scalar",
            DspKernel::Avx2 => "avx2",
            DspKernel::Neon => "neon",
        }
    }

    /// Parses a `THNT_KERNEL` value.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for anything other than `scalar`,
    /// `avx2` or `neon`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(DspKernel::Scalar),
            "avx2" => Ok(DspKernel::Avx2),
            "neon" => Ok(DspKernel::Neon),
            other => Err(format!(
                "unknown THNT_KERNEL value {other:?}: expected \"scalar\", \"avx2\" or \"neon\""
            )),
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_supported(&self) -> bool {
        match self {
            DspKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            DspKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            DspKernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every backend the current host supports, widest first
    /// ([`DspKernel::Scalar`] is always present and always last).
    pub fn available() -> Vec<DspKernel> {
        [DspKernel::Avx2, DspKernel::Neon, DspKernel::Scalar]
            .into_iter()
            .filter(DspKernel::is_supported)
            .collect()
    }

    /// The widest backend the current host supports.
    pub fn detect() -> DspKernel {
        DspKernel::available()[0]
    }
}

impl std::fmt::Display for DspKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A resolved DSP backend handle — the front-end analogue of
/// `thnt_strassen::packed::kernel::KernelDispatch`.
///
/// # Examples
///
/// ```
/// use thnt_dsp::simd::{DspDispatch, DspKernel};
///
/// // The process default: THNT_KERNEL override or runtime detection.
/// let active = DspDispatch::get();
/// assert!(active.kernel().is_supported());
///
/// // An explicit handle for a specific backend.
/// let scalar = DspDispatch::new(DspKernel::Scalar).unwrap();
/// assert_eq!(scalar.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DspDispatch {
    kernel: DspKernel,
}

static ACTIVE: OnceLock<DspDispatch> = OnceLock::new();

impl DspDispatch {
    /// Wraps a specific backend.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if the backend is not supported on the
    /// current host.
    pub fn new(kernel: DspKernel) -> Result<Self, String> {
        if kernel.is_supported() {
            Ok(Self { kernel })
        } else {
            Err(format!("kernel {:?} is not supported on this host", kernel.name()))
        }
    }

    /// The process-wide dispatch handle, resolved once on first use:
    /// `THNT_KERNEL` if set, otherwise the widest backend runtime detection
    /// finds.
    ///
    /// # Panics
    ///
    /// Panics if `THNT_KERNEL` names an unknown or unsupported backend.
    pub fn get() -> &'static DspDispatch {
        ACTIVE.get_or_init(|| match Self::resolve(std::env::var("THNT_KERNEL").ok().as_deref()) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        })
    }

    /// The resolution rule behind [`Self::get`], parameterised over the
    /// `THNT_KERNEL` value so tests can exercise it without mutating the
    /// process environment: `None` detects, `Some(name)` forces.
    ///
    /// # Errors
    ///
    /// Returns the parse/support error for an unknown or unsupported
    /// override.
    pub fn resolve(env: Option<&str>) -> Result<Self, String> {
        match env {
            None => Self::new(DspKernel::detect()),
            Some(name) => Self::new(DspKernel::parse(name)?),
        }
    }

    /// The backend this handle routes to.
    pub fn kernel(&self) -> DspKernel {
        self.kernel
    }

    /// Dot product `Σ a[i]·b[i]`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slices differ in length.
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dot operand length mismatch");
        match self.kernel {
            DspKernel::Scalar => dot_scalar(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `DspDispatch` construction verified AVX2 support.
            DspKernel::Avx2 => unsafe { avx2::dot(a, b) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `DspDispatch` construction verified NEON support.
            DspKernel::Neon => unsafe { neon::dot(a, b) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }

    /// The log-energy pass: `dst[i] = ln(src[i] + ε)` with
    /// `ε =` [`LOG_EPS`]. Inputs must be non-negative (mel energies are
    /// sums of non-negative terms); the SIMD polynomial is undefined for
    /// `src[i] + ε ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slices differ in length.
    #[inline]
    pub fn ln_eps(&self, src: &[f32], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len(), "ln_eps operand length mismatch");
        match self.kernel {
            DspKernel::Scalar => ln_eps_scalar(src, dst),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `DspDispatch` construction verified AVX2 support.
            DspKernel::Avx2 => unsafe { avx2::ln_eps(src, dst) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `DspDispatch` construction verified NEON support.
            DspKernel::Neon => unsafe { neon::ln_eps(src, dst) },
            #[allow(unreachable_patterns)]
            other => unreachable!("unsupported kernel {other:?} escaped construction"),
        }
    }
}

/// Scalar reference dot product: strict left-to-right accumulation.
#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Scalar reference log-energy: `f32::ln` per element.
#[inline]
fn ln_eps_scalar(src: &[f32], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (s + LOG_EPS).ln();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_mirror_the_packed_kernel_contract() {
        assert_eq!(DspKernel::parse("scalar").unwrap(), DspKernel::Scalar);
        assert_eq!(DspKernel::parse("avx2").unwrap(), DspKernel::Avx2);
        assert_eq!(DspKernel::parse("neon").unwrap(), DspKernel::Neon);
        for bad in ["", "AVX2", "sse", "auto", "scalar "] {
            assert!(DspKernel::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn scalar_is_always_supported_and_listed_last() {
        assert!(DspKernel::Scalar.is_supported());
        let avail = DspKernel::available();
        assert_eq!(*avail.last().unwrap(), DspKernel::Scalar);
        assert!(avail.contains(&DspKernel::detect()));
    }

    #[test]
    fn resolve_rejects_unknown_values_loudly() {
        let err = DspDispatch::resolve(Some("turbo")).unwrap_err();
        assert!(err.contains("unknown THNT_KERNEL"), "got: {err}");
    }

    #[cfg(not(target_arch = "aarch64"))]
    #[test]
    fn resolve_rejects_unsupported_backends_loudly() {
        let err = DspDispatch::resolve(Some("neon")).unwrap_err();
        assert!(err.contains("not supported"), "got: {err}");
    }

    #[test]
    fn get_honours_the_environment_like_the_packed_dispatch() {
        let d = DspDispatch::get();
        assert!(d.kernel().is_supported());
        if let Ok(name) = std::env::var("THNT_KERNEL") {
            assert_eq!(d.kernel().name(), name, "override must win");
        }
    }

    #[test]
    fn every_backend_computes_dot_and_log() {
        for k in DspKernel::available() {
            let d = DspDispatch::new(k).unwrap();
            let a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..67).map(|i| (i as f32 * 0.11).cos()).collect();
            let want = dot_scalar(&a, &b);
            let got = d.dot(&a, &b);
            assert!((got - want).abs() < 1e-4, "{k} dot: {got} vs {want}");

            let src: Vec<f32> = (0..41).map(|i| (i as f32 * 0.7).exp() * 1e-4).collect();
            let mut dst = vec![0.0f32; src.len()];
            d.ln_eps(&src, &mut dst);
            for (i, (&s, &l)) in src.iter().zip(&dst).enumerate() {
                let want = (s + LOG_EPS).ln();
                assert!((l - want).abs() < 1e-5, "{k} ln_eps[{i}]: {l} vs {want}");
            }
        }
    }

    #[test]
    fn ln_eps_handles_zero_energy() {
        // Silence produces exactly-zero mel energies; ln(ε) must come out.
        for k in DspKernel::available() {
            let d = DspDispatch::new(k).unwrap();
            let src = [0.0f32; 9];
            let mut dst = [0.0f32; 9];
            d.ln_eps(&src, &mut dst);
            for &l in &dst {
                assert!((l - LOG_EPS.ln()).abs() < 1e-4, "{k}: ln(ε) = {l}");
            }
        }
    }
}
