//! NEON implementations of the front-end primitives: 4-lane dot products
//! and the same Cephes-style polynomial `ln` as the AVX2 backend.
//!
//! The design mirrors `avx2.rs` at half the lane width. Compile-gated to
//! aarch64; CI cross-checks the build (`cargo check --target
//! aarch64-unknown-linux-gnu`) but runtime behaviour is only provable on
//! arm hardware — same caveat as the packed NEON kernel.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::aarch64::{
    float32x4_t, vaddq_f32, vaddvq_f32, vandq_u32, vbslq_f32, vcltq_f32, vcvtq_f32_s32,
    vdupq_n_f32, vdupq_n_s32, vdupq_n_u32, vld1q_f32, vmaxq_f32, vmulq_f32, vorrq_u32,
    vreinterpretq_f32_u32, vreinterpretq_s32_u32, vreinterpretq_u32_f32, vshrq_n_u32, vst1q_f32,
    vsubq_f32, vsubq_s32,
};

use super::LOG_EPS;

/// `Σ a[i]·b[i]` with two 4-lane accumulators and a scalar tail.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime. Slices must have
/// equal length.
#[target_feature(enable = "neon")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let (mut acc0, mut acc1) = (vdupq_n_f32(0.0), vdupq_n_f32(0.0));
    let mut i = 0usize;
    while i + 8 <= n {
        acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i))));
        acc1 = vaddq_f32(acc1, vmulq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4))));
        i += 8;
    }
    if i + 4 <= n {
        acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i))));
        i += 4;
    }
    let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
    for j in i..n {
        sum += a[j] * b[j];
    }
    sum
}

/// 4-lane natural log via the Cephes reduction; valid for `x > 0`.
// Cephes' exact literals; 0.693_359_375 is 355/512, the hi half of the
// ln2 split, and must not be "simplified" to a shorter decimal.
#[allow(clippy::excessive_precision)]
#[target_feature(enable = "neon")]
unsafe fn ln_q(x: float32x4_t) -> float32x4_t {
    let one = vdupq_n_f32(1.0);
    let x = vmaxq_f32(x, vdupq_n_f32(f32::MIN_POSITIVE));
    let xi = vreinterpretq_u32_f32(x);
    // Unbiased exponent + 1 (the mantissa below is folded into [0.5, 1)).
    let emm0 = vsubq_s32(vreinterpretq_s32_u32(vshrq_n_u32::<23>(xi)), vdupq_n_s32(0x7e));
    let mut e = vcvtq_f32_s32(emm0);
    // Mantissa in [0.5, 1): keep the fraction bits, force exponent of 0.5.
    let mant = vreinterpretq_f32_u32(vorrq_u32(
        vandq_u32(xi, vdupq_n_u32(0x007f_ffff)),
        vdupq_n_u32(0x3f00_0000),
    ));
    // Normalise into [√½, √2).
    let mask = vcltq_f32(mant, vdupq_n_f32(std::f32::consts::FRAC_1_SQRT_2));
    let tmp = vbslq_f32(mask, mant, vdupq_n_f32(0.0));
    let m = vaddq_f32(vsubq_f32(mant, one), tmp);
    e = vsubq_f32(e, vbslq_f32(mask, one, vdupq_n_f32(0.0)));
    // Degree-9 Cephes polynomial for ln(1 + m).
    let z = vmulq_f32(m, m);
    let mut y = vdupq_n_f32(7.037_683_6e-2);
    for &c in &[
        -1.151_461e-1,
        1.167_699_9e-1,
        -1.242_014_1e-1,
        1.424_932_3e-1,
        -1.666_805_7e-1,
        2.000_071_5e-1,
        -2.499_999_4e-1,
        3.333_333_1e-1,
    ] {
        y = vaddq_f32(vmulq_f32(y, m), vdupq_n_f32(c));
    }
    y = vmulq_f32(vmulq_f32(y, m), z);
    y = vaddq_f32(y, vmulq_f32(e, vdupq_n_f32(-2.121_944_4e-4)));
    y = vsubq_f32(y, vmulq_f32(z, vdupq_n_f32(0.5)));
    let r = vaddq_f32(m, y);
    vaddq_f32(r, vmulq_f32(e, vdupq_n_f32(0.693_359_375)))
}

/// `dst[i] = ln(src[i] + ε)`: full 4-lane blocks through [`ln_q`], the
/// ragged tail through scalar `f32::ln`.
///
/// # Safety
///
/// The caller must have verified NEON support at runtime. Slices must have
/// equal length; inputs must be non-negative.
#[target_feature(enable = "neon")]
pub(super) unsafe fn ln_eps(src: &[f32], dst: &mut [f32]) {
    let n = src.len();
    let eps = vdupq_n_f32(LOG_EPS);
    let mut i = 0usize;
    while i + 4 <= n {
        let v = vaddq_f32(vld1q_f32(src.as_ptr().add(i)), eps);
        vst1q_f32(dst.as_mut_ptr().add(i), ln_q(v));
        i += 4;
    }
    for j in i..n {
        dst[j] = (src[j] + LOG_EPS).ln();
    }
}
