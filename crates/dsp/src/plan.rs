//! The planned MFCC front-end: every table computed once, every per-frame
//! temporary reused.
//!
//! The original per-call pipeline ([`crate::mfcc::reference_mfcc`], kept as
//! the testing oracle) re-derived its trigonometry on every frame: a full
//! complex FFT with iteratively-accumulated twiddles, a dense 40×513 mel
//! product, and — worst of all — 400 fresh `cos()` evaluations per frame
//! inside `dct_ii`, plus a `Complex` buffer allocation per power spectrum.
//! At the paper's 49-frames-per-second-window geometry that made MFCC the
//! serving bottleneck (~2.4 ms/window against ~0.3 ms of packed inference).
//!
//! [`MfccPlan`] precomputes all of it at construction:
//!
//! * the Hann window,
//! * a real-input half-spectrum FFT plan ([`RealFft`]: bit-reversal and
//!   twiddle tables, conjugate-symmetry unpacking),
//! * the mel filterbank as a **sparse band matrix** — each triangular
//!   filter stored as `(start_bin, weights)` so applying it is one short
//!   dot product instead of a 513-wide row scan,
//! * the DCT-II folded into a `num_coeffs × num_mel` matrix applied as a
//!   small GEMV — zero `cos()` calls at runtime.
//!
//! All per-frame temporaries (windowed frame, FFT scratch, power spectrum,
//! mel energies, log buffer) live in a caller-owned reusable
//! [`MfccScratch`], so a steady-state stream performs **no allocation per
//! frame**. The mel accumulation, log-energy pass and DCT GEMV route
//! through the [`crate::simd`] dispatch (AVX2/NEON with scalar fallback,
//! honouring `THNT_KERNEL` exactly like the packed inference kernels).
//!
//! Two extraction drivers cover the serving topologies:
//! [`MfccPlan::compute_into`] is serial (what a batched server calls per
//! window while parallelising *across* windows), and
//! [`MfccPlan::compute_into_par`] fans the frames of one signal out across
//! `tensor::par` workers (what a single-stream detector calls per window).

use thnt_tensor::{parallel_zip_chunks, Tensor};

use crate::fft::Complex;
use crate::mel::mel_filterbank;
use crate::mfcc::MfccConfig;
use crate::rfft::RealFft;
use crate::simd::DspDispatch;
use crate::window::hann_window;

/// Reusable per-frame workspace of one worker thread.
///
/// Obtained from [`MfccPlan::scratch`]; sized for exactly that plan's
/// geometry. One scratch serves any number of sequential
/// [`MfccPlan::compute_into`] calls with zero steady-state allocation; for
/// concurrent extraction give each worker its own (the plan itself is
/// immutable and freely shared).
#[derive(Debug, Clone)]
pub struct MfccScratch {
    /// Pre-emphasized signal (filled only when pre-emphasis is enabled;
    /// grown to the signal length and reused across calls).
    emph: Vec<f32>,
    /// Per-frame buffers.
    bufs: FrameBufs,
}

/// The strictly per-frame buffers: everything downstream of framing.
#[derive(Debug, Clone)]
struct FrameBufs {
    /// Windowed frame samples (`frame_len`).
    windowed: Vec<f32>,
    /// Complex FFT workspace (`fft_size / 2`).
    fft: Vec<Complex>,
    /// Half-spectrum power (`fft_size / 2 + 1`).
    power: Vec<f32>,
    /// Mel filter energies (`num_mel`).
    mel: Vec<f32>,
    /// Log energies (`num_mel`).
    logmel: Vec<f32>,
}

/// A fully precomputed MFCC pipeline for one [`MfccConfig`].
///
/// Immutable after construction and `Sync`: one plan is shared by every
/// stream, session and worker thread of a serving process. See the module
/// docs for what is precomputed.
///
/// # Example
///
/// ```
/// use thnt_dsp::{MfccConfig, MfccPlan};
///
/// let plan = MfccPlan::new(MfccConfig::paper());
/// let mut scratch = plan.scratch();
/// let audio = vec![0.0f32; 16_000];
/// let mut feats = vec![0.0f32; 49 * 10];
/// let frames = plan.compute_into(&mut scratch, &audio, &mut feats);
/// assert_eq!(frames, 49);
/// ```
#[derive(Debug, Clone)]
pub struct MfccPlan {
    config: MfccConfig,
    /// Periodic Hann window (`frame_len`).
    window: Vec<f32>,
    /// Real-input FFT plan (twiddles, bit-reversal, unpack tables).
    rfft: RealFft,
    /// First spectrum bin of each mel filter's support.
    mel_start: Vec<usize>,
    /// Prefix offsets into [`Self::mel_weights`] (`num_mel + 1` entries).
    mel_off: Vec<usize>,
    /// Concatenated per-filter triangle weights (band-trimmed).
    mel_weights: Vec<f32>,
    /// Folded orthonormal DCT-II: `num_coeffs × num_mel`, row-major.
    dct: Vec<f32>,
    /// The SIMD backend the hot loops route through (resolved once).
    dispatch: DspDispatch,
}

impl MfccPlan {
    /// Builds the plan for `config`, precomputing every table.
    ///
    /// # Panics
    ///
    /// Panics if `fft_size` is smaller than `frame_len` or not a power of
    /// two, if the mel band is invalid, or if `num_coeffs > num_mel`.
    pub fn new(config: MfccConfig) -> Self {
        assert!(
            config.fft_size >= config.frame_len,
            "fft_size {} < frame_len {}",
            config.fft_size,
            config.frame_len
        );
        assert!(
            config.num_coeffs <= config.num_mel,
            "cannot keep {} coefficients of {} mel energies",
            config.num_coeffs,
            config.num_mel
        );
        let window = hann_window(config.frame_len);
        let rfft = RealFft::new(config.fft_size);
        // Band-trim the dense triangular filterbank into a sparse layout:
        // each filter is non-zero only on its triangle's support.
        let bank = mel_filterbank(
            config.num_mel,
            config.fft_size,
            config.sample_rate,
            config.f_lo,
            config.f_hi,
        );
        let mut mel_start = Vec::with_capacity(config.num_mel);
        let mut mel_off = Vec::with_capacity(config.num_mel + 1);
        let mut mel_weights = Vec::new();
        mel_off.push(0);
        for f in 0..config.num_mel {
            let (start, weights) = bank.band(f);
            mel_start.push(start);
            mel_weights.extend_from_slice(weights);
            mel_off.push(mel_weights.len());
        }
        // Fold the orthonormal DCT-II into a dense matrix (f64 tables cast
        // to f32 — more accurate than the per-call f32 cos it replaces).
        let n = config.num_mel;
        let mut dct = Vec::with_capacity(config.num_coeffs * n);
        for k in 0..config.num_coeffs {
            let scale = if k == 0 { (1.0 / n as f64).sqrt() } else { (2.0 / n as f64).sqrt() };
            for t in 0..n {
                let angle = std::f64::consts::PI * k as f64 * (2 * t + 1) as f64 / (2 * n) as f64;
                dct.push((scale * angle.cos()) as f32);
            }
        }
        Self {
            config,
            window,
            rfft,
            mel_start,
            mel_off,
            mel_weights,
            dct,
            dispatch: *DspDispatch::get(),
        }
    }

    /// The configuration this plan was built for.
    pub fn config(&self) -> &MfccConfig {
        &self.config
    }

    /// The SIMD backend the plan's hot loops execute on.
    pub fn dispatch(&self) -> DspDispatch {
        self.dispatch
    }

    /// Allocates a scratch workspace sized for this plan's geometry.
    pub fn scratch(&self) -> MfccScratch {
        MfccScratch { emph: Vec::new(), bufs: self.frame_bufs() }
    }

    fn frame_bufs(&self) -> FrameBufs {
        FrameBufs {
            windowed: vec![0.0; self.config.frame_len],
            fft: vec![Complex::default(); self.rfft.scratch_len()],
            power: vec![0.0; self.rfft.num_bins()],
            mel: vec![0.0; self.config.num_mel],
            logmel: vec![0.0; self.config.num_mel],
        }
    }

    /// One frame through window → rfft → sparse mel → log → DCT GEMV.
    fn frame_into(&self, bufs: &mut FrameBufs, frame: &[f32], row: &mut [f32]) {
        let FrameBufs { windowed, fft, power, mel, logmel } = bufs;
        for ((w, &x), &h) in windowed.iter_mut().zip(frame).zip(&self.window) {
            *w = x * h;
        }
        self.rfft.power_into(windowed, fft, power);
        for (m, e) in mel.iter_mut().enumerate() {
            let weights = &self.mel_weights[self.mel_off[m]..self.mel_off[m + 1]];
            let start = self.mel_start[m];
            *e = self.dispatch.dot(weights, &power[start..start + weights.len()]);
        }
        self.dispatch.ln_eps(mel, logmel);
        let n = self.config.num_mel;
        for (k, o) in row.iter_mut().enumerate() {
            *o = self.dispatch.dot(&self.dct[k * n..(k + 1) * n], logmel);
        }
    }

    /// Applies pre-emphasis into `emph` and returns the signal to frame —
    /// a borrow of `audio` itself when pre-emphasis is disabled (no copy).
    fn preemphasized<'a>(&self, audio: &'a [f32], emph: &'a mut Vec<f32>) -> &'a [f32] {
        let a = self.config.preemphasis;
        if a <= 0.0 {
            return audio;
        }
        emph.clear();
        emph.reserve(audio.len());
        emph.extend(
            std::iter::once(audio.first().copied().unwrap_or(0.0))
                .chain(audio.windows(2).map(|w| w[1] - a * w[0])),
        );
        emph
    }

    /// Extracts MFCC features serially: writes `num_frames × num_coeffs`
    /// values into `out` and returns the frame count. Zero allocation in
    /// steady state (the scratch is reused).
    ///
    /// This is the per-window driver for batched servers that already
    /// parallelise across windows; single-stream callers usually want
    /// [`Self::compute_into_par`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not `num_frames(audio.len()) * num_coeffs`.
    pub fn compute_into(&self, scratch: &mut MfccScratch, audio: &[f32], out: &mut [f32]) -> usize {
        let c = &self.config;
        let frames = c.num_frames(audio.len());
        assert_eq!(out.len(), frames * c.num_coeffs, "output buffer size mismatch");
        let MfccScratch { emph, bufs } = scratch;
        let signal = self.preemphasized(audio, emph);
        for (f, row) in out.chunks_mut(c.num_coeffs).enumerate() {
            self.frame_into(bufs, &signal[f * c.hop..f * c.hop + c.frame_len], row);
        }
        frames
    }

    /// [`Self::compute_into`] with the frames fanned out across
    /// `tensor::par` workers (each worker gets its own per-frame buffers;
    /// `scratch` is used for the shared pre-emphasis pass). Results are
    /// identical to the serial driver — frames are independent.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::compute_into`].
    pub fn compute_into_par(
        &self,
        scratch: &mut MfccScratch,
        audio: &[f32],
        out: &mut [f32],
    ) -> usize {
        let c = &self.config;
        let frames = c.num_frames(audio.len());
        assert_eq!(out.len(), frames * c.num_coeffs, "output buffer size mismatch");
        if frames == 0 {
            return 0;
        }
        let signal = self.preemphasized(audio, &mut scratch.emph);
        parallel_zip_chunks(out, c.num_coeffs, |f0, chunk| {
            let mut bufs = self.frame_bufs();
            for (df, row) in chunk.chunks_mut(c.num_coeffs).enumerate() {
                let f = f0 + df;
                self.frame_into(&mut bufs, &signal[f * c.hop..f * c.hop + c.frame_len], row);
            }
        });
        frames
    }

    /// Allocating convenience wrapper: parallel extraction into a fresh
    /// `[num_frames, num_coeffs]` tensor.
    pub fn compute(&self, audio: &[f32]) -> Tensor {
        let c = self.config;
        let frames = c.num_frames(audio.len());
        let mut out = Tensor::zeros(&[frames, c.num_coeffs]);
        let mut scratch = MfccScratch { emph: Vec::new(), bufs: self.frame_bufs() };
        self.compute_into_par(&mut scratch, audio, out.data_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcc::reference_mfcc;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    /// A chirp plus deterministic broadband noise. The noise floor matters:
    /// with a pure tone, out-of-band mel energies sit at the `ln(e + ε)`
    /// floor where the log amplifies tiny FFT rounding differences; real
    /// audio (and the golden fixture) is broadband.
    fn chirp(len: usize) -> Vec<f32> {
        let mut state = 0x1234_5678u32;
        (0..len)
            .map(|t| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                let noise = (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5;
                let t = t as f32;
                (2.0 * std::f32::consts::PI * (200.0 + 0.05 * t) * t / 16_000.0).sin() * 0.5
                    + noise * 0.1
            })
            .collect()
    }

    #[test]
    fn matches_the_reference_pipeline_on_paper_config() {
        let cfg = MfccConfig::paper();
        let plan = MfccPlan::new(cfg);
        let audio = chirp(16_000);
        let want = reference_mfcc(&cfg, &audio);
        let got = plan.compute(&audio);
        assert_eq!(got.dims(), want.dims());
        let diff = max_abs_diff(got.data(), want.data());
        assert!(diff < 1e-4, "planned pipeline diverged from reference: {diff}");
    }

    #[test]
    fn serial_and_parallel_drivers_agree() {
        let cfg = MfccConfig::paper();
        let plan = MfccPlan::new(cfg);
        let audio = chirp(16_000);
        let mut scratch = plan.scratch();
        let mut serial = vec![0.0f32; 49 * 10];
        plan.compute_into(&mut scratch, &audio, &mut serial);
        let par = plan.compute(&audio);
        // Frames are fully independent; the drivers must agree bitwise.
        assert_eq!(serial, par.data());
    }

    #[test]
    fn scratch_is_reusable_across_signals() {
        let cfg = MfccConfig::paper();
        let plan = MfccPlan::new(cfg);
        let mut scratch = plan.scratch();
        let a = chirp(16_000);
        let mut out_a = vec![0.0f32; 49 * 10];
        plan.compute_into(&mut scratch, &a, &mut out_a);
        // A different (shorter) signal through the same scratch.
        let b = vec![0.25f32; 8_000];
        let frames_b = cfg.num_frames(8_000);
        let mut out_b = vec![0.0f32; frames_b * 10];
        plan.compute_into(&mut scratch, &b, &mut out_b);
        // And the first signal again — identical to the first pass.
        let mut out_a2 = vec![0.0f32; 49 * 10];
        plan.compute_into(&mut scratch, &a, &mut out_a2);
        assert_eq!(out_a, out_a2);
    }

    #[test]
    fn disabled_preemphasis_borrows_the_input() {
        let cfg = MfccConfig { preemphasis: 0.0, ..MfccConfig::paper() };
        let plan = MfccPlan::new(cfg);
        let audio = chirp(16_000);
        let mut scratch = plan.scratch();
        let mut out = vec![0.0f32; 49 * 10];
        plan.compute_into(&mut scratch, &audio, &mut out);
        assert!(scratch.emph.is_empty(), "no-preemphasis path must not copy the signal");
        let want = reference_mfcc(&cfg, &audio);
        assert!(max_abs_diff(&out, want.data()) < 1e-4);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let plan = MfccPlan::new(MfccConfig::paper());
        let mut scratch = plan.scratch();
        let mut out = [0.0f32; 0];
        assert_eq!(plan.compute_into(&mut scratch, &[0.0; 100], &mut out), 0);
        assert_eq!(plan.compute(&[0.0; 100]).dims(), &[0, 10]);
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn rejects_more_coeffs_than_mel_filters() {
        MfccPlan::new(MfccConfig { num_mel: 8, num_coeffs: 9, ..MfccConfig::paper() });
    }
}
