//! Mel-scale filterbank.

/// Converts frequency in Hz to mels (HTK convention).
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels back to Hz (inverse of [`hz_to_mel`]).
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank applied to power spectra.
#[derive(Debug, Clone)]
pub struct MelBank {
    /// `num_filters × num_bins` filter weights, row-major.
    weights: Vec<f32>,
    num_filters: usize,
    num_bins: usize,
}

impl MelBank {
    /// Number of triangular filters.
    pub fn num_filters(&self) -> usize {
        self.num_filters
    }

    /// Number of input spectrum bins each filter spans.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Returns the weight of filter `f` at spectrum bin `b`.
    pub fn weight(&self, f: usize, b: usize) -> f32 {
        self.weights[f * self.num_bins + b]
    }

    /// Returns filter `f`'s support as `(first_bin, weights)`: the row
    /// trimmed to its first..=last non-zero entry. Triangles are contiguous,
    /// so the trimmed slice has no interior zeros; a degenerate filter
    /// (possible for tiny FFT sizes) yields an empty slice.
    ///
    /// This is the sparse view [`crate::MfccPlan`] packs into its band
    /// matrix so each filter application is one short dot product.
    pub fn band(&self, f: usize) -> (usize, &[f32]) {
        let row = &self.weights[f * self.num_bins..(f + 1) * self.num_bins];
        match row.iter().position(|&w| w != 0.0) {
            Some(first) => {
                let last = row.iter().rposition(|&w| w != 0.0).unwrap();
                (first, &row[first..=last])
            }
            None => (0, &[]),
        }
    }

    /// Applies the bank to a power spectrum, producing per-filter energies.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != num_bins()`.
    pub fn apply(&self, spectrum: &[f32]) -> Vec<f32> {
        assert_eq!(spectrum.len(), self.num_bins, "spectrum length mismatch");
        (0..self.num_filters)
            .map(|f| {
                let row = &self.weights[f * self.num_bins..(f + 1) * self.num_bins];
                row.iter().zip(spectrum.iter()).map(|(w, s)| w * s).sum()
            })
            .collect()
    }
}

/// Builds a triangular mel filterbank.
///
/// * `num_filters` — number of triangles (the paper uses 40)
/// * `fft_size` — FFT length the spectra were computed with
/// * `sample_rate` — in Hz
/// * `f_lo`, `f_hi` — band edges in Hz
///
/// # Panics
///
/// Panics if the band is empty or `num_filters` is zero.
pub fn mel_filterbank(
    num_filters: usize,
    fft_size: usize,
    sample_rate: f32,
    f_lo: f32,
    f_hi: f32,
) -> MelBank {
    assert!(num_filters > 0, "need at least one filter");
    assert!(f_lo < f_hi && f_hi <= sample_rate / 2.0, "invalid band [{f_lo}, {f_hi}]");
    let num_bins = fft_size / 2 + 1;
    let mel_lo = hz_to_mel(f_lo);
    let mel_hi = hz_to_mel(f_hi);
    // num_filters + 2 equally spaced mel points define the triangle corners.
    let points: Vec<f32> = (0..num_filters + 2)
        .map(|i| {
            let mel = mel_lo + (mel_hi - mel_lo) * i as f32 / (num_filters + 1) as f32;
            mel_to_hz(mel) * fft_size as f32 / sample_rate
        })
        .collect();
    let mut weights = vec![0.0f32; num_filters * num_bins];
    for f in 0..num_filters {
        let (left, center, right) = (points[f], points[f + 1], points[f + 2]);
        for b in 0..num_bins {
            let x = b as f32;
            let w = if x >= left && x <= center && center > left {
                (x - left) / (center - left)
            } else if x > center && x <= right && right > center {
                (right - x) / (right - center)
            } else {
                0.0
            };
            weights[f * num_bins + b] = w;
        }
    }
    MelBank { weights, num_filters, num_bins }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_conversions_roundtrip() {
        for hz in [0.0f32, 100.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
    }

    #[test]
    fn mel_of_1khz_is_about_1000() {
        // The mel scale is anchored so 1000 Hz ~= 1000 mel.
        assert!((hz_to_mel(1000.0) - 1000.0).abs() < 2.0);
    }

    #[test]
    fn filters_are_nonnegative_and_peak_once() {
        let bank = mel_filterbank(40, 1024, 16_000.0, 20.0, 8000.0);
        assert_eq!(bank.num_filters(), 40);
        assert_eq!(bank.num_bins(), 513);
        for f in 0..40 {
            let row: Vec<f32> = (0..513).map(|b| bank.weight(f, b)).collect();
            assert!(row.iter().all(|&w| (0.0..=1.0 + 1e-6).contains(&w)));
            assert!(row.iter().cloned().fold(0.0f32, f32::max) > 0.5, "filter {f} degenerate");
        }
    }

    #[test]
    fn filters_cover_band_without_gaps() {
        let bank = mel_filterbank(40, 1024, 16_000.0, 20.0, 8000.0);
        // Every bin well inside the band is touched by at least one filter.
        for b in 10..500 {
            let total: f32 = (0..40).map(|f| bank.weight(f, b)).sum();
            assert!(total > 0.0, "bin {b} uncovered");
        }
    }

    #[test]
    fn band_view_matches_dense_rows() {
        let bank = mel_filterbank(40, 1024, 16_000.0, 20.0, 8000.0);
        for f in 0..40 {
            let (start, weights) = bank.band(f);
            assert!(!weights.is_empty(), "filter {f} degenerate");
            assert_ne!(weights[0], 0.0);
            assert_ne!(*weights.last().unwrap(), 0.0);
            for b in 0..bank.num_bins() {
                let dense = bank.weight(f, b);
                let sparse =
                    if b >= start && b < start + weights.len() { weights[b - start] } else { 0.0 };
                assert_eq!(dense, sparse, "filter {f} bin {b}");
            }
        }
    }

    #[test]
    fn apply_integrates_energy() {
        let bank = mel_filterbank(10, 256, 16_000.0, 100.0, 8000.0);
        let flat = vec![1.0f32; 129];
        let out = bank.apply(&flat);
        assert_eq!(out.len(), 10);
        // Higher filters are wider in Hz -> larger integrals.
        assert!(out[9] > out[0]);
    }
}
