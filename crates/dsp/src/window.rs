//! Windowing and framing.

/// Periodic Hann window of length `n`.
///
/// The periodic (DFT-even) variant matches common speech front-ends.
pub fn hann_window(n: usize) -> Vec<f32> {
    (0..n).map(|i| 0.5 - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / n as f32).cos()).collect()
}

/// Splits `signal` into overlapping frames of `frame_len` samples advanced by
/// `hop` samples. Frames that would run past the end are dropped.
///
/// Returns a flat row-major buffer of `num_frames * frame_len` samples plus
/// the frame count.
///
/// # Panics
///
/// Panics if `frame_len` or `hop` is zero.
pub fn frame_signal(signal: &[f32], frame_len: usize, hop: usize) -> (Vec<f32>, usize) {
    assert!(frame_len > 0 && hop > 0, "frame_len and hop must be positive");
    if signal.len() < frame_len {
        return (Vec::new(), 0);
    }
    let num_frames = (signal.len() - frame_len) / hop + 1;
    let mut out = Vec::with_capacity(num_frames * frame_len);
    for f in 0..num_frames {
        out.extend_from_slice(&signal[f * hop..f * hop + frame_len]);
    }
    (out, num_frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_midpoint() {
        let w = hann_window(8);
        assert!(w[0].abs() < 1e-6);
        assert!((w[4] - 1.0).abs() < 1e-6);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn hann_is_symmetric_periodic() {
        let w = hann_window(16);
        for i in 1..8 {
            assert!((w[i] - w[16 - i]).abs() < 1e-6, "asymmetry at {i}");
        }
    }

    #[test]
    fn paper_framing_geometry() {
        // 1 s @ 16 kHz, 40 ms frames (640), 20 ms hop (320) -> 49 frames.
        let signal = vec![0.0f32; 16_000];
        let (_, frames) = frame_signal(&signal, 640, 320);
        assert_eq!(frames, 49);
    }

    #[test]
    fn frames_copy_correct_samples() {
        let signal: Vec<f32> = (0..10).map(|x| x as f32).collect();
        let (buf, n) = frame_signal(&signal, 4, 2);
        assert_eq!(n, 4);
        assert_eq!(&buf[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&buf[4..8], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&buf[12..16], &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let (buf, n) = frame_signal(&[1.0, 2.0], 4, 2);
        assert_eq!(n, 0);
        assert!(buf.is_empty());
    }
}
