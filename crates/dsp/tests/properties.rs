//! Property-based tests for the DSP front-end.

use proptest::prelude::*;
use thnt_dsp::fft::dft_reference;
use thnt_dsp::{dct_ii, fft_in_place, hz_to_mel, mel_to_hz, power_spectrum, Complex, RealFft};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_is_linear(
        a in proptest::collection::vec(-1.0f32..1.0, 32),
        b in proptest::collection::vec(-1.0f32..1.0, 32),
        alpha in -2.0f32..2.0,
    ) {
        // FFT(alpha·a + b) == alpha·FFT(a) + FFT(b)
        let mk = |v: &[f32]| -> Vec<Complex> { v.iter().map(|&x| Complex::new(x, 0.0)).collect() };
        let mut combo: Vec<Complex> =
            a.iter().zip(&b).map(|(&x, &y)| Complex::new(alpha * x + y, 0.0)).collect();
        fft_in_place(&mut combo);
        let mut fa = mk(&a);
        fft_in_place(&mut fa);
        let mut fb = mk(&b);
        fft_in_place(&mut fb);
        for i in 0..32 {
            let want_re = alpha * fa[i].re + fb[i].re;
            let want_im = alpha * fa[i].im + fb[i].im;
            prop_assert!((combo[i].re - want_re).abs() < 1e-3);
            prop_assert!((combo[i].im - want_im).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_matches_dft_for_any_signal(signal in proptest::collection::vec(-1.0f32..1.0, 16)) {
        let buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut fast = buf.clone();
        fft_in_place(&mut fast);
        let slow = dft_reference(&buf);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f.re - s.re).abs() < 1e-3 && (f.im - s.im).abs() < 1e-3);
        }
    }

    #[test]
    fn power_spectrum_is_nonnegative(signal in proptest::collection::vec(-1.0f32..1.0, 1..100)) {
        let ps = power_spectrum(&signal, 128);
        prop_assert!(ps.iter().all(|&v| v >= 0.0));
        prop_assert_eq!(ps.len(), 65);
    }

    #[test]
    fn mel_scale_is_monotone_and_invertible(hz in 1.0f32..7900.0) {
        let mel = hz_to_mel(hz);
        prop_assert!(mel > 0.0);
        prop_assert!((mel_to_hz(mel) - hz).abs() < 0.5);
        prop_assert!(hz_to_mel(hz + 10.0) > mel);
    }

    #[test]
    fn rfft_matches_the_complex_fft(
        signal in proptest::collection::vec(-1.0f32..1.0, 0..256),
        log_n in 1u32..11,
    ) {
        // The packed real-input transform must agree with the full complex
        // FFT on random real signals for every power-of-two size, including
        // signals shorter than the transform (zero padding).
        let n = 1usize << log_n;
        let signal = &signal[..signal.len().min(n)];
        let plan = RealFft::new(n);
        let got = plan.power(signal);
        let want = power_spectrum(signal, n);
        prop_assert_eq!(got.len(), want.len());
        // Tolerance scales with the energy that lands in a bin.
        let scale: f32 = 1.0f32.max(want.iter().cloned().fold(0.0, f32::max));
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() <= 1e-5 * scale, "bin {}: {} vs {}", k, g, w);
        }
    }

    #[test]
    fn rfft_power_is_nonnegative_and_reusable(
        signal in proptest::collection::vec(-1.0f32..1.0, 1..128),
    ) {
        // Scratch reuse across calls must not leak state between signals.
        let plan = RealFft::new(128);
        let mut scratch = vec![Complex::default(); plan.scratch_len()];
        let mut out = vec![0.0f32; plan.num_bins()];
        plan.power_into(&signal, &mut scratch, &mut out);
        let first = out.clone();
        prop_assert!(first.iter().all(|&v| v >= 0.0));
        plan.power_into(&[0.5; 64], &mut scratch, &mut out);
        plan.power_into(&signal, &mut scratch, &mut out);
        prop_assert_eq!(out, first);
    }

    #[test]
    fn dct_energy_never_exceeds_input(signal in proptest::collection::vec(-2.0f32..2.0, 8..64)) {
        // Orthonormal transform: truncated coefficient energy <= signal energy.
        let keep = signal.len() / 2;
        let coeffs = dct_ii(&signal, keep.max(1));
        let e_in: f32 = signal.iter().map(|v| v * v).sum();
        let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
        prop_assert!(e_out <= e_in + 1e-2 * e_in.max(1.0));
    }
}
