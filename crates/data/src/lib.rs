//! Synthetic speech-commands dataset for the THNT reproduction.
//!
//! The paper evaluates on the Google Speech Commands dataset (Warden 2018):
//! 65k one-second clips of 30 words, classified into **10 target keywords plus
//! "silence" and "unknown"** (the remaining 20 words). That corpus is not
//! available offline, so this crate provides the substitution documented in
//! `DESIGN.md`: a deterministic generator of *keyword-like* audio.
//!
//! Each of the 30 "words" is a fixed [`WordSignature`] — one or two
//! syllables of harmonically structured formant chirps with a class-specific
//! contour. Per-utterance speaker variation (pitch, duration, formant jitter,
//! amplitude) makes the task non-trivial, while the augmentation pipeline
//! (background noise at random SNR, ±100 ms timing jitter) mirrors the
//! paper's §4 training setup. The generator preserves what the paper's
//! experiments need: a 12-way task over 49×10 MFCC maps where convolutional
//! feature extraction genuinely outperforms a linear projection.
//!
//! # Example
//!
//! ```
//! use thnt_data::{DatasetConfig, SpeechCommands, Split};
//!
//! let data = SpeechCommands::generate(DatasetConfig::tiny());
//! let (x, y) = data.features(Split::Train);
//! assert_eq!(x.dims()[1..], [1, 49, 10]);
//! assert_eq!(x.dims()[0], y.len());
//! ```

// Numeric kernels index by position throughout; positional loops keep the
// math legible next to the formulas they implement.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod dataset;
pub mod synth;

pub use batch::BatchIter;
pub use dataset::{DatasetConfig, SpeechCommands, Split, KEYWORDS, LABEL_NAMES, NUM_CLASSES};
pub use synth::{synthesize_silence, synthesize_word, WordSignature, SAMPLES, SAMPLE_RATE};
