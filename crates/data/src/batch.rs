//! Mini-batch iteration with per-epoch shuffling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use thnt_tensor::Tensor;

/// Iterates over `(inputs, labels)` in shuffled mini-batches.
///
/// Shuffling is deterministic given the seed and epoch number, so training
/// runs are exactly reproducible.
///
/// # Example
///
/// ```
/// use thnt_data::BatchIter;
/// use thnt_tensor::Tensor;
///
/// let x = Tensor::zeros(&[10, 3]);
/// let y: Vec<usize> = (0..10).collect();
/// let total: usize = BatchIter::new(&x, &y, 4, 0, 7).map(|(bx, by)| {
///     assert_eq!(bx.dims()[1], 3);
///     by.len()
/// }).sum();
/// assert_eq!(total, 10);
/// ```
#[derive(Debug)]
pub struct BatchIter<'a> {
    x: &'a Tensor,
    y: &'a [usize],
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates an iterator over `x`/`y` with the given batch size for a
    /// specific `epoch` (affects the shuffle) and `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `x.dims()[0] != y.len()`.
    pub fn new(x: &'a Tensor, y: &'a [usize], batch_size: usize, epoch: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert_eq!(x.dims()[0], y.len(), "inputs and labels disagree on sample count");
        let mut order: Vec<usize> = (0..y.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);
        Self { x, y, order, batch_size, cursor: 0 }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some((gather(self.x, idx), idx.iter().map(|&i| self.y[i]).collect()))
    }
}

/// Gathers rows (axis 0) of `x` at `indices` into a new tensor.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather(x: &Tensor, indices: &[usize]) -> Tensor {
    let n = x.dims()[0];
    let per: usize = x.dims()[1..].iter().product();
    let mut dims = x.dims().to_vec();
    dims[0] = indices.len();
    let mut out = Tensor::zeros(&dims);
    for (row, &i) in indices.iter().enumerate() {
        assert!(i < n, "gather index {i} out of bounds (n={n})");
        out.data_mut()[row * per..(row + 1) * per]
            .copy_from_slice(&x.data()[i * per..(i + 1) * per]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_samples_exactly_once() {
        let x = Tensor::from_vec((0..20).map(|v| v as f32).collect(), &[10, 2]);
        let y: Vec<usize> = (0..10).collect();
        let mut seen = [0usize; 10];
        for (bx, by) in BatchIter::new(&x, &y, 3, 0, 1) {
            assert_eq!(bx.dims()[0], by.len());
            for &label in &by {
                seen[label] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn epochs_shuffle_differently_but_deterministically() {
        let x = Tensor::zeros(&[32, 1]);
        let y: Vec<usize> = (0..32).collect();
        let collect = |epoch| -> Vec<usize> {
            BatchIter::new(&x, &y, 8, epoch, 9).flat_map(|(_, by)| by).collect()
        };
        assert_eq!(collect(0), collect(0));
        assert_ne!(collect(0), collect(1));
    }

    #[test]
    fn gather_rows_match_source() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        let g = gather(&x, &[2, 0]);
        assert_eq!(g.dims(), &[2, 3]);
        assert_eq!(g.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn last_batch_may_be_short() {
        let x = Tensor::zeros(&[10, 1]);
        let y = vec![0usize; 10];
        let sizes: Vec<usize> = BatchIter::new(&x, &y, 4, 0, 0).map(|(_, by)| by.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}
