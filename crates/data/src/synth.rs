//! Word-signature audio synthesis.
//!
//! A [`WordSignature`] is a compact parametric description of a fake spoken
//! word: one or two syllables, each a stack of two formant chirps riding on a
//! fundamental, shaped by an attack/decay envelope. Signatures are derived
//! deterministically from a word index, so "word 7" sounds the same across
//! runs and machines; per-utterance variation comes from the caller's RNG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sample rate of all synthesized audio, in Hz.
pub const SAMPLE_RATE: usize = 16_000;

/// Number of samples per clip (1 second).
pub const SAMPLES: usize = 16_000;

/// One syllable: a fundamental plus two formant chirps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Syllable {
    /// Fundamental frequency at syllable start, Hz.
    f0_start: f32,
    /// Fundamental frequency at syllable end, Hz.
    f0_end: f32,
    /// First formant start/end, Hz.
    f1: (f32, f32),
    /// Second formant start/end, Hz.
    f2: (f32, f32),
    /// Relative amplitude of the two formants.
    mix: (f32, f32),
    /// Fraction of the word duration this syllable occupies.
    dur_frac: f32,
}

/// Deterministic synthesis parameters for one vocabulary word.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use thnt_data::{synthesize_word, WordSignature};
///
/// let sig = WordSignature::for_word(3);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let audio = synthesize_word(&sig, &mut rng);
/// assert_eq!(audio.len(), thnt_data::SAMPLES);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WordSignature {
    word: usize,
    syllables: Vec<Syllable>,
    /// Nominal utterance length as a fraction of the clip (0.3–0.6).
    duration_frac: f32,
}

impl WordSignature {
    /// Builds the fixed signature for vocabulary word `word` (0–29).
    ///
    /// The parameters are drawn from an RNG seeded by `word` only, so the
    /// mapping is stable. Words are spread over distinct fundamental bands
    /// and contour shapes to be separable-but-confusable, like real words.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 30`.
    pub fn for_word(word: usize) -> Self {
        assert!(word < 30, "vocabulary has 30 words, got index {word}");
        // Words come in PAIRS sharing the same spectral content (fundamental
        // band, formant centres, syllable count): pair members differ only in
        // the temporal DIRECTION of their contours. A time-averaged spectrum
        // cannot separate a pair — temporal (convolutional) features can.
        // This mirrors why real KWS needs conv feature extraction (§2.2.2).
        let pair = word / 2;
        let rising = word.is_multiple_of(2);
        let mut rng =
            SmallRng::seed_from_u64(0x5730 ^ (pair as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let num_syllables = 1 + (pair % 2);
        let base = 92.0 + 15.0 * (pair % 5) as f32 + rng.gen_range(-4.0f32..4.0);
        let mut syllables = Vec::new();
        for s in 0..num_syllables {
            // Shared-within-pair spectral draw.
            let f1c = rng.gen_range(350.0f32..850.0);
            let f2c = rng.gen_range(1200.0f32..2600.0);
            let span0 = rng.gen_range(1.2..1.45f32);
            let span1 = rng.gen_range(1.15..1.35f32);
            // Direction alternates per syllable and flips between the two
            // pair members, so the pair is spectrally identical but
            // temporally mirrored.
            let up = rising == (s % 2 == 0);
            let (c0, c1) = if up { (1.0, span0) } else { (span0, 1.0) };
            let (d0, d1) = if up { (1.0, span1) } else { (span1, 1.0) };
            syllables.push(Syllable {
                f0_start: base * c0 / span0.sqrt(),
                f0_end: base * c1 / span0.sqrt(),
                f1: (f1c * d0 / span1.sqrt(), f1c * d1 / span1.sqrt()),
                f2: (f2c * d0 / span1.sqrt(), f2c * d1 / span1.sqrt()),
                mix: (rng.gen_range(0.5..1.0), rng.gen_range(0.25..0.7)),
                dur_frac: 1.0 / num_syllables as f32,
            });
        }
        Self { word, syllables, duration_frac: rng.gen_range(0.35..0.6) }
    }

    /// Index of the vocabulary word this signature encodes.
    pub fn word(&self) -> usize {
        self.word
    }
}

/// Synthesizes one utterance of `sig` with per-speaker variation drawn from
/// `rng`: ±12% pitch, ±10% duration, ±6% formant shift, gain in [0.25, 1.0].
///
/// Returns exactly [`SAMPLES`] samples; the word sits at the clip centre
/// (augmentation applies timing jitter separately).
pub fn synthesize_word(sig: &WordSignature, rng: &mut SmallRng) -> Vec<f32> {
    let pitch = rng.gen_range(0.82..1.22f32);
    let formant_shift = rng.gen_range(0.9..1.1f32);
    let warp = rng.gen_range(0.75..1.3f32);
    let dur = (sig.duration_frac * rng.gen_range(0.85f32..1.15) * SAMPLES as f32) as usize;
    let gain = rng.gen_range(0.25..1.0f32);
    let mut audio = vec![0.0f32; SAMPLES];
    let start = (SAMPLES - dur) / 2;

    let mut offset = 0usize;
    for syl in &sig.syllables {
        let len = (dur as f32 * syl.dur_frac) as usize;
        if len == 0 {
            continue;
        }
        let mut phase0 = 0.0f32;
        let mut phase1 = 0.0f32;
        let mut phase2 = 0.0f32;
        for t in 0..len {
            // Per-utterance nonlinear time warp: speakers realise the same
            // contour at different paces.
            let u = (t as f32 / len as f32).powf(warp);
            let f0 = (syl.f0_start + (syl.f0_end - syl.f0_start) * u) * pitch;
            let f1 = (syl.f1.0 + (syl.f1.1 - syl.f1.0) * u) * formant_shift;
            let f2 = (syl.f2.0 + (syl.f2.1 - syl.f2.0) * u) * formant_shift;
            phase0 += 2.0 * std::f32::consts::PI * f0 / SAMPLE_RATE as f32;
            phase1 += 2.0 * std::f32::consts::PI * f1 / SAMPLE_RATE as f32;
            phase2 += 2.0 * std::f32::consts::PI * f2 / SAMPLE_RATE as f32;
            // Attack/decay envelope per syllable.
            let env = (u * 8.0).min(1.0) * ((1.0 - u) * 6.0).min(1.0);
            // Fundamental + two formants, light second harmonic for timbre.
            let s = 0.5 * phase0.sin()
                + 0.2 * (2.0 * phase0).sin()
                + syl.mix.0 * phase1.sin()
                + syl.mix.1 * phase2.sin();
            let idx = start + offset + t;
            if idx < SAMPLES {
                audio[idx] += gain * env * s * 0.25;
            }
        }
        offset += len;
        // Short inter-syllable gap.
        offset += (0.05 * dur as f32) as usize;
    }
    audio
}

/// Synthesizes a "silence" clip: low-level coloured noise only.
pub fn synthesize_silence(rng: &mut SmallRng) -> Vec<f32> {
    let level = rng.gen_range(0.001..0.02f32);
    let mut prev = 0.0f32;
    (0..SAMPLES)
        .map(|_| {
            // One-pole lowpass over white noise gives a plausible room tone.
            let white: f32 = rng.gen_range(-1.0..1.0);
            prev = 0.95 * prev + 0.05 * white;
            prev * level * 4.0 + white * level * 0.2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy(x: &[f32]) -> f32 {
        x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32
    }

    #[test]
    fn signatures_are_deterministic() {
        let a = WordSignature::for_word(5);
        let b = WordSignature::for_word(5);
        assert_eq!(a, b);
    }

    #[test]
    fn signatures_differ_across_words() {
        let sigs: Vec<WordSignature> = (0..30).map(WordSignature::for_word).collect();
        for i in 0..30 {
            for j in (i + 1)..30 {
                assert_ne!(sigs[i], sigs[j], "words {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "30 words")]
    fn word_index_bounds_checked() {
        WordSignature::for_word(30);
    }

    #[test]
    fn utterances_vary_per_draw_but_keep_length() {
        let sig = WordSignature::for_word(0);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = synthesize_word(&sig, &mut rng);
        let b = synthesize_word(&sig, &mut rng);
        assert_eq!(a.len(), SAMPLES);
        assert_eq!(b.len(), SAMPLES);
        assert_ne!(a, b, "speaker variation must differ across draws");
    }

    #[test]
    fn word_energy_dwarfs_silence() {
        let sig = WordSignature::for_word(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let word = synthesize_word(&sig, &mut rng);
        let silence = synthesize_silence(&mut rng);
        assert!(energy(&word) > 10.0 * energy(&silence));
    }

    #[test]
    fn word_is_centered_with_quiet_edges() {
        let sig = WordSignature::for_word(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let audio = synthesize_word(&sig, &mut rng);
        let head = energy(&audio[..2000]);
        let mid = energy(&audio[6000..10000]);
        assert!(mid > 100.0 * head.max(1e-12), "head={head}, mid={mid}");
    }

    #[test]
    fn samples_are_bounded() {
        for w in 0..30 {
            let sig = WordSignature::for_word(w);
            let mut rng = SmallRng::seed_from_u64(w as u64);
            let audio = synthesize_word(&sig, &mut rng);
            assert!(audio.iter().all(|x| x.abs() <= 1.0), "word {w} clips");
        }
    }
}
