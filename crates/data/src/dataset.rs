//! The 12-class synthetic speech-commands dataset.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use thnt_dsp::{Mfcc, MfccConfig};
use thnt_tensor::{parallel_zip_chunks, Tensor};

use crate::synth::{synthesize_silence, synthesize_word, WordSignature};

/// The ten target keywords of the paper's KWS task.
pub const KEYWORDS: [&str; 10] =
    ["yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go"];

/// All twelve class names: the keywords plus `silence` and `unknown`.
pub const LABEL_NAMES: [&str; 12] =
    ["yes", "no", "up", "down", "left", "right", "on", "off", "stop", "go", "silence", "unknown"];

/// Number of classification targets (`L` in the paper).
pub const NUM_CLASSES: usize = 12;

/// Label index of the `silence` class.
pub const SILENCE: usize = 10;

/// Label index of the `unknown` class.
pub const UNKNOWN: usize = 11;

/// Which split of the dataset to access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split (augmented: background noise + timing jitter).
    Train,
    /// Validation split.
    Val,
    /// Held-out test split.
    Test,
}

/// Generation parameters for [`SpeechCommands`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Clips per class in the training split.
    pub per_class_train: usize,
    /// Clips per class in the validation split.
    pub per_class_val: usize,
    /// Clips per class in the test split.
    pub per_class_test: usize,
    /// Master seed; every clip derives deterministically from it.
    pub seed: u64,
    /// Probability that a training clip receives background noise.
    pub noise_prob: f64,
    /// SNR range (dB) for background-noise augmentation.
    pub snr_db: (f32, f32),
    /// Maximum timing jitter in milliseconds (applied ± to training clips).
    pub jitter_ms: usize,
}

impl DatasetConfig {
    /// Minimal dataset for unit tests (144 clips).
    pub fn tiny() -> Self {
        Self { per_class_train: 6, per_class_val: 3, per_class_test: 3, ..Self::base() }
    }

    /// CI/laptop-scale dataset used by the default experiment profile
    /// (~1.3k clips; keeps every table runnable in minutes).
    pub fn quick() -> Self {
        Self { per_class_train: 80, per_class_val: 16, per_class_test: 16, ..Self::base() }
    }

    /// Larger dataset for the `paper` experiment profile (~5k clips,
    /// 80/10/10 proportions as in §4 of the paper).
    pub fn paper() -> Self {
        Self { per_class_train: 320, per_class_val: 40, per_class_test: 40, ..Self::base() }
    }

    fn base() -> Self {
        Self {
            per_class_train: 0,
            per_class_val: 0,
            per_class_test: 0,
            seed: 0xC0FFEE,
            noise_prob: 0.8,
            snr_db: (8.0, 24.0),
            jitter_ms: 150,
        }
    }

    fn per_class(&self, split: Split) -> usize {
        match split {
            Split::Train => self.per_class_train,
            Split::Val => self.per_class_val,
            Split::Test => self.per_class_test,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// One generated audio clip.
#[derive(Debug, Clone)]
pub struct Clip {
    /// Raw 16 kHz samples (length [`crate::SAMPLES`]).
    pub audio: Vec<f32>,
    /// Class label (0–11).
    pub label: usize,
}

/// The synthetic speech-commands dataset: raw clips per split plus lazily
/// computed, train-normalised MFCC features.
///
/// Feature tensors have shape `[n, 1, 49, 10]` (NCHW with one input channel),
/// matching the paper's 49×10 MFCC input. Normalisation statistics (per-
/// coefficient mean/std) are computed on the training split only.
pub struct SpeechCommands {
    config: DatasetConfig,
    clips: HashMap<Split, Vec<Clip>>,
    mfcc: Mfcc,
    feature_cache: Mutex<HashMap<Split, (Tensor, Vec<usize>)>>,
    norm: Mutex<Option<(Vec<f32>, Vec<f32>)>>,
}

impl std::fmt::Debug for SpeechCommands {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeechCommands")
            .field("config", &self.config)
            .field("train_clips", &self.len(Split::Train))
            .field("val_clips", &self.len(Split::Val))
            .field("test_clips", &self.len(Split::Test))
            .finish()
    }
}

impl SpeechCommands {
    /// Generates the dataset described by `config`.
    ///
    /// Deterministic: the same config (including seed) always produces the
    /// same clips, independent of thread count.
    pub fn generate(config: DatasetConfig) -> Self {
        let mut clips = HashMap::new();
        for (split_idx, split) in [Split::Train, Split::Val, Split::Test].into_iter().enumerate() {
            let per_class = config.per_class(split);
            let mut split_clips = Vec::with_capacity(per_class * NUM_CLASSES);
            for class in 0..NUM_CLASSES {
                for i in 0..per_class {
                    // Stable per-clip seed: split/class/index, independent of order.
                    let seed = config
                        .seed
                        .wrapping_add(split_idx as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((class * 1_000_003 + i) as u64);
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let audio = Self::make_clip(&config, split, class, &mut rng);
                    split_clips.push(Clip { audio, label: class });
                }
            }
            clips.insert(split, split_clips);
        }
        Self {
            config,
            clips,
            mfcc: Mfcc::new(MfccConfig::paper()),
            feature_cache: Mutex::new(HashMap::new()),
            norm: Mutex::new(None),
        }
    }

    fn make_clip(
        config: &DatasetConfig,
        split: Split,
        class: usize,
        rng: &mut SmallRng,
    ) -> Vec<f32> {
        let mut audio = match class {
            SILENCE => synthesize_silence(rng),
            UNKNOWN => {
                // One of the 20 non-target vocabulary words.
                let word = 10 + rng.gen_range(0..20usize);
                synthesize_word(&WordSignature::for_word(word), rng)
            }
            c => synthesize_word(&WordSignature::for_word(c), rng),
        };
        // Timing jitter is part of the data distribution (utterances are not
        // perfectly centred in real recordings); it applies to every split.
        if class != SILENCE && config.jitter_ms > 0 {
            let max_shift = config.jitter_ms * crate::synth::SAMPLE_RATE / 1000;
            let shift = rng.gen_range(-(max_shift as isize)..=max_shift as isize);
            audio = shift_clip(&audio, shift);
        }
        // Strong background-noise augmentation is training-only (paper §4);
        // every split carries mild natural room noise, as real recordings do.
        if split == Split::Train && class != SILENCE && rng.gen_bool(config.noise_prob) {
            add_noise(&mut audio, config.snr_db, rng);
        } else if class != SILENCE {
            add_noise(&mut audio, (14.0, 26.0), rng);
        }
        audio
    }

    /// Returns the generation config.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of clips in `split`.
    pub fn len(&self, split: Split) -> usize {
        self.clips[&split].len()
    }

    /// Returns `true` if `split` holds no clips.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Raw clips of a split.
    pub fn clips(&self, split: Split) -> &[Clip] {
        &self.clips[&split]
    }

    /// MFCC features and labels for `split`: `([n, 1, 49, 10], labels)`.
    ///
    /// Features are normalised per coefficient with training-split statistics
    /// and cached after the first call.
    pub fn features(&self, split: Split) -> (Tensor, Vec<usize>) {
        if let Some(hit) = self.feature_cache.lock().get(&split) {
            return hit.clone();
        }
        let raw = self.raw_features(split);
        let (mean, std) = self.norm_stats();
        let clips = &self.clips[&split];
        let n = clips.len();
        let (frames, coeffs) = (49usize, 10usize);
        let mut x = raw;
        {
            let data = x.data_mut();
            for s in 0..n {
                for f in 0..frames {
                    for c in 0..coeffs {
                        let idx = (s * frames + f) * coeffs + c;
                        data[idx] = (data[idx] - mean[c]) / std[c];
                    }
                }
            }
        }
        x.reshape_in_place(&[n, 1, frames, coeffs]);
        let y: Vec<usize> = clips.iter().map(|c| c.label).collect();
        self.feature_cache.lock().insert(split, (x.clone(), y.clone()));
        (x, y)
    }

    /// The per-coefficient normalisation statistics `(mean, std)` computed
    /// on the training split — streaming inference must apply the same
    /// normalisation to live windows.
    pub fn normalization(&self) -> (Vec<f32>, Vec<f32>) {
        self.norm_stats()
    }

    /// Flattened features for projection-based models (Bonsai, DNN):
    /// `([n, 490], labels)`.
    pub fn flat_features(&self, split: Split) -> (Tensor, Vec<usize>) {
        let (x, y) = self.features(split);
        let n = x.dims()[0];
        (x.reshape(&[n, 490]), y)
    }

    /// Un-normalised MFCC maps `[n, 49, 10]` (parallel extraction).
    ///
    /// Clips are distributed across workers; each worker extracts its clips
    /// serially through the shared plan with one reusable scratch, writing
    /// features directly into the output tensor.
    fn raw_features(&self, split: Split) -> Tensor {
        let clips = &self.clips[&split];
        let n = clips.len();
        let mut x = Tensor::zeros(&[n, 49, 10]);
        let plan = self.mfcc.plan();
        parallel_zip_chunks(x.data_mut(), 49 * 10, |i0, chunk| {
            let mut scratch = plan.scratch();
            for (di, row) in chunk.chunks_mut(49 * 10).enumerate() {
                plan.compute_into(&mut scratch, &clips[i0 + di].audio, row);
            }
        });
        x
    }

    /// Per-coefficient mean/std over the training split (cached).
    fn norm_stats(&self) -> (Vec<f32>, Vec<f32>) {
        if let Some(stats) = self.norm.lock().clone() {
            return stats;
        }
        let raw = self.raw_features(Split::Train);
        let n = raw.dims()[0] * raw.dims()[1];
        let coeffs = raw.dims()[2];
        let mut mean = vec![0.0f32; coeffs];
        let mut var = vec![0.0f32; coeffs];
        for row in raw.data().chunks(coeffs) {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        for row in raw.data().chunks(coeffs) {
            for c in 0..coeffs {
                var[c] += (row[c] - mean[c]).powi(2);
            }
        }
        let std: Vec<f32> = var.iter().map(|&v| (v / n as f32).sqrt().max(1e-4)).collect();
        let stats = (mean, std);
        *self.norm.lock() = Some(stats.clone());
        stats
    }
}

/// Shifts a clip by `shift` samples (positive = later), zero-filling.
fn shift_clip(audio: &[f32], shift: isize) -> Vec<f32> {
    let n = audio.len();
    let mut out = vec![0.0f32; n];
    for (i, o) in out.iter_mut().enumerate() {
        let src = i as isize - shift;
        if src >= 0 && (src as usize) < n {
            *o = audio[src as usize];
        }
    }
    out
}

/// Mixes coloured noise into `audio` at an SNR drawn from `snr_db`.
fn add_noise(audio: &mut [f32], snr_db: (f32, f32), rng: &mut SmallRng) {
    let signal_power: f32 = audio.iter().map(|x| x * x).sum::<f32>() / audio.len() as f32;
    if signal_power <= 0.0 {
        return;
    }
    let snr = rng.gen_range(snr_db.0..snr_db.1);
    let noise_power = signal_power / 10f32.powf(snr / 10.0);
    let scale = noise_power.sqrt() * (3.0f32).sqrt(); // uniform [-1,1] has var 1/3
    for x in audio.iter_mut() {
        *x += scale * rng.gen_range(-1.0f32..1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SAMPLES;

    #[test]
    fn generation_is_deterministic() {
        let a = SpeechCommands::generate(DatasetConfig::tiny());
        let b = SpeechCommands::generate(DatasetConfig::tiny());
        assert_eq!(a.clips(Split::Test)[0].audio, b.clips(Split::Test)[0].audio);
        assert_eq!(a.clips(Split::Train)[7].audio, b.clips(Split::Train)[7].audio);
    }

    #[test]
    fn split_sizes_match_config() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        assert_eq!(data.len(Split::Train), 6 * NUM_CLASSES);
        assert_eq!(data.len(Split::Val), 3 * NUM_CLASSES);
        assert_eq!(data.len(Split::Test), 3 * NUM_CLASSES);
    }

    #[test]
    fn labels_are_balanced() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        let mut counts = [0usize; NUM_CLASSES];
        for c in data.clips(Split::Train) {
            counts[c.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 6), "{counts:?}");
    }

    #[test]
    fn features_have_paper_shape_and_are_normalised() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        let (x, y) = data.features(Split::Train);
        assert_eq!(x.dims(), &[72, 1, 49, 10]);
        assert_eq!(y.len(), 72);
        // Train features are standardised per coefficient.
        assert!(x.mean().abs() < 0.15, "mean {}", x.mean());
        let var = x.data().iter().map(|v| v * v).sum::<f32>() / x.numel() as f32;
        assert!((var - 1.0).abs() < 0.35, "var {var}");
    }

    #[test]
    fn flat_features_are_490d() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        let (x, _) = data.flat_features(Split::Val);
        assert_eq!(x.dims(), &[36, 490]);
    }

    #[test]
    fn feature_cache_returns_identical_tensors() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        let (a, _) = data.features(Split::Val);
        let (b, _) = data.features(Split::Val);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn shift_clip_moves_samples() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(shift_clip(&x, 1), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(shift_clip(&x, -2), vec![3.0, 4.0, 0.0, 0.0]);
        assert_eq!(shift_clip(&x, 0), x);
    }

    #[test]
    fn noise_respects_snr_ordering() {
        let mut rng = SmallRng::seed_from_u64(5);
        let clean: Vec<f32> = (0..SAMPLES).map(|t| (t as f32 * 0.01).sin() * 0.5).collect();
        let mut low_snr = clean.clone();
        add_noise(&mut low_snr, (0.0, 0.1), &mut rng);
        let mut high_snr = clean.clone();
        add_noise(&mut high_snr, (30.0, 30.1), &mut rng);
        let err =
            |a: &[f32]| -> f32 { a.iter().zip(&clean).map(|(x, c)| (x - c).powi(2)).sum::<f32>() };
        assert!(err(&low_snr) > 10.0 * err(&high_snr));
    }

    #[test]
    fn different_classes_have_distinct_features() {
        let data = SpeechCommands::generate(DatasetConfig::tiny());
        let (x, y) = data.features(Split::Test);
        // Average within-class distance should undercut between-class distance
        // for at least the silence-vs-keyword contrast.
        let idx_of = |label: usize| y.iter().position(|&l| l == label).unwrap();
        let a = x.slice_batch(idx_of(0));
        let b = x.slice_batch(idx_of(SILENCE));
        let d: f32 = a.data().iter().zip(b.data()).map(|(p, q)| (p - q).powi(2)).sum();
        assert!(d > 1.0, "class features collapse: {d}");
    }
}
