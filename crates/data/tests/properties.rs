//! Property-based tests for the synthetic dataset.

use proptest::prelude::*;
use rand::SeedableRng;
use thnt_data::{synthesize_silence, synthesize_word, WordSignature, SAMPLES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_word_synthesizes_bounded_audio(word in 0usize..30, seed in 0u64..1000) {
        let sig = WordSignature::for_word(word);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let audio = synthesize_word(&sig, &mut rng);
        prop_assert_eq!(audio.len(), SAMPLES);
        prop_assert!(audio.iter().all(|x| x.is_finite() && x.abs() <= 1.5));
        // The clip is not silent.
        let energy: f32 = audio.iter().map(|v| v * v).sum();
        prop_assert!(energy > 1e-4, "word {word} seed {seed} silent: {energy}");
    }

    #[test]
    fn silence_is_quiet_and_bounded(seed in 0u64..1000) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let audio = synthesize_silence(&mut rng);
        prop_assert_eq!(audio.len(), SAMPLES);
        let rms: f32 =
            (audio.iter().map(|v| v * v).sum::<f32>() / SAMPLES as f32).sqrt();
        prop_assert!(rms < 0.1, "silence too loud: rms {rms}");
    }

    #[test]
    fn word_synthesis_is_deterministic_per_seed(word in 0usize..30, seed in 0u64..100) {
        let sig = WordSignature::for_word(word);
        let a = synthesize_word(&sig, &mut rand::rngs::SmallRng::seed_from_u64(seed));
        let b = synthesize_word(&sig, &mut rand::rngs::SmallRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn paired_words_share_spectral_signature_family(pair in 0usize..15) {
        // Words 2k and 2k+1 are built from the same spectral draw; their
        // signatures must differ (temporal mirror) while sharing duration.
        let a = WordSignature::for_word(2 * pair);
        let b = WordSignature::for_word(2 * pair + 1);
        prop_assert_ne!(&a, &b);
    }
}
