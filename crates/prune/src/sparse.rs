//! CSR sparse-matrix execution — the runtime side of §5's pruning argument.
//!
//! The paper notes that a pruned model needs "auxiliary data structures for
//! indexing" and that sparse kernels beat dense ones only above ≈70%
//! sparsity. [`CsrMatrix`] makes both halves measurable: storage via
//! [`CsrMatrix::storage_bytes`] and runtime via [`CsrMatrix::matvec`]
//! (benchmarked against the dense kernel in `thnt-bench`).

use thnt_tensor::{matvec as dense_matvec, Tensor};

/// A compressed-sparse-row matrix over `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values` (`rows + 1` entries).
    row_ptr: Vec<u32>,
    /// Column index per non-zero.
    col_idx: Vec<u32>,
    /// Non-zero values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense 2-D tensor, dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D or has more than `u32::MAX` columns.
    pub fn from_dense(dense: &Tensor) -> Self {
        assert_eq!(dense.shape().rank(), 2, "CsrMatrix expects a 2-D tensor");
        let (rows, cols) = (dense.dims()[0], dense.dims()[1]);
        assert!(cols <= u32::MAX as usize, "too many columns");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.data()[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        let n = self.rows * self.cols;
        if n == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / n as f64
    }

    /// Storage bytes with the given value/index widths (§5's accounting:
    /// values + column indices + row pointers).
    pub fn storage_bytes(&self, value_bytes: u64, index_bytes: u64) -> u64 {
        self.values.len() as u64 * value_bytes
            + self.col_idx.len() as u64 * index_bytes
            + self.row_ptr.len() as u64 * index_bytes
    }

    /// Sparse `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0f32;
            for i in start..end {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            *out = acc;
        }
        y
    }

    /// Reconstructs the dense tensor (for verification).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for r in 0..self.rows {
            for i in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                out.set(&[r, self.col_idx[i] as usize], self.values[i]);
            }
        }
        out
    }
}

/// Convenience check used by benches and tests: dense vs sparse matvec.
pub fn csr_matches_dense(dense: &Tensor, x: &Tensor) -> bool {
    let csr = CsrMatrix::from_dense(dense);
    let got = csr.matvec(x.data());
    let want = dense_matvec(dense, x);
    got.iter().zip(want.data()).all(|(a, b)| (a - b).abs() <= 1e-4 + 1e-4 * b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune_to_sparsity;
    use rand::SeedableRng;
    use thnt_nn::Param;

    fn random_pruned(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Tensor {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut p = Param::new("w", thnt_tensor::gaussian(&[rows, cols], 0.0, 1.0, &mut rng));
        prune_to_sparsity(&mut p, sparsity);
        p.value
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let dense = random_pruned(9, 13, 0.6, 0);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense().data(), dense.data());
    }

    #[test]
    fn matvec_matches_dense_at_all_sparsities() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for &s in &[0.0, 0.3, 0.7, 0.95] {
            let dense = random_pruned(16, 24, s, 2);
            let x = thnt_tensor::gaussian(&[24], 0.0, 1.0, &mut rng);
            assert!(csr_matches_dense(&dense, &x), "mismatch at sparsity {s}");
        }
    }

    #[test]
    fn sparsity_reported_correctly() {
        let dense = random_pruned(20, 20, 0.75, 3);
        let csr = CsrMatrix::from_dense(&dense);
        assert!((csr.sparsity() - 0.75).abs() < 0.01, "{}", csr.sparsity());
        assert_eq!(csr.nnz(), 100);
    }

    #[test]
    fn storage_crossover_is_above_half_sparsity() {
        // §5: with 1-byte values and 2-byte indices, CSR beats dense 1-byte
        // storage only above ~2/3 sparsity.
        let dims = (64usize, 64usize);
        let dense_bytes = (dims.0 * dims.1) as u64; // 1 byte per weight
        let at = |s: f64| {
            CsrMatrix::from_dense(&random_pruned(dims.0, dims.1, s, 4)).storage_bytes(1, 2)
        };
        assert!(at(0.5) > dense_bytes, "50% sparse should not beat dense");
        assert!(at(0.9) < dense_bytes, "90% sparse should beat dense");
    }

    #[test]
    fn empty_and_full_matrices() {
        let zero = CsrMatrix::from_dense(&Tensor::zeros(&[4, 5]));
        assert_eq!(zero.nnz(), 0);
        assert!(zero.matvec(&[1.0; 5]).iter().all(|&v| v == 0.0));
        let full = CsrMatrix::from_dense(&Tensor::ones(&[3, 3]));
        assert_eq!(full.nnz(), 9);
        assert_eq!(full.sparsity(), 0.0);
    }
}
