//! Model compression baselines the paper compares against in §5:
//! gradual magnitude pruning (Zhu & Gupta 2017, Table 7) and ternary weight
//! quantization (Li & Liu 2016).
//!
//! # Gradual pruning
//!
//! [`GradualPruner`] implements the polynomial sparsity schedule
//!
//! ```text
//! s_t = s_f + (s_i − s_f) · (1 − (t − t_0) / (n·Δt))³
//! ```
//!
//! applied every `frequency` steps between `begin_step` and `end_step`.
//! Weights are pruned by magnitude, and pruned positions are masked so
//! subsequent optimizer updates cannot resurrect them.
//!
//! # Sparse storage accounting
//!
//! §5 notes that a pruned model must store indices alongside non-zero
//! values, and that sparse kernels only pay off above ≈70% sparsity;
//! [`sparse_storage_bytes`] models that overhead (CSR-style: one index per
//! non-zero).

pub mod sparse;

pub use sparse::{csr_matches_dense, CsrMatrix};

use thnt_nn::Param;
use thnt_strassen::ternary_values;

/// Polynomial sparsity schedule of Zhu & Gupta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneSchedule {
    /// Initial sparsity (fraction in [0, 1)).
    pub initial_sparsity: f64,
    /// Final sparsity (fraction in (0, 1]).
    pub final_sparsity: f64,
    /// First optimizer step at which pruning occurs.
    pub begin_step: usize,
    /// Step at which the final sparsity is reached.
    pub end_step: usize,
    /// Steps between pruning events.
    pub frequency: usize,
}

impl PruneSchedule {
    /// Creates a schedule ramping from 0 to `final_sparsity` over
    /// `total_steps` with pruning every `frequency` steps.
    ///
    /// # Panics
    ///
    /// Panics if `final_sparsity` is outside `(0, 1]` or `total_steps == 0`.
    pub fn ramp(final_sparsity: f64, total_steps: usize, frequency: usize) -> Self {
        assert!(final_sparsity > 0.0 && final_sparsity <= 1.0, "final sparsity must be in (0, 1]");
        assert!(total_steps > 0, "total_steps must be positive");
        Self {
            initial_sparsity: 0.0,
            final_sparsity,
            begin_step: 0,
            end_step: total_steps,
            frequency: frequency.max(1),
        }
    }

    /// Target sparsity at optimizer step `t`.
    pub fn sparsity_at(&self, t: usize) -> f64 {
        if t < self.begin_step {
            return self.initial_sparsity;
        }
        if t >= self.end_step {
            return self.final_sparsity;
        }
        let progress = (t - self.begin_step) as f64 / (self.end_step - self.begin_step) as f64;
        self.final_sparsity
            + (self.initial_sparsity - self.final_sparsity) * (1.0 - progress).powi(3)
    }

    /// Whether a pruning event fires at step `t`.
    pub fn fires_at(&self, t: usize) -> bool {
        t >= self.begin_step
            && t <= self.end_step
            && (t - self.begin_step).is_multiple_of(self.frequency)
    }
}

/// Stateful gradual pruner holding one binary mask per parameter.
#[derive(Debug)]
pub struct GradualPruner {
    schedule: PruneSchedule,
    masks: Vec<Vec<bool>>,
    step: usize,
}

impl GradualPruner {
    /// Creates a pruner for `num_params` parameters.
    pub fn new(schedule: PruneSchedule, num_params: usize) -> Self {
        Self { schedule, masks: vec![Vec::new(); num_params], step: 0 }
    }

    /// The schedule.
    pub fn schedule(&self) -> &PruneSchedule {
        &self.schedule
    }

    /// Current optimizer step.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Advances one optimizer step: if a pruning event fires, re-prunes each
    /// parameter to the scheduled sparsity (by magnitude, per tensor);
    /// otherwise just re-applies the existing masks (so optimizer updates
    /// cannot resurrect pruned weights).
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the pruner's parameter count.
    pub fn on_step(&mut self, params: &mut [&mut Param]) {
        assert_eq!(params.len(), self.masks.len(), "parameter list changed size");
        if self.schedule.fires_at(self.step) {
            let target = self.schedule.sparsity_at(self.step);
            for (p, mask) in params.iter_mut().zip(self.masks.iter_mut()) {
                *mask = prune_to_sparsity(p, target);
            }
        } else {
            for (p, mask) in params.iter_mut().zip(self.masks.iter()) {
                apply_mask(p, mask);
            }
        }
        self.step += 1;
    }

    /// Overall sparsity across all masked parameters.
    pub fn current_sparsity(&self) -> f64 {
        let total: usize = self.masks.iter().map(|m| m.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let pruned: usize =
            self.masks.iter().map(|m| m.iter().filter(|&&keep| !keep).count()).sum();
        pruned as f64 / total as f64
    }
}

/// Prunes `param` to `sparsity` by zeroing its smallest-magnitude weights.
/// Returns the keep-mask.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn prune_to_sparsity(param: &mut Param, sparsity: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0, 1]");
    let n = param.numel();
    let prune_count = ((n as f64) * sparsity).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        param.value.data()[a]
            .abs()
            .partial_cmp(&param.value.data()[b].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut mask = vec![true; n];
    for &i in order.iter().take(prune_count) {
        mask[i] = false;
        param.value.data_mut()[i] = 0.0;
    }
    mask
}

/// Re-applies a keep-mask to a parameter (zeroing masked weights and their
/// gradients).
pub fn apply_mask(param: &mut Param, mask: &[bool]) {
    if mask.is_empty() {
        return;
    }
    debug_assert_eq!(mask.len(), param.numel());
    for (i, &keep) in mask.iter().enumerate() {
        if !keep {
            param.value.data_mut()[i] = 0.0;
            param.grad.data_mut()[i] = 0.0;
        }
    }
}

/// Counts non-zero weights across parameters.
pub fn count_nonzero(params: &[&Param]) -> usize {
    params.iter().map(|p| p.value.data().iter().filter(|&&v| v != 0.0).count()).sum()
}

/// CSR-style sparse storage cost: `value_bytes` per non-zero plus
/// `index_bytes` per non-zero (§5's "auxiliary data structures" overhead).
pub fn sparse_storage_bytes(nonzeros: u64, value_bytes: u64, index_bytes: u64) -> u64 {
    nonzeros * (value_bytes + index_bytes)
}

/// Applies TWN ternary quantization (Li & Liu) to every listed parameter in
/// place (`w ← α·sign(w)·1[|w|>Δ]`), as the §5 "model quantization" baseline.
///
/// Returns the number of ternary entries created (for 2-bit size accounting).
pub fn ternarize_weights(params: Vec<&mut Param>) -> u64 {
    let mut entries = 0u64;
    for p in params {
        let t = ternary_values(&p.value);
        p.value = t.reconstruct();
        entries += p.numel() as u64;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use thnt_tensor::Tensor;

    #[test]
    fn schedule_is_monotone_nondecreasing() {
        let s = PruneSchedule::ramp(0.9, 1000, 50);
        let mut prev = 0.0;
        for t in (0..1200).step_by(25) {
            let cur = s.sparsity_at(t);
            assert!(cur + 1e-12 >= prev, "sparsity decreased at step {t}");
            prev = cur;
        }
        assert!((s.sparsity_at(1000) - 0.9).abs() < 1e-9);
        assert!((s.sparsity_at(5000) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn cubic_ramp_front_loads_pruning() {
        let s = PruneSchedule::ramp(0.8, 100, 1);
        // At 50% progress the cubic schedule is past 70% of the way there.
        assert!(s.sparsity_at(50) > 0.8 * 0.7);
    }

    #[test]
    fn prune_removes_smallest_magnitudes() {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.1, -2.0, 0.01, 3.0], &[4]));
        let mask = prune_to_sparsity(&mut p, 0.5);
        assert_eq!(p.value.data(), &[0.0, -2.0, 0.0, 3.0]);
        assert_eq!(mask, vec![false, true, false, true]);
    }

    #[test]
    fn mask_survives_fake_update() {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.1, -2.0, 0.01, 3.0], &[4]));
        let mask = prune_to_sparsity(&mut p, 0.5);
        // Optimizer "resurrects" a pruned weight...
        p.value.data_mut()[0] = 5.0;
        apply_mask(&mut p, &mask);
        assert_eq!(p.value.data()[0], 0.0);
    }

    #[test]
    fn pruner_reaches_final_sparsity() {
        let mut p = Param::new(
            "w",
            Tensor::from_vec((1..=100).map(|v| v as f32 / 100.0).collect(), &[100]),
        );
        let schedule = PruneSchedule::ramp(0.75, 40, 4);
        let mut pruner = GradualPruner::new(schedule, 1);
        for _ in 0..50 {
            let mut list = [&mut p];
            pruner.on_step(&mut list);
        }
        assert!((pruner.current_sparsity() - 0.75).abs() < 0.02);
        assert_eq!(count_nonzero(&[&p]), 25);
    }

    #[test]
    fn sparse_storage_beats_dense_only_at_high_sparsity() {
        // 23.18K params at 1 byte dense. CSR with 1B values + 2B indices.
        let dense = 23_180u64;
        let at_50 = sparse_storage_bytes(11_590, 1, 2);
        let at_90 = sparse_storage_bytes(2_318, 1, 2);
        assert!(at_50 > dense, "50% sparse should NOT beat dense: {at_50} vs {dense}");
        assert!(at_90 < dense, "90% sparse should beat dense: {at_90} vs {dense}");
    }

    #[test]
    fn ternarize_makes_weights_three_valued() {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.9, -0.8, 0.05, -0.02, 0.7, 0.6], &[6]));
        let entries = ternarize_weights(vec![&mut p]);
        assert_eq!(entries, 6);
        let vals: std::collections::BTreeSet<String> =
            p.value.data().iter().map(|v| format!("{v:.4}")).collect();
        assert!(vals.len() <= 3, "more than 3 distinct values: {vals:?}");
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.5, -0.25], &[2]));
        let before = p.value.clone();
        prune_to_sparsity(&mut p, 0.0);
        assert_eq!(p.value.data(), before.data());
    }
}
