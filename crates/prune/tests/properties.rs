//! Property-based tests for pruning invariants.

use proptest::prelude::*;
use thnt_nn::Param;
use thnt_prune::{count_nonzero, prune_to_sparsity, PruneSchedule};
use thnt_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_stays_within_bounds_and_monotone(
        final_sparsity in 0.05f64..1.0,
        total in 10usize..500,
        freq in 1usize..20,
    ) {
        let s = PruneSchedule::ramp(final_sparsity, total, freq);
        let mut prev = -1.0f64;
        for t in 0..total + 50 {
            let v = s.sparsity_at(t);
            prop_assert!((0.0..=final_sparsity + 1e-12).contains(&v), "s({t}) = {v}");
            prop_assert!(v + 1e-12 >= prev, "decrease at {t}");
            prev = v;
        }
        prop_assert!((s.sparsity_at(total + 49) - final_sparsity).abs() < 1e-12);
    }

    #[test]
    fn prune_hits_requested_sparsity_exactly(
        weights in proptest::collection::vec(-5.0f32..5.0, 10..200),
        sparsity in 0.0f64..1.0,
    ) {
        let n = weights.len();
        let mut p = Param::new("w", Tensor::from_vec(weights, &[n]));
        let mask = prune_to_sparsity(&mut p, sparsity);
        let expected_pruned = ((n as f64) * sparsity).round() as usize;
        let pruned = mask.iter().filter(|&&keep| !keep).count();
        prop_assert_eq!(pruned, expected_pruned);
        // Every pruned position is zero.
        for (i, &keep) in mask.iter().enumerate() {
            if !keep {
                prop_assert_eq!(p.value.data()[i], 0.0);
            }
        }
    }

    #[test]
    fn pruning_keeps_largest_magnitudes(
        weights in proptest::collection::vec(-5.0f32..5.0, 20..100),
    ) {
        let n = weights.len();
        let mut p = Param::new("w", Tensor::from_vec(weights.clone(), &[n]));
        prune_to_sparsity(&mut p, 0.5);
        // The max surviving |w| must be >= the max pruned |w| was... i.e.
        // every kept weight's magnitude >= every pruned original magnitude
        // is too strict with ties; check the weaker exact-count property:
        let kept: Vec<f32> = p.value.data().iter().filter(|&&v| v != 0.0).map(|v| v.abs()).collect();
        let mut sorted: Vec<f32> = weights.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[kept.len().saturating_sub(1).min(sorted.len() - 1)];
        for &k in &kept {
            prop_assert!(k + 1e-6 >= threshold * 0.999, "kept {k} below threshold {threshold}");
        }
    }

    #[test]
    fn count_nonzero_matches_manual(
        weights in proptest::collection::vec(-1.0f32..1.0, 1..100),
    ) {
        let n = weights.len();
        let manual = weights.iter().filter(|&&v| v != 0.0).count();
        let p = Param::new("w", Tensor::from_vec(weights, &[n]));
        prop_assert_eq!(count_nonzero(&[&p]), manual);
    }
}
