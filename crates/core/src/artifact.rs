//! The `.thnt2` packed-model artifact: serialize a compiled
//! [`PackedStHybrid`] and reload it **without the training stack**.
//!
//! The training pipeline ends with `PackedStHybrid::compile`, which needs a
//! live [`crate::StHybridNet`] in memory. On a deployment target none of the
//! `thnt-nn` machinery exists; what ships is this artifact — the bitplanes,
//! affines and tree topology, exactly as the engine executes them — and
//! [`load_thnt2`] rebuilds the engine from those bytes alone.
//!
//! # Format
//!
//! A `.thnt2` file is a [`thnt_nn::SectionReader`]-style container (magic
//! `THN2`, version, a tag/length section table, then payloads). Container
//! version 3 additionally zero-pads the table and every payload to 8-byte
//! file offsets so `u64` bitplane words can be *borrowed* in place by
//! [`load_thnt2_ref`]. Sections:
//!
//! ```text
//! FRNT  the compiled front-end stack:
//!       layer_count u32, then per layer a kind byte:
//!         0 conv       wb | â | wc | bias | spec
//!         1 depthwise  wb_signs | â | wc_signs | bias | spec | c u32 | m u32
//!         2 dense      wb | â | wc | bias
//!         3 affine     scale | shift
//!         4 relu       (no payload)
//!         5 gap        (no payload)
//! TREE  the compiled Bonsai head:
//!       depth u32 | sharpness f32 | sigma f32 | num_classes u32
//!       | z dense | theta dense × num_internal | w dense × num_nodes
//!       | v dense × num_nodes
//! META  (optional) serving metadata:
//!       norm_mean | norm_std | MFCC config (9 scalars)
//! QNT8  (optional, container version ≥ 2) the bit-sliced activation
//!       schedule of a quantized engine:
//!       front_count u32 | (in_scale f32, hidden_scale f32) × front_count
//!       | z in_scale f32 | z hidden_scale f32 | zhat_scale f32
//!       | node_count u32 | hidden_scale f32 × node_count
//! RLEW  (optional, container version ≥ 3) run-length-coded weight blobs:
//!       `byte_len u32 | bytes` per mode-1 matrix, in decode order (all of
//!       FRNT front to back, then TREE). See [`SaveOptions::rle_weights`].
//! ```
//!
//! A *packed ternary matrix* begins `rows u32 | cols u32`. In containers
//! before v3 the bitplanes follow directly: `plus u64 × rows·wpr | minus
//! u64 × rows·wpr` (the stable layout of [`PackedTernary::plus_words`]). In
//! v3 a `mode u8` follows the dims: mode 0 (inline) zero-pads to the next
//! 8-byte payload offset and then stores the same two planes — which is
//! what lets the zero-copy loader alias them — while mode 1 (RLE) stores
//! nothing inline; the planes are decoded from the next `RLEW` blob. The
//! RLE bit code is self-delimiting, row-major over *logical* columns (row
//! padding bits are not stored): a zero weight is the single bit `0`, a
//! nonzero weight is `1` followed by a sign bit (`0` = +1, `1` = −1), so a
//! run of n zeros is n `0` bits — a unary run-length marker, after
//! NativeTernary. The stream is zero-padded to a byte boundary.
//!
//! An *f32 vector* is `len u32 | f32 × len`, a *sign vector* is `len u32 |
//! i8 × len` with entries in `{-1, 0, 1}`, a *dense* is `wb | â | wc |
//! bias`, and a *spec* is eight `u32`s
//! (`kh kw stride_h stride_w pad_top pad_bottom pad_left pad_right`).
//!
//! Loading validates every structural invariant — word counts, padding
//! bits, plane overlap, cross-field dimension consistency, finiteness,
//! topology counts — and fails with `InvalidData` on the first violation.
//! Matching the checkpoint contract in `thnt_nn::io`: the failure mode is
//! an error, never silent corruption. Unknown sections are skipped so later
//! versions can add data without breaking this loader.
//!
//! # Zero-copy loading
//!
//! [`load_thnt2`] reads any supported container into a fully owned engine.
//! [`load_thnt2_ref`] decodes straight from a byte slice and, for a v3
//! container on a little-endian target whose buffer is 8-byte aligned
//! (see [`AlignedBytes`]), borrows every inline bitplane from the input —
//! no weight bytes are copied, so load cost is header validation plus
//! invariant scans. When any of those conditions fails it transparently
//! falls back to copying (`Cow::Owned`), so unaligned buffers and v2
//! artifacts still load correctly.

use std::borrow::Cow;
use std::io::{self, Read, Write};
use std::path::Path;

use bytes::{BufMut, BytesMut};
use thnt_bonsai::TreeTopology;
use thnt_dsp::MfccConfig;
use thnt_nn::io::{
    invalid_data, SectionReaderRef, SectionWriter, SECTION_ALIGN, SECTION_ALIGNED_VERSION,
};
use thnt_strassen::PackedTernary;
use thnt_tensor::Conv2dSpec;

use crate::engine::{
    ChannelAffine, PackedBonsai, PackedConv2d, PackedDense, PackedDepthwise2d, PackedLayer,
    PackedStHybrid, PackedStStack,
};
use crate::quantized::{LayerScales, QuantSchedule, QuantizedStHybrid};

const TAG_FRONT: [u8; 4] = *b"FRNT";
const TAG_TREE: [u8; 4] = *b"TREE";
const TAG_META: [u8; 4] = *b"META";
const TAG_QUANT: [u8; 4] = *b"QNT8";
const TAG_RLE: [u8; 4] = *b"RLEW";

/// v3 packed-matrix storage mode: bitplane words inline, 8-byte aligned.
const MODE_INLINE: u8 = 0;
/// v3 packed-matrix storage mode: planes run-length coded in `RLEW`.
const MODE_RLE: u8 = 1;

const KIND_CONV: u8 = 0;
const KIND_DEPTHWISE: u8 = 1;
const KIND_DENSE: u8 = 2;
const KIND_AFFINE: u8 = 3;
const KIND_RELU: u8 = 4;
const KIND_GAP: u8 = 5;

/// Serving metadata embedded alongside the packed weights so a detector can
/// be stood up from the artifact alone: the MFCC front-end configuration
/// and the per-coefficient normalization statistics of the training data.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceMeta {
    /// MFCC extraction parameters the model was trained against.
    pub mfcc: MfccConfig,
    /// Per-coefficient feature means (length `mfcc.num_coeffs`).
    pub norm_mean: Vec<f32>,
    /// Per-coefficient feature standard deviations (same length, positive).
    pub norm_std: Vec<f32>,
}

/// Encoding options for [`save_thnt2_with`] / [`save_quantized_thnt2_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveOptions {
    /// `.thnt2` container version to write: 2 (legacy, unpadded layout) or
    /// 3 (8-byte-aligned payloads, zero-copy loadable).
    pub container_version: u32,
    /// Store ternary weight matrices run-length coded in an `RLEW` section
    /// instead of inline bitplanes. Smaller on disk (a zero weight costs one
    /// bit instead of two, and row padding bits are not stored), but the
    /// loader must decode to owned planes — mutually exclusive with
    /// zero-copy borrowing. Requires `container_version >= 3`.
    pub rle_weights: bool,
}

impl Default for SaveOptions {
    /// Same as [`SaveOptions::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

impl SaveOptions {
    /// Legacy v2 container: unpadded, inline bitplanes.
    pub fn v2() -> Self {
        Self { container_version: 2, rle_weights: false }
    }

    /// Aligned v3 container with inline bitplanes (zero-copy loadable).
    pub fn v3() -> Self {
        Self { container_version: SECTION_ALIGNED_VERSION, rle_weights: false }
    }

    /// Aligned v3 container with run-length-coded weights (smallest files).
    pub fn v3_rle() -> Self {
        Self { container_version: SECTION_ALIGNED_VERSION, rle_weights: true }
    }

    /// Resolves the format from the `THNT_ARTIFACT_FORMAT` environment
    /// variable: `v2`, `v3` or `v3-rle`. Unset or unrecognized values fall
    /// back to `v3`, the default write format. CI uses this to run the
    /// artifact and serve suites unchanged against every format.
    pub fn from_env() -> Self {
        match std::env::var("THNT_ARTIFACT_FORMAT").as_deref() {
            Ok("v2") => Self::v2(),
            Ok("v3-rle") => Self::v3_rle(),
            _ => Self::v3(),
        }
    }

    fn validate(self) -> io::Result<()> {
        if !(2..=SECTION_ALIGNED_VERSION).contains(&self.container_version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unsupported .thnt2 container version {}", self.container_version),
            ));
        }
        if self.rle_weights && self.container_version < SECTION_ALIGNED_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "RLE weights require a v3 container (the mode byte is a v3 field)",
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn put_signs(buf: &mut BytesMut, v: &[i8]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u8(x as u8);
    }
}

fn put_spec(buf: &mut BytesMut, s: &Conv2dSpec) {
    for d in [s.kh, s.kw, s.stride_h, s.stride_w, s.pad_top, s.pad_bottom, s.pad_left, s.pad_right]
    {
        buf.put_u32_le(d as u32);
    }
}

/// Appends the self-delimiting RLE bit code of `p` (see the module docs),
/// zero-padded to a byte boundary.
fn rle_encode(p: &PackedTernary) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut acc = 0u8;
    let mut filled = 0u8;
    let mut push_bit = |bytes: &mut Vec<u8>, bit: bool| {
        acc |= (bit as u8) << filled;
        filled += 1;
        if filled == 8 {
            bytes.push(acc);
            acc = 0;
            filled = 0;
        }
    };
    for r in 0..p.rows() {
        for c in 0..p.cols() {
            let v = p.get(r, c);
            if v == 0.0 {
                push_bit(&mut bytes, false);
            } else {
                push_bit(&mut bytes, true);
                push_bit(&mut bytes, v < 0.0);
            }
        }
    }
    // Flush the partial byte; its unused high bits are already zero.
    if filled > 0 {
        bytes.push(acc);
    }
    bytes
}

/// Version- and mode-aware section encoder. Holds the accumulated `RLEW`
/// payload when weights are being run-length coded.
struct Enc {
    version: u32,
    rle: Option<BytesMut>,
}

impl Enc {
    fn new(opts: SaveOptions) -> io::Result<Self> {
        opts.validate()?;
        Ok(Self { version: opts.container_version, rle: opts.rle_weights.then(BytesMut::new) })
    }

    fn put_packed(&mut self, buf: &mut BytesMut, p: &PackedTernary) {
        buf.put_u32_le(p.rows() as u32);
        buf.put_u32_le(p.cols() as u32);
        if self.version >= SECTION_ALIGNED_VERSION {
            if let Some(rle) = &mut self.rle {
                buf.put_u8(MODE_RLE);
                let blob = rle_encode(p);
                rle.put_u32_le(blob.len() as u32);
                rle.put_slice(&blob);
                return;
            }
            buf.put_u8(MODE_INLINE);
            // Pad to the next 8-byte *payload* offset; v3 payloads start on
            // 8-byte file offsets, so the words land 8-byte aligned in the
            // file and a zero-copy reader can borrow them in place.
            while !buf.len().is_multiple_of(SECTION_ALIGN) {
                buf.put_u8(0);
            }
        }
        for &w in p.plus_words() {
            buf.put_u64_le(w);
        }
        for &w in p.minus_words() {
            buf.put_u64_le(w);
        }
    }

    fn put_dense(&mut self, buf: &mut BytesMut, d: &PackedDense) {
        self.put_packed(buf, &d.wb);
        put_f32_vec(buf, &d.a_hat);
        self.put_packed(buf, &d.wc);
        put_f32_vec(buf, &d.bias);
    }

    fn encode_front(&mut self, front: &PackedStStack) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_u32_le(front.layers().len() as u32);
        for layer in front.layers() {
            match layer {
                PackedLayer::Conv(c) => {
                    buf.put_u8(KIND_CONV);
                    self.put_packed(&mut buf, &c.wb);
                    put_f32_vec(&mut buf, &c.a_hat);
                    self.put_packed(&mut buf, &c.wc);
                    put_f32_vec(&mut buf, &c.bias);
                    put_spec(&mut buf, &c.spec);
                }
                PackedLayer::Depthwise(d) => {
                    buf.put_u8(KIND_DEPTHWISE);
                    put_signs(&mut buf, &d.wb_signs);
                    put_f32_vec(&mut buf, &d.a_hat);
                    put_signs(&mut buf, &d.wc_signs);
                    put_f32_vec(&mut buf, &d.bias);
                    put_spec(&mut buf, &d.spec);
                    buf.put_u32_le(d.channels as u32);
                    buf.put_u32_le(d.multiplier as u32);
                }
                PackedLayer::Dense(f) => {
                    buf.put_u8(KIND_DENSE);
                    self.put_dense(&mut buf, f);
                }
                PackedLayer::Affine(a) => {
                    buf.put_u8(KIND_AFFINE);
                    put_f32_vec(&mut buf, &a.scale);
                    put_f32_vec(&mut buf, &a.shift);
                }
                PackedLayer::Relu => buf.put_u8(KIND_RELU),
                PackedLayer::GlobalAvgPool => buf.put_u8(KIND_GAP),
            }
        }
        buf
    }

    fn encode_tree(&mut self, tree: &PackedBonsai) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_u32_le(tree.topo.depth() as u32);
        buf.put_f32_le(tree.sharpness);
        buf.put_f32_le(tree.sigma);
        buf.put_u32_le(tree.num_classes as u32);
        self.put_dense(&mut buf, &tree.z);
        for d in tree.theta.iter().chain(tree.w.iter()).chain(tree.v.iter()) {
            self.put_dense(&mut buf, d);
        }
        buf
    }
}

fn encode_meta(meta: &InferenceMeta) -> BytesMut {
    let mut buf = BytesMut::new();
    put_f32_vec(&mut buf, &meta.norm_mean);
    put_f32_vec(&mut buf, &meta.norm_std);
    let m = &meta.mfcc;
    buf.put_f32_le(m.sample_rate);
    buf.put_u32_le(m.frame_len as u32);
    buf.put_u32_le(m.hop as u32);
    buf.put_u32_le(m.fft_size as u32);
    buf.put_u32_le(m.num_mel as u32);
    buf.put_u32_le(m.num_coeffs as u32);
    buf.put_f32_le(m.f_lo);
    buf.put_f32_le(m.f_hi);
    buf.put_f32_le(m.preemphasis);
    buf
}

fn encode_schedule(schedule: &QuantSchedule) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(schedule.front.len() as u32);
    for ls in &schedule.front {
        buf.put_f32_le(ls.in_scale);
        buf.put_f32_le(ls.hidden_scale);
    }
    buf.put_f32_le(schedule.z.in_scale);
    buf.put_f32_le(schedule.z.hidden_scale);
    buf.put_f32_le(schedule.zhat_scale);
    buf.put_u32_le(schedule.node_hidden.len() as u32);
    for &s in &schedule.node_hidden {
        buf.put_f32_le(s);
    }
    buf
}

/// Writes `engine` (and optionally `meta`) as a `.thnt2` artifact in the
/// format selected by [`SaveOptions::from_env`] (v3 unless
/// `THNT_ARTIFACT_FORMAT` overrides it).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_thnt2<W: Write>(
    engine: &PackedStHybrid,
    meta: Option<&InferenceMeta>,
    writer: W,
) -> io::Result<()> {
    save_thnt2_with(engine, meta, SaveOptions::default(), writer)
}

/// Writes `engine` (and optionally `meta`) as a `.thnt2` artifact in an
/// explicitly chosen format.
///
/// # Errors
///
/// Returns `InvalidInput` for an unsupported option combination, or any
/// I/O error from the writer.
pub fn save_thnt2_with<W: Write>(
    engine: &PackedStHybrid,
    meta: Option<&InferenceMeta>,
    opts: SaveOptions,
    writer: W,
) -> io::Result<()> {
    let mut enc = Enc::new(opts)?;
    let mut sections = SectionWriter::with_version(opts.container_version);
    *sections.section(TAG_FRONT) = enc.encode_front(&engine.front);
    *sections.section(TAG_TREE) = enc.encode_tree(&engine.tree);
    if let Some(m) = meta {
        *sections.section(TAG_META) = encode_meta(m);
    }
    if let Some(rle) = enc.rle.take() {
        *sections.section(TAG_RLE) = rle;
    }
    sections.write_to(writer)
}

/// Writes a quantized engine as a `.thnt2` artifact: the packed weight
/// sections plus a `QNT8` schedule section. [`load_thnt2`] reads the same
/// bytes back as an f32 packed engine (ignoring the schedule);
/// [`load_quantized_thnt2`] reconstructs the quantized engine. The format
/// is selected by [`SaveOptions::from_env`].
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_quantized_thnt2<W: Write>(
    engine: &QuantizedStHybrid,
    meta: Option<&InferenceMeta>,
    writer: W,
) -> io::Result<()> {
    save_quantized_thnt2_with(engine, meta, SaveOptions::default(), writer)
}

/// Writes a quantized engine as a `.thnt2` artifact in an explicitly
/// chosen format.
///
/// # Errors
///
/// Returns `InvalidInput` for an unsupported option combination, or any
/// I/O error from the writer.
pub fn save_quantized_thnt2_with<W: Write>(
    engine: &QuantizedStHybrid,
    meta: Option<&InferenceMeta>,
    opts: SaveOptions,
    writer: W,
) -> io::Result<()> {
    let base = engine.base();
    let mut enc = Enc::new(opts)?;
    let mut sections = SectionWriter::with_version(opts.container_version);
    *sections.section(TAG_FRONT) = enc.encode_front(&base.front);
    *sections.section(TAG_TREE) = enc.encode_tree(&base.tree);
    *sections.section(TAG_QUANT) = encode_schedule(engine.schedule());
    if let Some(m) = meta {
        *sections.section(TAG_META) = encode_meta(m);
    }
    if let Some(rle) = enc.rle.take() {
        *sections.section(TAG_RLE) = rle;
    }
    sections.write_to(writer)
}

// ---------------------------------------------------------------------------
// Decoding. Every read is bounds-checked; every cross-field invariant is
// validated before the value is used.
// ---------------------------------------------------------------------------

/// Shared decode state threaded through the weight sections: the container
/// version (selects the packed-matrix layout), whether bitplanes may alias
/// the input buffer, and the `RLEW` blob stream for mode-1 matrices.
struct DecodeCtx<'a> {
    version: u32,
    /// Bitplane words may be borrowed from the buffer (v3 container,
    /// little-endian target, caller opted in). Pointer alignment is still
    /// checked per matrix; a misaligned buffer silently falls back to
    /// copying.
    borrow: bool,
    rle: Option<RleStream<'a>>,
}

/// Sequential reader over the `RLEW` section: `byte_len u32 | bytes` per
/// run-length-coded matrix, in decode order.
struct RleStream<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RleStream<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn next_blob(&mut self, what: &str) -> io::Result<&'a [u8]> {
        let rem = self.buf.len() - self.pos;
        if rem < 4 {
            return Err(invalid_data(format!(
                "RLEW section exhausted reading blob header for {what}"
            )));
        }
        let len =
            u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4-byte slice"))
                as usize;
        self.pos += 4;
        if self.buf.len() - self.pos < len {
            return Err(invalid_data(format!(
                "RLEW section truncated: blob for {what} needs {len} bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let blob = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(blob)
    }

    fn finish(self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(invalid_data(format!(
                "RLEW section has {} unconsumed bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Decodes one RLE blob back into bitplanes for a `rows x cols` matrix.
/// Verifies the stream holds exactly `rows·cols` entries and that the
/// byte-boundary padding bits are zero.
fn rle_decode(
    blob: &[u8],
    rows: usize,
    cols: usize,
    what: &str,
) -> io::Result<(Vec<u64>, Vec<u64>)> {
    let wpr = cols.div_ceil(64);
    let mut plus = vec![0u64; rows * wpr];
    let mut minus = vec![0u64; rows * wpr];
    let total_bits = blob.len() * 8;
    let mut bit = 0usize;
    let next = |bit: &mut usize| -> io::Result<bool> {
        if *bit >= total_bits {
            return Err(invalid_data(format!("{what}: RLE stream truncated")));
        }
        let b = blob[*bit / 8] >> (*bit % 8) & 1;
        *bit += 1;
        Ok(b != 0)
    };
    for r in 0..rows {
        for c in 0..cols {
            if next(&mut bit)? {
                let word = r * wpr + c / 64;
                let mask = 1u64 << (c % 64);
                if next(&mut bit)? {
                    minus[word] |= mask;
                } else {
                    plus[word] |= mask;
                }
            }
        }
    }
    // The stream must end in the byte holding the last entry (no trailing
    // bytes) and its padding bits must be zero — the same no-slack contract
    // every other decoder in this module enforces.
    if bit.div_ceil(8) != blob.len() {
        return Err(invalid_data(format!(
            "{what}: RLE blob has {} trailing bytes",
            blob.len() - bit.div_ceil(8)
        )));
    }
    while bit < total_bits {
        if next(&mut bit)? {
            return Err(invalid_data(format!("{what}: non-zero RLE padding bits")));
        }
    }
    Ok((plus, minus))
}

/// A bounds-checked little-endian reader over one section payload. Borrows
/// the payload, so decoded matrices can alias it.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self { buf, pos: 0, section }
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn need(&self, bytes: usize, what: &str) -> io::Result<()> {
        if self.remaining() < bytes {
            return Err(invalid_data(format!(
                "{} section truncated reading {what}: need {bytes} bytes, have {}",
                self.section,
                self.remaining()
            )));
        }
        Ok(())
    }

    #[inline]
    fn take(&mut self, bytes: usize, what: &str) -> io::Result<&'a [u8]> {
        self.need(bytes, what)?;
        let s = &self.buf[self.pos..self.pos + bytes];
        self.pos += bytes;
        Ok(s)
    }

    #[inline]
    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    #[inline]
    fn u32(&mut self, what: &str) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }

    fn f32(&mut self, what: &str) -> io::Result<f32> {
        let v = f32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice"));
        if !v.is_finite() {
            return Err(invalid_data(format!("{}: non-finite {what}", self.section)));
        }
        Ok(v)
    }

    fn f32_vec(&mut self, what: &str) -> io::Result<Vec<f32>> {
        Ok(self.f32_cow(false, what)?.into_owned())
    }

    /// Reads a length-prefixed `f32` run, validated finite: borrowed
    /// straight from the payload when the decode context allows aliasing
    /// and the slice is 4-byte aligned in memory, copied otherwise.
    #[inline]
    fn f32_cow(&mut self, borrow: bool, what: &str) -> io::Result<Cow<'a, [f32]>> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(4 * len, what)?;
        // Content scan: owning loads validate every value; borrowing loads
        // treat the mapped artifact as trusted and skip the O(model) scan —
        // any bit pattern is a valid f32, so this trades error reporting
        // (never safety) for cold-start speed.
        if !borrow {
            for chunk in bytes.chunks_exact(4) {
                let v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                if !v.is_finite() {
                    return Err(invalid_data(format!(
                        "{}: non-finite entry in {what}",
                        self.section
                    )));
                }
            }
        }
        if borrow && cfg!(target_endian = "little") && (bytes.as_ptr() as usize).is_multiple_of(4) {
            // SAFETY: the slice is 4-byte aligned (checked above), its
            // length is an exact multiple of 4, and every bit pattern is a
            // valid f32. On little-endian targets the in-memory values equal
            // the wire encoding, so no conversion is needed.
            let (head, mid, tail) = unsafe { bytes.align_to::<f32>() };
            debug_assert!(head.is_empty() && tail.is_empty() && mid.len() == len);
            return Ok(Cow::Borrowed(mid));
        }
        let mut out = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
        }
        Ok(Cow::Owned(out))
    }

    /// Reads a length-prefixed ternary sign run (`{−1, 0, 1}` as `i8`):
    /// borrowed from the payload when the decode context allows aliasing
    /// (`i8` has alignment 1, so a borrow never needs padding), copied
    /// otherwise.
    #[inline]
    fn signs(&mut self, borrow: bool, what: &str) -> io::Result<Cow<'a, [i8]>> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        // Same trust model as `f32_cow`: only owning loads pay the content
        // scan. A non-ternary sign in a trusted artifact skews the affected
        // channel's output; it cannot index out of bounds.
        if !borrow {
            for &b in bytes {
                let v = b as i8;
                if !(-1..=1).contains(&v) {
                    return Err(invalid_data(format!(
                        "{}: non-ternary sign {v} in {what}",
                        self.section
                    )));
                }
            }
        }
        if borrow {
            // SAFETY: `i8` and `u8` have identical size and alignment, and
            // every bit pattern is a valid i8.
            let signs =
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const i8, bytes.len()) };
            return Ok(Cow::Borrowed(signs));
        }
        Ok(Cow::Owned(bytes.iter().map(|&b| b as i8).collect()))
    }

    /// Skips zero padding up to the next 8-byte payload offset (v3 inline
    /// matrices only). Rejects non-zero pad bytes.
    #[inline]
    fn skip_pad8(&mut self, what: &str) -> io::Result<()> {
        let pad = (SECTION_ALIGN - self.pos % SECTION_ALIGN) % SECTION_ALIGN;
        let bytes = self.take(pad, what)?;
        if bytes.iter().any(|&b| b != 0) {
            return Err(invalid_data(format!(
                "{}: non-zero alignment padding before {what}",
                self.section
            )));
        }
        Ok(())
    }

    /// Reads `words` little-endian `u64`s: borrowed straight from the
    /// payload when the decode context allows aliasing and the slice is
    /// 8-byte aligned in memory, copied otherwise.
    #[inline]
    fn u64_words(&mut self, words: usize, borrow: bool, what: &str) -> io::Result<Cow<'a, [u64]>> {
        let bytes = self.take(8 * words, what)?;
        if borrow && cfg!(target_endian = "little") && (bytes.as_ptr() as usize).is_multiple_of(8) {
            // SAFETY: the slice is 8-byte aligned (checked above), its
            // length is an exact multiple of 8, and every bit pattern is a
            // valid u64. On little-endian targets the in-memory words equal
            // the wire encoding, so no conversion is needed.
            let (head, mid, tail) = unsafe { bytes.align_to::<u64>() };
            debug_assert!(head.is_empty() && tail.is_empty() && mid.len() == words);
            return Ok(Cow::Borrowed(mid));
        }
        let mut out = Vec::with_capacity(words);
        for chunk in bytes.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        Ok(Cow::Owned(out))
    }

    #[inline]
    fn packed(&mut self, ctx: &mut DecodeCtx<'a>, what: &str) -> io::Result<PackedTernary<'a>> {
        let rows = self.u32(what)? as usize;
        let cols = self.u32(what)? as usize;
        // Checked arithmetic: corrupt dimensions must become an error, not
        // a debug-build overflow panic (the byte count check right after
        // rejects any size the section cannot actually hold).
        let words = rows
            .checked_mul(cols.div_ceil(64))
            .filter(|&w| w <= usize::MAX / 16)
            .ok_or_else(|| {
                invalid_data(format!(
                    "{}: {what}: implausible packed dims {rows}x{cols}",
                    self.section
                ))
            })?;
        let (plus, minus) = if ctx.version >= SECTION_ALIGNED_VERSION {
            match self.u8(what)? {
                MODE_INLINE => {
                    self.skip_pad8(what)?;
                    (
                        self.u64_words(words, ctx.borrow, what)?,
                        self.u64_words(words, ctx.borrow, what)?,
                    )
                }
                MODE_RLE => {
                    let stream = ctx.rle.as_mut().ok_or_else(|| {
                        invalid_data(format!(
                            "{}: {what} is RLE-coded but the artifact has no RLEW section",
                            self.section
                        ))
                    })?;
                    let blob = stream.next_blob(what)?;
                    let (p, m) = rle_decode(blob, rows, cols, what)?;
                    (Cow::Owned(p), Cow::Owned(m))
                }
                other => {
                    return Err(invalid_data(format!(
                        "{}: {what}: unknown packed storage mode {other}",
                        self.section
                    )))
                }
            }
        } else {
            (self.u64_words(words, false, what)?, self.u64_words(words, false, what)?)
        };
        // Borrowing loads skip the O(words) plane-content scans (padding
        // bits, dual-claimed entries) under the same trust model as
        // `f32_cow`: structural invariants are always enforced, content
        // invariants only when copying anyway.
        let parts = if ctx.borrow {
            PackedTernary::from_cow_parts_trusted(rows, cols, plus, minus)
        } else {
            PackedTernary::from_cow_parts(rows, cols, plus, minus)
        };
        parts.map_err(|e| invalid_data(format!("{}: {what}: {e}", self.section)))
    }

    fn spec(&mut self, what: &str) -> io::Result<Conv2dSpec> {
        let mut d = [0usize; 8];
        for slot in &mut d {
            *slot = self.u32(what)? as usize;
        }
        if d[0] == 0 || d[1] == 0 || d[2] == 0 || d[3] == 0 {
            return Err(invalid_data(format!(
                "{}: {what}: kernel and stride must be positive",
                self.section
            )));
        }
        Ok(Conv2dSpec {
            kh: d[0],
            kw: d[1],
            stride_h: d[2],
            stride_w: d[3],
            pad_top: d[4],
            pad_bottom: d[5],
            pad_left: d[6],
            pad_right: d[7],
        })
    }

    /// Reads a packed dense layer and checks its internal geometry:
    /// `W_b: [r, in]`, `â: [r]`, `W_c: [out, r]`, `bias: [out]`.
    #[inline]
    fn dense(&mut self, ctx: &mut DecodeCtx<'a>, what: &str) -> io::Result<PackedDense<'a>> {
        let wb = self.packed(ctx, what)?;
        let a_hat = self.f32_cow(ctx.borrow, what)?;
        let wc = self.packed(ctx, what)?;
        let bias = self.f32_cow(ctx.borrow, what)?;
        if wb.rows() != a_hat.len() || wc.cols() != a_hat.len() || wc.rows() != bias.len() {
            return Err(invalid_data(format!(
                "{}: {what}: inconsistent dense geometry (wb {}x{}, â {}, wc {}x{}, bias {})",
                self.section,
                wb.rows(),
                wb.cols(),
                a_hat.len(),
                wc.rows(),
                wc.cols(),
                bias.len()
            )));
        }
        Ok(PackedDense { wb, a_hat, wc, bias })
    }

    fn finish(self) -> io::Result<()> {
        if self.remaining() > 0 {
            return Err(invalid_data(format!(
                "{} section has {} trailing bytes",
                self.section,
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn decode_front<'a>(buf: &'a [u8], ctx: &mut DecodeCtx<'a>) -> io::Result<PackedStStack<'a>> {
    let mut cur = Cursor::new(buf, "FRNT");
    let count = cur.u32("layer count")? as usize;
    let mut layers = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let kind = cur.u8("layer kind")?;
        let layer = match kind {
            KIND_CONV => {
                let wb = cur.packed(ctx, "conv wb")?;
                let a_hat = cur.f32_cow(ctx.borrow, "conv â")?;
                let wc = cur.packed(ctx, "conv wc")?;
                let bias = cur.f32_cow(ctx.borrow, "conv bias")?;
                let spec = cur.spec("conv spec")?;
                let Some(patch) = spec.kh.checked_mul(spec.kw) else {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: implausible conv kernel {}x{}",
                        spec.kh, spec.kw
                    )));
                };
                if wb.rows() != a_hat.len()
                    || wc.cols() != a_hat.len()
                    || wc.rows() != bias.len()
                    || wb.cols() == 0
                    || wb.cols() % patch != 0
                {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: inconsistent conv geometry"
                    )));
                }
                PackedLayer::Conv(PackedConv2d { wb, a_hat, wc, bias, spec })
            }
            KIND_DEPTHWISE => {
                let wb_signs = cur.signs(ctx.borrow, "depthwise wb")?;
                let a_hat = cur.f32_cow(ctx.borrow, "depthwise â")?;
                let wc_signs = cur.signs(ctx.borrow, "depthwise wc")?;
                let bias = cur.f32_cow(ctx.borrow, "depthwise bias")?;
                let spec = cur.spec("depthwise spec")?;
                let channels = cur.u32("depthwise channels")? as usize;
                let multiplier = cur.u32("depthwise multiplier")? as usize;
                let hidden = channels.saturating_mul(multiplier);
                // `hidden·kh·kw` under checked arithmetic: on corrupt bytes
                // the product must fail validation, not overflow-panic.
                let taps = spec.kh.checked_mul(spec.kw).and_then(|p| p.checked_mul(hidden));
                if channels == 0
                    || multiplier == 0
                    || wc_signs.len() != hidden
                    || a_hat.len() != hidden
                    || bias.len() != channels
                    || taps != Some(wb_signs.len())
                {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: inconsistent depthwise geometry"
                    )));
                }
                PackedLayer::Depthwise(PackedDepthwise2d {
                    wb_signs,
                    a_hat,
                    wc_signs,
                    bias,
                    spec,
                    channels,
                    multiplier,
                })
            }
            KIND_DENSE => PackedLayer::Dense(cur.dense(ctx, "dense layer")?),
            KIND_AFFINE => {
                let scale = cur.f32_vec("affine scale")?;
                let shift = cur.f32_vec("affine shift")?;
                if scale.len() != shift.len() {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: affine scale/shift length mismatch"
                    )));
                }
                PackedLayer::Affine(ChannelAffine { scale, shift })
            }
            KIND_RELU => PackedLayer::Relu,
            KIND_GAP => PackedLayer::GlobalAvgPool,
            other => {
                return Err(invalid_data(format!("FRNT: layer {i}: unknown layer kind {other}")))
            }
        };
        layers.push(layer);
    }
    cur.finish()?;
    Ok(PackedStStack { layers })
}

fn decode_tree<'a>(buf: &'a [u8], ctx: &mut DecodeCtx<'a>) -> io::Result<PackedBonsai<'a>> {
    let mut cur = Cursor::new(buf, "TREE");
    let depth = cur.u32("depth")? as usize;
    if depth > 16 {
        return Err(invalid_data(format!("TREE: implausible tree depth {depth}")));
    }
    let sharpness = cur.f32("sharpness")?;
    let sigma = cur.f32("sigma")?;
    let num_classes = cur.u32("num_classes")? as usize;
    if num_classes == 0 {
        return Err(invalid_data("TREE: num_classes must be positive"));
    }
    let topo = TreeTopology::new(depth);
    let z = cur.dense(ctx, "projection z")?;
    let proj_dim = z.bias.len();
    let read_nodes = |cur: &mut Cursor<'a>,
                      ctx: &mut DecodeCtx<'a>,
                      n: usize,
                      out_dim: usize,
                      what|
     -> io::Result<Vec<_>> {
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let d = cur.dense(ctx, what)?;
            if d.wb.cols() != proj_dim || d.bias.len() != out_dim {
                return Err(invalid_data(format!(
                    "TREE: {what} shape [{} -> {}] does not match proj_dim {proj_dim} / \
                     out_dim {out_dim}",
                    d.wb.cols(),
                    d.bias.len()
                )));
            }
            nodes.push(d);
        }
        Ok(nodes)
    };
    let theta = read_nodes(&mut cur, ctx, topo.num_internal(), 1, "branch node θ")?;
    let w = read_nodes(&mut cur, ctx, topo.num_nodes(), num_classes, "score node W")?;
    let v = read_nodes(&mut cur, ctx, topo.num_nodes(), num_classes, "gate node V")?;
    cur.finish()?;
    Ok(PackedBonsai { z, theta, w, v, topo, sharpness, sigma, num_classes })
}

fn decode_meta(buf: &[u8]) -> io::Result<InferenceMeta> {
    let mut cur = Cursor::new(buf, "META");
    let norm_mean = cur.f32_vec("norm_mean")?;
    let norm_std = cur.f32_vec("norm_std")?;
    let mfcc = MfccConfig {
        sample_rate: cur.f32("sample_rate")?,
        frame_len: cur.u32("frame_len")? as usize,
        hop: cur.u32("hop")? as usize,
        fft_size: cur.u32("fft_size")? as usize,
        num_mel: cur.u32("num_mel")? as usize,
        num_coeffs: cur.u32("num_coeffs")? as usize,
        f_lo: cur.f32("f_lo")?,
        f_hi: cur.f32("f_hi")?,
        preemphasis: cur.f32("preemphasis")?,
    };
    cur.finish()?;
    if norm_mean.len() != norm_std.len() || norm_mean.len() != mfcc.num_coeffs {
        return Err(invalid_data(format!(
            "META: normalization length {} / {} does not match num_coeffs {}",
            norm_mean.len(),
            norm_std.len(),
            mfcc.num_coeffs
        )));
    }
    if norm_std.iter().any(|&s| s <= 0.0) {
        return Err(invalid_data("META: norm_std entries must be positive"));
    }
    // Enforce every invariant `Mfcc::new` (and the FFT/mel stages under it)
    // would otherwise assert at detector-construction time: a META section
    // that cannot drive the front-end must fail here, at load.
    if mfcc.sample_rate <= 0.0 || mfcc.frame_len == 0 || mfcc.hop == 0 {
        return Err(invalid_data("META: MFCC geometry must be positive"));
    }
    if !mfcc.fft_size.is_power_of_two() || mfcc.fft_size < mfcc.frame_len {
        return Err(invalid_data(format!(
            "META: fft_size {} must be a power of two >= frame_len {}",
            mfcc.fft_size, mfcc.frame_len
        )));
    }
    if mfcc.num_mel == 0 || mfcc.num_coeffs == 0 || mfcc.num_coeffs > mfcc.num_mel {
        return Err(invalid_data(format!(
            "META: need 0 < num_coeffs ({}) <= num_mel ({})",
            mfcc.num_coeffs, mfcc.num_mel
        )));
    }
    if !(mfcc.f_lo < mfcc.f_hi && mfcc.f_hi <= mfcc.sample_rate / 2.0) {
        return Err(invalid_data(format!(
            "META: invalid mel band [{}, {}] for sample rate {}",
            mfcc.f_lo, mfcc.f_hi, mfcc.sample_rate
        )));
    }
    Ok(InferenceMeta { mfcc, norm_mean, norm_std })
}

/// Decodes a whole artifact from a byte slice. `allow_borrow` selects the
/// zero-copy path ([`load_thnt2_ref`]) vs. forced copies ([`load_thnt2`]).
fn decode_artifact(
    bytes: &[u8],
    allow_borrow: bool,
) -> io::Result<(PackedStHybrid<'_>, Option<InferenceMeta>)> {
    let mut sections = SectionReaderRef::parse(bytes)?;
    let version = sections.version();
    let front = sections
        .take(TAG_FRONT)
        .ok_or_else(|| invalid_data("artifact is missing the FRNT section"))?;
    let tree = sections
        .take(TAG_TREE)
        .ok_or_else(|| invalid_data("artifact is missing the TREE section"))?;
    let rle = sections.take(TAG_RLE);
    let meta = sections.take(TAG_META).map(|s| decode_meta(s.bytes)).transpose()?;
    // Any other section is from a newer writer; ignoring it cannot corrupt
    // the engine because all required data is self-contained above.
    let mut ctx = DecodeCtx {
        version,
        borrow: allow_borrow && version >= SECTION_ALIGNED_VERSION,
        rle: rle.map(|s| RleStream::new(s.bytes)),
    };
    let front = decode_front(front.bytes, &mut ctx)?;
    let tree = decode_tree(tree.bytes, &mut ctx)?;
    if let Some(stream) = ctx.rle {
        stream.finish()?;
    }
    Ok((PackedStHybrid { front, tree }, meta))
}

/// Reconstructs a [`PackedStHybrid`] (and embedded [`InferenceMeta`], if
/// present) from a `.thnt2` artifact. The loader references no `thnt-nn`
/// training type: the engine is rebuilt directly from the serialized
/// bitplanes. Every weight is copied into owned storage; see
/// [`load_thnt2_ref`] for the zero-copy variant.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed artifact, or I/O errors from the
/// reader.
pub fn load_thnt2<R: Read>(
    mut reader: R,
) -> io::Result<(PackedStHybrid<'static>, Option<InferenceMeta>)> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let (engine, meta) = decode_artifact(&raw, false)?;
    Ok((engine.into_owned(), meta))
}

/// Reconstructs a [`PackedStHybrid`] that *borrows* its bitplanes from
/// `bytes` wherever possible: for a v3 container on a little-endian target
/// with an 8-byte-aligned buffer (e.g. a memory-mapped file, or
/// [`AlignedBytes`]), no inline bitplane is copied — the engine aliases the
/// artifact, so N serving processes mapping the same file share one copy of
/// the weights and cold start is header validation plus a walk of the
/// section structure. Misaligned buffers, big-endian targets, v2 artifacts
/// and RLE-coded matrices transparently fall back to owned (copied) planes.
///
/// # Trust model
///
/// Structural invariants (section table, lengths, geometry, alignment
/// padding) are always enforced — truncated or misframed artifacts fail
/// exactly as they do in [`load_thnt2`]. The O(model) *content* scans
/// (f32 finiteness, ternary sign range, bitplane padding/overlap bits)
/// run only on the owning path: a mapped artifact is treated as trusted,
/// the same way an mmap'd executable's text is. Corrupt content in a
/// trusted artifact produces wrong logits, never memory unsafety. Load
/// through [`load_thnt2`] when the artifact comes from an untrusted
/// source.
///
/// Use [`PackedStHybrid::bitplanes_borrowed`] to check which path was
/// taken, and [`PackedStHybrid::into_owned`] to detach the result from the
/// buffer.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed artifact.
pub fn load_thnt2_ref(bytes: &[u8]) -> io::Result<(PackedStHybrid<'_>, Option<InferenceMeta>)> {
    decode_artifact(bytes, true)
}

fn decode_schedule(buf: &[u8]) -> io::Result<QuantSchedule> {
    let mut cur = Cursor::new(buf, "QNT8");
    let front_count = cur.u32("front layer count")? as usize;
    if front_count > 4096 {
        return Err(invalid_data(format!("QNT8: implausible front layer count {front_count}")));
    }
    let mut front = Vec::with_capacity(front_count);
    for _ in 0..front_count {
        front.push(LayerScales {
            in_scale: cur.f32("front in_scale")?,
            hidden_scale: cur.f32("front hidden_scale")?,
        });
    }
    let z =
        LayerScales { in_scale: cur.f32("z in_scale")?, hidden_scale: cur.f32("z hidden_scale")? };
    let zhat_scale = cur.f32("zhat_scale")?;
    let node_count = cur.u32("node scale count")? as usize;
    if node_count > 1 << 20 {
        return Err(invalid_data(format!("QNT8: implausible node scale count {node_count}")));
    }
    let mut node_hidden = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        node_hidden.push(cur.f32("node hidden_scale")?);
    }
    cur.finish()?;
    let schedule = QuantSchedule { front, z, zhat_scale, node_hidden };
    schedule.validate().map_err(|e| invalid_data(format!("QNT8: {e}")))?;
    Ok(schedule)
}

/// Reconstructs a [`QuantizedStHybrid`] from a `.thnt2` artifact carrying a
/// `QNT8` schedule section. The schedule is cross-validated against the
/// decoded weights — a schedule whose layer counts do not match the packed
/// engine is rejected, matching the loader's everything-validated contract.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed artifact, a missing `QNT8`
/// section, or a schedule/weight mismatch.
pub fn load_quantized_thnt2<R: Read>(
    mut reader: R,
) -> io::Result<(QuantizedStHybrid, Option<InferenceMeta>)> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut sections = SectionReaderRef::parse(&raw)?;
    let quant = sections
        .take(TAG_QUANT)
        .ok_or_else(|| invalid_data("artifact is missing the QNT8 section"))?
        .bytes;
    let schedule = decode_schedule(quant)?;
    let (engine, meta) = decode_artifact(&raw, false)?;
    let quantized = QuantizedStHybrid::compile(&engine.into_owned(), schedule)
        .map_err(|e| invalid_data(format!("QNT8: {e}")))?;
    Ok((quantized, meta))
}

/// A heap byte buffer whose storage is 8-byte aligned (it is backed by a
/// `Vec<u64>`), so [`load_thnt2_ref`] can borrow bitplanes from it in
/// place. A plain `Vec<u8>` makes no alignment promise; reading an
/// artifact into one works, but may silently fall back to the copying
/// path.
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into freshly allocated 8-byte-aligned storage.
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: the u64 allocation holds at least `bytes.len()` bytes and
        // u8 has no alignment or validity requirements.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        Self { words, len: bytes.len() }
    }

    /// Reads a whole file into aligned storage.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the file.
    pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::from_slice(&std::fs::read(path)?))
    }

    /// The buffer contents. The slice's pointer is 8-byte aligned.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the backing u64 allocation holds at least `len` fully
        // initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HybridConfig;
    use crate::engine::PackedStHybrid;
    use crate::st_hybrid::StHybridNet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use thnt_nn::Model;
    use thnt_strassen::Strassenified;

    fn tiny_engine(seed: u64) -> (StHybridNet, PackedStHybrid<'static>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = StHybridNet::new(
            HybridConfig {
                ds_blocks: 1,
                width: 8,
                proj_dim: 6,
                tree_depth: 1,
                ..HybridConfig::paper()
            },
            &mut rng,
        );
        net.activate_quantization();
        net.freeze_ternary();
        let engine = PackedStHybrid::compile(&net);
        (net, engine)
    }

    fn paper_meta() -> InferenceMeta {
        InferenceMeta {
            mfcc: MfccConfig::paper(),
            norm_mean: vec![0.25; 10],
            norm_std: vec![1.5; 10],
        }
    }

    #[test]
    fn roundtrip_is_bitwise_identical() {
        let (_, engine) = tiny_engine(0);
        let mut blob = Vec::new();
        engine.save(Some(&paper_meta()), &mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert_eq!(meta.unwrap(), paper_meta());
    }

    #[test]
    fn roundtrip_without_meta() {
        let (_, engine) = tiny_engine(1);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert!(meta.is_none());
    }

    #[test]
    fn reloaded_engine_matches_dense_forward() {
        let (mut net, engine) = tiny_engine(2);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let (reloaded, _) = PackedStHybrid::load(blob.as_slice()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[2, 1, 49, 10], 0.0, 1.0, &mut rng);
        let dense = net.forward(&x, false);
        let got = reloaded.forward(&x);
        thnt_tensor::assert_close(got.data(), dense.data(), 1e-4, 1e-4);
        assert_eq!(reloaded.adds_per_sample(), engine.adds_per_sample());
        assert_eq!(reloaded.packed_bytes(), engine.packed_bytes());
    }

    #[test]
    fn missing_sections_are_rejected() {
        let mut blob = Vec::new();
        SectionWriter::new().write_to(&mut blob).unwrap();
        let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("FRNT"), "{err}");
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let (_, engine) = tiny_engine(4);
        let mut enc = Enc::new(SaveOptions::v3()).unwrap();
        let mut sections = SectionWriter::new();
        sections.section(*b"XTRA").put_u32_le(42);
        *sections.section(TAG_FRONT) = enc.encode_front(&engine.front);
        *sections.section(TAG_TREE) = enc.encode_tree(&engine.tree);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert!(meta.is_none());
    }

    #[test]
    fn inconsistent_tree_geometry_is_rejected() {
        let (_, engine) = tiny_engine(5);
        // Swap the tree's num_classes without touching the node shapes: the
        // loader must notice the W/V out-dims no longer match.
        let mut bad = engine.clone();
        bad.tree.num_classes += 1;
        let mut blob = Vec::new();
        bad.save(None, &mut blob).unwrap();
        let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meta_that_cannot_drive_the_front_end_is_rejected_at_load() {
        let (_, engine) = tiny_engine(7);
        for bad in [
            // fft_size below frame_len (would assert in Mfcc::new).
            InferenceMeta {
                mfcc: MfccConfig { fft_size: 512, ..MfccConfig::paper() },
                ..paper_meta()
            },
            // Non-power-of-two FFT.
            InferenceMeta {
                mfcc: MfccConfig { fft_size: 1000, ..MfccConfig::paper() },
                ..paper_meta()
            },
            // Inverted mel band.
            InferenceMeta {
                mfcc: MfccConfig { f_lo: 8000.0, f_hi: 20.0, ..MfccConfig::paper() },
                ..paper_meta()
            },
        ] {
            let mut blob = Vec::new();
            engine.save(Some(&bad), &mut blob).unwrap();
            let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{:?}", bad.mfcc);
        }
    }

    fn tiny_quantized(seed: u64) -> QuantizedStHybrid {
        let (_, engine) = tiny_engine(seed);
        let calib = thnt_tensor::Tensor::from_vec(
            (0..4 * 49 * 10).map(|i| ((i % 23) as f32 - 11.0) / 8.0).collect(),
            &[4, 1, 49, 10],
        );
        QuantizedStHybrid::calibrate_and_compile(
            &engine,
            &calib,
            thnt_quant::CalibrationMethod::default(),
        )
        .unwrap()
    }

    #[test]
    fn quantized_roundtrip_is_bitwise_identical() {
        let quantized = tiny_quantized(8);
        let mut blob = Vec::new();
        quantized.save(Some(&paper_meta()), &mut blob).unwrap();
        let (reloaded, meta) = QuantizedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, quantized);
        assert_eq!(meta.unwrap().mfcc, MfccConfig::paper());
        // Round-trip losslessness includes every scale bit.
        let a: Vec<u32> = quantized.schedule().node_hidden.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u32> = reloaded.schedule().node_hidden.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn packed_loader_ignores_the_quant_section() {
        let quantized = tiny_quantized(9);
        let mut blob = Vec::new();
        quantized.save(None, &mut blob).unwrap();
        let (reloaded, _) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(&reloaded, quantized.base());
    }

    #[test]
    fn quantized_loader_requires_the_quant_section() {
        let (_, engine) = tiny_engine(10);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("QNT8"), "{err}");
    }

    #[test]
    fn quantized_loader_rejects_schedule_weight_mismatch() {
        // A structurally valid QNT8 section whose layer counts don't match
        // the packed weights must fail cross-validation at load.
        let quantized = tiny_quantized(11);
        let base = quantized.base();
        let mut bad = quantized.schedule().clone();
        bad.front.pop();
        let mut enc = Enc::new(SaveOptions::v3()).unwrap();
        let mut sections = SectionWriter::new();
        *sections.section(TAG_FRONT) = enc.encode_front(&base.front);
        *sections.section(TAG_TREE) = enc.encode_tree(&base.tree);
        *sections.section(TAG_QUANT) = encode_schedule(&bad);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn quantized_loader_rejects_non_positive_scales() {
        let quantized = tiny_quantized(12);
        let base = quantized.base();
        let mut bad = quantized.schedule().clone();
        bad.zhat_scale = 0.0;
        let mut enc = Enc::new(SaveOptions::v3()).unwrap();
        let mut sections = SectionWriter::new();
        *sections.section(TAG_FRONT) = enc.encode_front(&base.front);
        *sections.section(TAG_TREE) = enc.encode_tree(&base.tree);
        *sections.section(TAG_QUANT) = encode_schedule(&bad);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn reloaded_quantized_engine_forwards_identically() {
        let quantized = tiny_quantized(13);
        let mut blob = Vec::new();
        quantized.save(None, &mut blob).unwrap();
        let (reloaded, _) = QuantizedStHybrid::load(blob.as_slice()).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let x = thnt_tensor::gaussian(&[3, 1, 49, 10], 0.0, 1.0, &mut rng);
        let a = quantized.forward(&x);
        let b = reloaded.forward(&x);
        let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }

    #[test]
    fn file_roundtrip() {
        let (_, engine) = tiny_engine(6);
        let path = std::env::temp_dir().join("thnt_artifact_test.thnt2");
        engine.save_file(Some(&paper_meta()), &path).unwrap();
        let (reloaded, meta) = PackedStHybrid::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded, engine);
        assert_eq!(meta.unwrap().mfcc, MfccConfig::paper());
    }

    fn ternary(
        rows: usize,
        cols: usize,
        f: impl Fn(usize, usize) -> f32,
    ) -> PackedTernary<'static> {
        let data = (0..rows * cols).map(|i| f(i / cols, i % cols)).collect();
        PackedTernary::from_tensor(&thnt_tensor::Tensor::from_vec(data, &[rows, cols]))
    }

    /// The raw RLE bit code round-trips at both extremes (all-zero and
    /// zero-free matrices) and on odd shapes whose rows straddle bytes and
    /// words.
    #[test]
    fn rle_codec_identity_including_extremes() {
        let cases: Vec<(&str, PackedTernary<'static>)> = vec![
            ("all zero", ternary(5, 67, |_, _| 0.0)),
            ("all plus", ternary(3, 64, |_, _| 1.0)),
            ("all minus", ternary(4, 13, |_, _| -1.0)),
            ("no zeros mixed", ternary(7, 9, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 })),
            ("one entry", ternary(1, 1, |_, _| -1.0)),
            ("thirds", ternary(6, 70, |r, c| ((r * 70 + c) % 3) as f32 - 1.0)),
        ];
        for (what, p) in cases {
            let blob = rle_encode(&p);
            let (plus, minus) = rle_decode(&blob, p.rows(), p.cols(), what).unwrap();
            assert_eq!(plus, p.plus_words(), "{what}: plus plane");
            assert_eq!(minus, p.minus_words(), "{what}: minus plane");
        }
    }

    /// An all-zero matrix costs exactly one bit per entry; a zero-free one
    /// exactly two. The code is tight at both extremes.
    #[test]
    fn rle_code_is_tight_at_the_extremes() {
        let zeros = ternary(5, 67, |_, _| 0.0);
        assert_eq!(rle_encode(&zeros).len(), (5 * 67usize).div_ceil(8));
        let dense = ternary(5, 67, |_, _| 1.0);
        assert_eq!(rle_encode(&dense).len(), (2 * 5 * 67usize).div_ceil(8));
    }

    #[test]
    fn rle_decode_rejects_truncation_trailing_bytes_and_dirty_padding() {
        let p = ternary(6, 70, |r, c| ((r * 70 + c) % 3) as f32 - 1.0);
        let blob = rle_encode(&p);
        // Truncated stream.
        let err = rle_decode(&blob[..blob.len() - 1], 6, 70, "t").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Trailing bytes.
        let mut long = blob.clone();
        long.push(0);
        let err = rle_decode(&long, 6, 70, "t").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Dirty padding bits in the final byte (the all-zero matrix leaves
        // 420 % 8 = 4 pad bits).
        let zeros = ternary(6, 70, |_, _| 0.0);
        let mut dirty = rle_encode(&zeros);
        *dirty.last_mut().unwrap() |= 0x80;
        let err = rle_decode(&dirty, 6, 70, "t").unwrap_err();
        assert!(err.to_string().contains("padding"), "{err}");
    }

    #[test]
    fn save_options_validate_their_combinations() {
        assert!(save_thnt2_with(
            &tiny_engine(20).1,
            None,
            SaveOptions { container_version: 4, rle_weights: false },
            &mut Vec::new(),
        )
        .is_err());
        assert!(save_thnt2_with(
            &tiny_engine(20).1,
            None,
            SaveOptions { container_version: 2, rle_weights: true },
            &mut Vec::new(),
        )
        .is_err());
    }

    /// Every write format round-trips bitwise; the quantized container too.
    #[test]
    fn all_formats_roundtrip() {
        let (_, engine) = tiny_engine(21);
        let quantized = tiny_quantized(21);
        for opts in [SaveOptions::v2(), SaveOptions::v3(), SaveOptions::v3_rle()] {
            let mut blob = Vec::new();
            save_thnt2_with(&engine, Some(&paper_meta()), opts, &mut blob).unwrap();
            let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
            assert_eq!(reloaded, engine, "{opts:?}");
            assert_eq!(meta.unwrap(), paper_meta());

            let mut qblob = Vec::new();
            save_quantized_thnt2_with(&quantized, None, opts, &mut qblob).unwrap();
            let (qreloaded, _) = QuantizedStHybrid::load(qblob.as_slice()).unwrap();
            assert_eq!(qreloaded, quantized, "{opts:?}");
        }
    }

    /// A zero-copy load of an aligned v3 artifact borrows **every**
    /// bitplane from the buffer; v3-rle and v2 decode to owned planes; a
    /// deliberately misaligned buffer still loads correctly, just owned.
    #[test]
    fn zero_copy_load_borrows_exactly_when_aligned_v3_inline() {
        let (_, engine) = tiny_engine(22);
        let mut blob = Vec::new();
        save_thnt2_with(&engine, None, SaveOptions::v3(), &mut blob).unwrap();
        let aligned = AlignedBytes::from_slice(&blob);
        let (borrowed, _) = load_thnt2_ref(&aligned).unwrap();
        assert!(borrowed.bitplanes_borrowed(), "aligned v3 inline must not copy planes");
        assert_eq!(borrowed, engine);

        // Shift the same bytes off 8-byte alignment: the loader falls back
        // to copying, bit-for-bit identically.
        let mut shifted = vec![0u8; blob.len() + 8];
        let off = (8 - (shifted.as_ptr() as usize % 8)) % 8 + 1;
        shifted[off..off + blob.len()].copy_from_slice(&blob);
        let (owned, _) = load_thnt2_ref(&shifted[off..off + blob.len()]).unwrap();
        assert!(!owned.bitplanes_borrowed());
        assert_eq!(owned, engine);

        for opts in [SaveOptions::v2(), SaveOptions::v3_rle()] {
            let mut blob = Vec::new();
            save_thnt2_with(&engine, None, opts, &mut blob).unwrap();
            let aligned = AlignedBytes::from_slice(&blob);
            let (reloaded, _) = load_thnt2_ref(&aligned).unwrap();
            assert!(!reloaded.bitplanes_borrowed(), "{opts:?} cannot borrow");
            assert_eq!(reloaded, engine, "{opts:?}");
        }
    }

    /// The acceptance criterion for RLE: on a standard ternary net (about a
    /// third of the weights are zero) the artifact is smaller on disk than
    /// the packed model is in memory, and smaller than its inline peer.
    #[test]
    fn rle_artifacts_are_smaller_on_disk_than_the_model_in_memory() {
        let (_, engine) = tiny_engine(23);
        let model_bytes = thnt_nn::InferenceBackend::model_bytes(&engine);
        let mut inline = Vec::new();
        save_thnt2_with(&engine, None, SaveOptions::v3(), &mut inline).unwrap();
        let mut rle = Vec::new();
        save_thnt2_with(&engine, None, SaveOptions::v3_rle(), &mut rle).unwrap();
        assert!(
            rle.len() < inline.len(),
            "RLE ({}) must beat inline ({})",
            rle.len(),
            inline.len()
        );
        assert!(
            rle.len() < model_bytes,
            "bytes_on_disk ({}) must beat model_bytes ({model_bytes})",
            rle.len()
        );
    }

    #[test]
    fn aligned_bytes_really_are_aligned() {
        for n in [0usize, 1, 7, 8, 9, 4096, 4097] {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let a = AlignedBytes::from_slice(&data);
            assert_eq!(a.as_ptr() as usize % 8, 0);
            assert_eq!(&a[..], &data[..]);
        }
    }
}
