//! The `.thnt2` packed-model artifact: serialize a compiled
//! [`PackedStHybrid`] and reload it **without the training stack**.
//!
//! The training pipeline ends with `PackedStHybrid::compile`, which needs a
//! live [`crate::StHybridNet`] in memory. On a deployment target none of the
//! `thnt-nn` machinery exists; what ships is this artifact — the bitplanes,
//! affines and tree topology, exactly as the engine executes them — and
//! [`load_thnt2`] rebuilds the engine from those bytes alone.
//!
//! # Format
//!
//! A `.thnt2` file is a [`thnt_nn::SectionReader`]-style container (magic
//! `THN2`, version, a tag/length section table, then payloads). Sections:
//!
//! ```text
//! FRNT  the compiled front-end stack:
//!       layer_count u32, then per layer a kind byte:
//!         0 conv       wb | â | wc | bias | spec
//!         1 depthwise  wb_signs | â | wc_signs | bias | spec | c u32 | m u32
//!         2 dense      wb | â | wc | bias
//!         3 affine     scale | shift
//!         4 relu       (no payload)
//!         5 gap        (no payload)
//! TREE  the compiled Bonsai head:
//!       depth u32 | sharpness f32 | sigma f32 | num_classes u32
//!       | z dense | theta dense × num_internal | w dense × num_nodes
//!       | v dense × num_nodes
//! META  (optional) serving metadata:
//!       norm_mean | norm_std | MFCC config (9 scalars)
//! QNT8  (optional, container version ≥ 2) the bit-sliced activation
//!       schedule of a quantized engine:
//!       front_count u32 | (in_scale f32, hidden_scale f32) × front_count
//!       | z in_scale f32 | z hidden_scale f32 | zhat_scale f32
//!       | node_count u32 | hidden_scale f32 × node_count
//! ```
//!
//! where a *packed ternary matrix* is `rows u32 | cols u32 | plus u64 ×
//! rows·wpr | minus u64 × rows·wpr` (the stable bitplane layout of
//! [`PackedTernary::plus_words`]), an *f32 vector* is `len u32 | f32 × len`,
//! a *sign vector* is `len u32 | i8 × len` with entries in `{-1, 0, 1}`, a
//! *dense* is `wb | â | wc | bias`, and a *spec* is eight `u32`s
//! (`kh kw stride_h stride_w pad_top pad_bottom pad_left pad_right`).
//!
//! Loading validates every structural invariant — word counts, padding
//! bits, plane overlap, cross-field dimension consistency, finiteness,
//! topology counts — and fails with `InvalidData` on the first violation.
//! Matching the checkpoint contract in `thnt_nn::io`: the failure mode is
//! an error, never silent corruption. Unknown sections are skipped so later
//! versions can add data without breaking this loader.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use thnt_bonsai::TreeTopology;
use thnt_dsp::MfccConfig;
use thnt_nn::io::{invalid_data, SectionReader, SectionWriter};
use thnt_strassen::PackedTernary;
use thnt_tensor::Conv2dSpec;

use crate::engine::{
    ChannelAffine, PackedBonsai, PackedConv2d, PackedDense, PackedDepthwise2d, PackedLayer,
    PackedStHybrid, PackedStStack,
};
use crate::quantized::{LayerScales, QuantSchedule, QuantizedStHybrid};

const TAG_FRONT: [u8; 4] = *b"FRNT";
const TAG_TREE: [u8; 4] = *b"TREE";
const TAG_META: [u8; 4] = *b"META";
const TAG_QUANT: [u8; 4] = *b"QNT8";

const KIND_CONV: u8 = 0;
const KIND_DEPTHWISE: u8 = 1;
const KIND_DENSE: u8 = 2;
const KIND_AFFINE: u8 = 3;
const KIND_RELU: u8 = 4;
const KIND_GAP: u8 = 5;

/// Serving metadata embedded alongside the packed weights so a detector can
/// be stood up from the artifact alone: the MFCC front-end configuration
/// and the per-coefficient normalization statistics of the training data.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceMeta {
    /// MFCC extraction parameters the model was trained against.
    pub mfcc: MfccConfig,
    /// Per-coefficient feature means (length `mfcc.num_coeffs`).
    pub norm_mean: Vec<f32>,
    /// Per-coefficient feature standard deviations (same length, positive).
    pub norm_std: Vec<f32>,
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

fn put_signs(buf: &mut BytesMut, v: &[i8]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u8(x as u8);
    }
}

fn put_packed(buf: &mut BytesMut, p: &PackedTernary) {
    buf.put_u32_le(p.rows() as u32);
    buf.put_u32_le(p.cols() as u32);
    for &w in p.plus_words() {
        buf.put_u64_le(w);
    }
    for &w in p.minus_words() {
        buf.put_u64_le(w);
    }
}

fn put_spec(buf: &mut BytesMut, s: &Conv2dSpec) {
    for d in [s.kh, s.kw, s.stride_h, s.stride_w, s.pad_top, s.pad_bottom, s.pad_left, s.pad_right]
    {
        buf.put_u32_le(d as u32);
    }
}

fn put_dense(buf: &mut BytesMut, d: &PackedDense) {
    put_packed(buf, &d.wb);
    put_f32_vec(buf, &d.a_hat);
    put_packed(buf, &d.wc);
    put_f32_vec(buf, &d.bias);
}

fn encode_front(front: &PackedStStack) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(front.layers().len() as u32);
    for layer in front.layers() {
        match layer {
            PackedLayer::Conv(c) => {
                buf.put_u8(KIND_CONV);
                put_packed(&mut buf, &c.wb);
                put_f32_vec(&mut buf, &c.a_hat);
                put_packed(&mut buf, &c.wc);
                put_f32_vec(&mut buf, &c.bias);
                put_spec(&mut buf, &c.spec);
            }
            PackedLayer::Depthwise(d) => {
                buf.put_u8(KIND_DEPTHWISE);
                put_signs(&mut buf, &d.wb_signs);
                put_f32_vec(&mut buf, &d.a_hat);
                put_signs(&mut buf, &d.wc_signs);
                put_f32_vec(&mut buf, &d.bias);
                put_spec(&mut buf, &d.spec);
                buf.put_u32_le(d.channels as u32);
                buf.put_u32_le(d.multiplier as u32);
            }
            PackedLayer::Dense(f) => {
                buf.put_u8(KIND_DENSE);
                put_dense(&mut buf, f);
            }
            PackedLayer::Affine(a) => {
                buf.put_u8(KIND_AFFINE);
                put_f32_vec(&mut buf, &a.scale);
                put_f32_vec(&mut buf, &a.shift);
            }
            PackedLayer::Relu => buf.put_u8(KIND_RELU),
            PackedLayer::GlobalAvgPool => buf.put_u8(KIND_GAP),
        }
    }
    buf
}

fn encode_tree(tree: &PackedBonsai) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(tree.topo.depth() as u32);
    buf.put_f32_le(tree.sharpness);
    buf.put_f32_le(tree.sigma);
    buf.put_u32_le(tree.num_classes as u32);
    put_dense(&mut buf, &tree.z);
    for d in tree.theta.iter().chain(tree.w.iter()).chain(tree.v.iter()) {
        put_dense(&mut buf, d);
    }
    buf
}

fn encode_meta(meta: &InferenceMeta) -> BytesMut {
    let mut buf = BytesMut::new();
    put_f32_vec(&mut buf, &meta.norm_mean);
    put_f32_vec(&mut buf, &meta.norm_std);
    let m = &meta.mfcc;
    buf.put_f32_le(m.sample_rate);
    buf.put_u32_le(m.frame_len as u32);
    buf.put_u32_le(m.hop as u32);
    buf.put_u32_le(m.fft_size as u32);
    buf.put_u32_le(m.num_mel as u32);
    buf.put_u32_le(m.num_coeffs as u32);
    buf.put_f32_le(m.f_lo);
    buf.put_f32_le(m.f_hi);
    buf.put_f32_le(m.preemphasis);
    buf
}

fn encode_schedule(schedule: &QuantSchedule) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u32_le(schedule.front.len() as u32);
    for ls in &schedule.front {
        buf.put_f32_le(ls.in_scale);
        buf.put_f32_le(ls.hidden_scale);
    }
    buf.put_f32_le(schedule.z.in_scale);
    buf.put_f32_le(schedule.z.hidden_scale);
    buf.put_f32_le(schedule.zhat_scale);
    buf.put_u32_le(schedule.node_hidden.len() as u32);
    for &s in &schedule.node_hidden {
        buf.put_f32_le(s);
    }
    buf
}

/// Writes `engine` (and optionally `meta`) as a `.thnt2` artifact.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_thnt2<W: Write>(
    engine: &PackedStHybrid,
    meta: Option<&InferenceMeta>,
    writer: W,
) -> io::Result<()> {
    let mut sections = SectionWriter::new();
    *sections.section(TAG_FRONT) = encode_front(&engine.front);
    *sections.section(TAG_TREE) = encode_tree(&engine.tree);
    if let Some(m) = meta {
        *sections.section(TAG_META) = encode_meta(m);
    }
    sections.write_to(writer)
}

/// Writes a quantized engine as a `.thnt2` artifact: the packed weight
/// sections plus a `QNT8` schedule section. [`load_thnt2`] reads the same
/// bytes back as an f32 packed engine (ignoring the schedule);
/// [`load_quantized_thnt2`] reconstructs the quantized engine.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_quantized_thnt2<W: Write>(
    engine: &QuantizedStHybrid,
    meta: Option<&InferenceMeta>,
    writer: W,
) -> io::Result<()> {
    let base = engine.base();
    let mut sections = SectionWriter::new();
    *sections.section(TAG_FRONT) = encode_front(&base.front);
    *sections.section(TAG_TREE) = encode_tree(&base.tree);
    *sections.section(TAG_QUANT) = encode_schedule(engine.schedule());
    if let Some(m) = meta {
        *sections.section(TAG_META) = encode_meta(m);
    }
    sections.write_to(writer)
}

// ---------------------------------------------------------------------------
// Decoding. Every read is bounds-checked; every cross-field invariant is
// validated before the value is used.
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over one section payload.
struct Cursor {
    buf: Bytes,
    section: &'static str,
}

impl Cursor {
    fn new(buf: Bytes, section: &'static str) -> Self {
        Self { buf, section }
    }

    fn need(&self, bytes: usize, what: &str) -> io::Result<()> {
        if self.buf.remaining() < bytes {
            return Err(invalid_data(format!(
                "{} section truncated reading {what}: need {bytes} bytes, have {}",
                self.section,
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn f32(&mut self, what: &str) -> io::Result<f32> {
        self.need(4, what)?;
        let v = self.buf.get_f32_le();
        if !v.is_finite() {
            return Err(invalid_data(format!("{}: non-finite {what}", self.section)));
        }
        Ok(v)
    }

    fn f32_vec(&mut self, what: &str) -> io::Result<Vec<f32>> {
        let len = self.u32(what)? as usize;
        self.need(4 * len, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.buf.get_f32_le();
            if !v.is_finite() {
                return Err(invalid_data(format!("{}: non-finite entry in {what}", self.section)));
            }
            out.push(v);
        }
        Ok(out)
    }

    fn signs(&mut self, what: &str) -> io::Result<Vec<i8>> {
        let len = self.u32(what)? as usize;
        self.need(len, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.buf.get_u8() as i8;
            if !(-1..=1).contains(&v) {
                return Err(invalid_data(format!(
                    "{}: non-ternary sign {v} in {what}",
                    self.section
                )));
            }
            out.push(v);
        }
        Ok(out)
    }

    fn packed(&mut self, what: &str) -> io::Result<PackedTernary> {
        let rows = self.u32(what)? as usize;
        let cols = self.u32(what)? as usize;
        // Checked arithmetic: corrupt dimensions must become an error, not
        // a debug-build overflow panic (the byte count check right after
        // rejects any size the section cannot actually hold).
        let words = rows
            .checked_mul(cols.div_ceil(64))
            .filter(|&w| w <= usize::MAX / 16)
            .ok_or_else(|| {
                invalid_data(format!(
                    "{}: {what}: implausible packed dims {rows}x{cols}",
                    self.section
                ))
            })?;
        self.need(16 * words, what)?;
        let mut plus = Vec::with_capacity(words);
        for _ in 0..words {
            plus.push(self.buf.get_u64_le());
        }
        let mut minus = Vec::with_capacity(words);
        for _ in 0..words {
            minus.push(self.buf.get_u64_le());
        }
        PackedTernary::from_raw_parts(rows, cols, plus, minus)
            .map_err(|e| invalid_data(format!("{}: {what}: {e}", self.section)))
    }

    fn spec(&mut self, what: &str) -> io::Result<Conv2dSpec> {
        let mut d = [0usize; 8];
        for slot in &mut d {
            *slot = self.u32(what)? as usize;
        }
        if d[0] == 0 || d[1] == 0 || d[2] == 0 || d[3] == 0 {
            return Err(invalid_data(format!(
                "{}: {what}: kernel and stride must be positive",
                self.section
            )));
        }
        Ok(Conv2dSpec {
            kh: d[0],
            kw: d[1],
            stride_h: d[2],
            stride_w: d[3],
            pad_top: d[4],
            pad_bottom: d[5],
            pad_left: d[6],
            pad_right: d[7],
        })
    }

    /// Reads a packed dense layer and checks its internal geometry:
    /// `W_b: [r, in]`, `â: [r]`, `W_c: [out, r]`, `bias: [out]`.
    fn dense(&mut self, what: &str) -> io::Result<PackedDense> {
        let wb = self.packed(what)?;
        let a_hat = self.f32_vec(what)?;
        let wc = self.packed(what)?;
        let bias = self.f32_vec(what)?;
        if wb.rows() != a_hat.len() || wc.cols() != a_hat.len() || wc.rows() != bias.len() {
            return Err(invalid_data(format!(
                "{}: {what}: inconsistent dense geometry (wb {}x{}, â {}, wc {}x{}, bias {})",
                self.section,
                wb.rows(),
                wb.cols(),
                a_hat.len(),
                wc.rows(),
                wc.cols(),
                bias.len()
            )));
        }
        Ok(PackedDense { wb, a_hat, wc, bias })
    }

    fn finish(self) -> io::Result<()> {
        if self.buf.has_remaining() {
            return Err(invalid_data(format!(
                "{} section has {} trailing bytes",
                self.section,
                self.buf.remaining()
            )));
        }
        Ok(())
    }
}

fn decode_front(buf: Bytes) -> io::Result<PackedStStack> {
    let mut cur = Cursor::new(buf, "FRNT");
    let count = cur.u32("layer count")? as usize;
    let mut layers = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let kind = cur.u8("layer kind")?;
        let layer = match kind {
            KIND_CONV => {
                let wb = cur.packed("conv wb")?;
                let a_hat = cur.f32_vec("conv â")?;
                let wc = cur.packed("conv wc")?;
                let bias = cur.f32_vec("conv bias")?;
                let spec = cur.spec("conv spec")?;
                let Some(patch) = spec.kh.checked_mul(spec.kw) else {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: implausible conv kernel {}x{}",
                        spec.kh, spec.kw
                    )));
                };
                if wb.rows() != a_hat.len()
                    || wc.cols() != a_hat.len()
                    || wc.rows() != bias.len()
                    || wb.cols() == 0
                    || wb.cols() % patch != 0
                {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: inconsistent conv geometry"
                    )));
                }
                PackedLayer::Conv(PackedConv2d { wb, a_hat, wc, bias, spec })
            }
            KIND_DEPTHWISE => {
                let wb_signs = cur.signs("depthwise wb")?;
                let a_hat = cur.f32_vec("depthwise â")?;
                let wc_signs = cur.signs("depthwise wc")?;
                let bias = cur.f32_vec("depthwise bias")?;
                let spec = cur.spec("depthwise spec")?;
                let channels = cur.u32("depthwise channels")? as usize;
                let multiplier = cur.u32("depthwise multiplier")? as usize;
                let hidden = channels.saturating_mul(multiplier);
                // `hidden·kh·kw` under checked arithmetic: on corrupt bytes
                // the product must fail validation, not overflow-panic.
                let taps = spec.kh.checked_mul(spec.kw).and_then(|p| p.checked_mul(hidden));
                if channels == 0
                    || multiplier == 0
                    || wc_signs.len() != hidden
                    || a_hat.len() != hidden
                    || bias.len() != channels
                    || taps != Some(wb_signs.len())
                {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: inconsistent depthwise geometry"
                    )));
                }
                PackedLayer::Depthwise(PackedDepthwise2d {
                    wb_signs,
                    a_hat,
                    wc_signs,
                    bias,
                    spec,
                    channels,
                    multiplier,
                })
            }
            KIND_DENSE => PackedLayer::Dense(cur.dense("dense layer")?),
            KIND_AFFINE => {
                let scale = cur.f32_vec("affine scale")?;
                let shift = cur.f32_vec("affine shift")?;
                if scale.len() != shift.len() {
                    return Err(invalid_data(format!(
                        "FRNT: layer {i}: affine scale/shift length mismatch"
                    )));
                }
                PackedLayer::Affine(ChannelAffine { scale, shift })
            }
            KIND_RELU => PackedLayer::Relu,
            KIND_GAP => PackedLayer::GlobalAvgPool,
            other => {
                return Err(invalid_data(format!("FRNT: layer {i}: unknown layer kind {other}")))
            }
        };
        layers.push(layer);
    }
    cur.finish()?;
    Ok(PackedStStack { layers })
}

fn decode_tree(buf: Bytes) -> io::Result<PackedBonsai> {
    let mut cur = Cursor::new(buf, "TREE");
    let depth = cur.u32("depth")? as usize;
    if depth > 16 {
        return Err(invalid_data(format!("TREE: implausible tree depth {depth}")));
    }
    let sharpness = cur.f32("sharpness")?;
    let sigma = cur.f32("sigma")?;
    let num_classes = cur.u32("num_classes")? as usize;
    if num_classes == 0 {
        return Err(invalid_data("TREE: num_classes must be positive"));
    }
    let topo = TreeTopology::new(depth);
    let z = cur.dense("projection z")?;
    let proj_dim = z.bias.len();
    let read_nodes = |cur: &mut Cursor, n: usize, out_dim: usize, what| -> io::Result<Vec<_>> {
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let d = cur.dense(what)?;
            if d.wb.cols() != proj_dim || d.bias.len() != out_dim {
                return Err(invalid_data(format!(
                    "TREE: {what} shape [{} -> {}] does not match proj_dim {proj_dim} / \
                     out_dim {out_dim}",
                    d.wb.cols(),
                    d.bias.len()
                )));
            }
            nodes.push(d);
        }
        Ok(nodes)
    };
    let theta = read_nodes(&mut cur, topo.num_internal(), 1, "branch node θ")?;
    let w = read_nodes(&mut cur, topo.num_nodes(), num_classes, "score node W")?;
    let v = read_nodes(&mut cur, topo.num_nodes(), num_classes, "gate node V")?;
    cur.finish()?;
    Ok(PackedBonsai { z, theta, w, v, topo, sharpness, sigma, num_classes })
}

fn decode_meta(buf: Bytes) -> io::Result<InferenceMeta> {
    let mut cur = Cursor::new(buf, "META");
    let norm_mean = cur.f32_vec("norm_mean")?;
    let norm_std = cur.f32_vec("norm_std")?;
    let mfcc = MfccConfig {
        sample_rate: cur.f32("sample_rate")?,
        frame_len: cur.u32("frame_len")? as usize,
        hop: cur.u32("hop")? as usize,
        fft_size: cur.u32("fft_size")? as usize,
        num_mel: cur.u32("num_mel")? as usize,
        num_coeffs: cur.u32("num_coeffs")? as usize,
        f_lo: cur.f32("f_lo")?,
        f_hi: cur.f32("f_hi")?,
        preemphasis: cur.f32("preemphasis")?,
    };
    cur.finish()?;
    if norm_mean.len() != norm_std.len() || norm_mean.len() != mfcc.num_coeffs {
        return Err(invalid_data(format!(
            "META: normalization length {} / {} does not match num_coeffs {}",
            norm_mean.len(),
            norm_std.len(),
            mfcc.num_coeffs
        )));
    }
    if norm_std.iter().any(|&s| s <= 0.0) {
        return Err(invalid_data("META: norm_std entries must be positive"));
    }
    // Enforce every invariant `Mfcc::new` (and the FFT/mel stages under it)
    // would otherwise assert at detector-construction time: a META section
    // that cannot drive the front-end must fail here, at load.
    if mfcc.sample_rate <= 0.0 || mfcc.frame_len == 0 || mfcc.hop == 0 {
        return Err(invalid_data("META: MFCC geometry must be positive"));
    }
    if !mfcc.fft_size.is_power_of_two() || mfcc.fft_size < mfcc.frame_len {
        return Err(invalid_data(format!(
            "META: fft_size {} must be a power of two >= frame_len {}",
            mfcc.fft_size, mfcc.frame_len
        )));
    }
    if mfcc.num_mel == 0 || mfcc.num_coeffs == 0 || mfcc.num_coeffs > mfcc.num_mel {
        return Err(invalid_data(format!(
            "META: need 0 < num_coeffs ({}) <= num_mel ({})",
            mfcc.num_coeffs, mfcc.num_mel
        )));
    }
    if !(mfcc.f_lo < mfcc.f_hi && mfcc.f_hi <= mfcc.sample_rate / 2.0) {
        return Err(invalid_data(format!(
            "META: invalid mel band [{}, {}] for sample rate {}",
            mfcc.f_lo, mfcc.f_hi, mfcc.sample_rate
        )));
    }
    Ok(InferenceMeta { mfcc, norm_mean, norm_std })
}

/// Reconstructs a [`PackedStHybrid`] (and embedded [`InferenceMeta`], if
/// present) from a `.thnt2` artifact. The loader references no `thnt-nn`
/// training type: the engine is rebuilt directly from the serialized
/// bitplanes.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed artifact, or I/O errors from the
/// reader.
pub fn load_thnt2<R: Read>(reader: R) -> io::Result<(PackedStHybrid, Option<InferenceMeta>)> {
    let mut sections = SectionReader::read_from(reader)?;
    let front = sections
        .take(TAG_FRONT)
        .ok_or_else(|| invalid_data("artifact is missing the FRNT section"))?;
    let tree = sections
        .take(TAG_TREE)
        .ok_or_else(|| invalid_data("artifact is missing the TREE section"))?;
    let meta = sections.take(TAG_META).map(decode_meta).transpose()?;
    // Any other section is from a newer writer; ignoring it cannot corrupt
    // the engine because all required data is self-contained above.
    let engine = PackedStHybrid { front: decode_front(front)?, tree: decode_tree(tree)? };
    Ok((engine, meta))
}

fn decode_schedule(buf: Bytes) -> io::Result<QuantSchedule> {
    let mut cur = Cursor::new(buf, "QNT8");
    let front_count = cur.u32("front layer count")? as usize;
    if front_count > 4096 {
        return Err(invalid_data(format!("QNT8: implausible front layer count {front_count}")));
    }
    let mut front = Vec::with_capacity(front_count);
    for _ in 0..front_count {
        front.push(LayerScales {
            in_scale: cur.f32("front in_scale")?,
            hidden_scale: cur.f32("front hidden_scale")?,
        });
    }
    let z =
        LayerScales { in_scale: cur.f32("z in_scale")?, hidden_scale: cur.f32("z hidden_scale")? };
    let zhat_scale = cur.f32("zhat_scale")?;
    let node_count = cur.u32("node scale count")? as usize;
    if node_count > 1 << 20 {
        return Err(invalid_data(format!("QNT8: implausible node scale count {node_count}")));
    }
    let mut node_hidden = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        node_hidden.push(cur.f32("node hidden_scale")?);
    }
    cur.finish()?;
    let schedule = QuantSchedule { front, z, zhat_scale, node_hidden };
    schedule.validate().map_err(|e| invalid_data(format!("QNT8: {e}")))?;
    Ok(schedule)
}

/// Reconstructs a [`QuantizedStHybrid`] from a `.thnt2` artifact carrying a
/// `QNT8` schedule section. The schedule is cross-validated against the
/// decoded weights — a schedule whose layer counts do not match the packed
/// engine is rejected, matching the loader's everything-validated contract.
///
/// # Errors
///
/// Returns `InvalidData` on any malformed artifact, a missing `QNT8`
/// section, or a schedule/weight mismatch.
pub fn load_quantized_thnt2<R: Read>(
    reader: R,
) -> io::Result<(QuantizedStHybrid, Option<InferenceMeta>)> {
    let mut sections = SectionReader::read_from(reader)?;
    let front = sections
        .take(TAG_FRONT)
        .ok_or_else(|| invalid_data("artifact is missing the FRNT section"))?;
    let tree = sections
        .take(TAG_TREE)
        .ok_or_else(|| invalid_data("artifact is missing the TREE section"))?;
    let quant = sections
        .take(TAG_QUANT)
        .ok_or_else(|| invalid_data("artifact is missing the QNT8 section"))?;
    let meta = sections.take(TAG_META).map(decode_meta).transpose()?;
    let engine = PackedStHybrid { front: decode_front(front)?, tree: decode_tree(tree)? };
    let schedule = decode_schedule(quant)?;
    let quantized = QuantizedStHybrid::compile(&engine, schedule)
        .map_err(|e| invalid_data(format!("QNT8: {e}")))?;
    Ok((quantized, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HybridConfig;
    use crate::engine::PackedStHybrid;
    use crate::st_hybrid::StHybridNet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use thnt_nn::Model;
    use thnt_strassen::Strassenified;

    fn tiny_engine(seed: u64) -> (StHybridNet, PackedStHybrid) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = StHybridNet::new(
            HybridConfig {
                ds_blocks: 1,
                width: 8,
                proj_dim: 6,
                tree_depth: 1,
                ..HybridConfig::paper()
            },
            &mut rng,
        );
        net.activate_quantization();
        net.freeze_ternary();
        let engine = PackedStHybrid::compile(&net);
        (net, engine)
    }

    fn paper_meta() -> InferenceMeta {
        InferenceMeta {
            mfcc: MfccConfig::paper(),
            norm_mean: vec![0.25; 10],
            norm_std: vec![1.5; 10],
        }
    }

    #[test]
    fn roundtrip_is_bitwise_identical() {
        let (_, engine) = tiny_engine(0);
        let mut blob = Vec::new();
        engine.save(Some(&paper_meta()), &mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert_eq!(meta.unwrap(), paper_meta());
    }

    #[test]
    fn roundtrip_without_meta() {
        let (_, engine) = tiny_engine(1);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert!(meta.is_none());
    }

    #[test]
    fn reloaded_engine_matches_dense_forward() {
        let (mut net, engine) = tiny_engine(2);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let (reloaded, _) = PackedStHybrid::load(blob.as_slice()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let x = thnt_tensor::gaussian(&[2, 1, 49, 10], 0.0, 1.0, &mut rng);
        let dense = net.forward(&x, false);
        let got = reloaded.forward(&x);
        thnt_tensor::assert_close(got.data(), dense.data(), 1e-4, 1e-4);
        assert_eq!(reloaded.adds_per_sample(), engine.adds_per_sample());
        assert_eq!(reloaded.packed_bytes(), engine.packed_bytes());
    }

    #[test]
    fn missing_sections_are_rejected() {
        let mut blob = Vec::new();
        SectionWriter::new().write_to(&mut blob).unwrap();
        let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("FRNT"), "{err}");
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let (_, engine) = tiny_engine(4);
        let mut sections = SectionWriter::new();
        sections.section(*b"XTRA").put_u32_le(42);
        *sections.section(TAG_FRONT) = encode_front(&engine.front);
        *sections.section(TAG_TREE) = encode_tree(&engine.tree);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, engine);
        assert!(meta.is_none());
    }

    #[test]
    fn inconsistent_tree_geometry_is_rejected() {
        let (_, engine) = tiny_engine(5);
        // Swap the tree's num_classes without touching the node shapes: the
        // loader must notice the W/V out-dims no longer match.
        let mut bad = engine.clone();
        bad.tree.num_classes += 1;
        let mut blob = Vec::new();
        bad.save(None, &mut blob).unwrap();
        let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meta_that_cannot_drive_the_front_end_is_rejected_at_load() {
        let (_, engine) = tiny_engine(7);
        for bad in [
            // fft_size below frame_len (would assert in Mfcc::new).
            InferenceMeta {
                mfcc: MfccConfig { fft_size: 512, ..MfccConfig::paper() },
                ..paper_meta()
            },
            // Non-power-of-two FFT.
            InferenceMeta {
                mfcc: MfccConfig { fft_size: 1000, ..MfccConfig::paper() },
                ..paper_meta()
            },
            // Inverted mel band.
            InferenceMeta {
                mfcc: MfccConfig { f_lo: 8000.0, f_hi: 20.0, ..MfccConfig::paper() },
                ..paper_meta()
            },
        ] {
            let mut blob = Vec::new();
            engine.save(Some(&bad), &mut blob).unwrap();
            let err = PackedStHybrid::load(blob.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{:?}", bad.mfcc);
        }
    }

    fn tiny_quantized(seed: u64) -> QuantizedStHybrid {
        let (_, engine) = tiny_engine(seed);
        let calib = thnt_tensor::Tensor::from_vec(
            (0..4 * 49 * 10).map(|i| ((i % 23) as f32 - 11.0) / 8.0).collect(),
            &[4, 1, 49, 10],
        );
        QuantizedStHybrid::calibrate_and_compile(
            &engine,
            &calib,
            thnt_quant::CalibrationMethod::default(),
        )
        .unwrap()
    }

    #[test]
    fn quantized_roundtrip_is_bitwise_identical() {
        let quantized = tiny_quantized(8);
        let mut blob = Vec::new();
        quantized.save(Some(&paper_meta()), &mut blob).unwrap();
        let (reloaded, meta) = QuantizedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(reloaded, quantized);
        assert_eq!(meta.unwrap().mfcc, MfccConfig::paper());
        // Round-trip losslessness includes every scale bit.
        let a: Vec<u32> = quantized.schedule().node_hidden.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u32> = reloaded.schedule().node_hidden.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn packed_loader_ignores_the_quant_section() {
        let quantized = tiny_quantized(9);
        let mut blob = Vec::new();
        quantized.save(None, &mut blob).unwrap();
        let (reloaded, _) = PackedStHybrid::load(blob.as_slice()).unwrap();
        assert_eq!(&reloaded, quantized.base());
    }

    #[test]
    fn quantized_loader_requires_the_quant_section() {
        let (_, engine) = tiny_engine(10);
        let mut blob = Vec::new();
        engine.save(None, &mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("QNT8"), "{err}");
    }

    #[test]
    fn quantized_loader_rejects_schedule_weight_mismatch() {
        // A structurally valid QNT8 section whose layer counts don't match
        // the packed weights must fail cross-validation at load.
        let quantized = tiny_quantized(11);
        let base = quantized.base();
        let mut bad = quantized.schedule().clone();
        bad.front.pop();
        let mut sections = SectionWriter::new();
        *sections.section(TAG_FRONT) = encode_front(&base.front);
        *sections.section(TAG_TREE) = encode_tree(&base.tree);
        *sections.section(TAG_QUANT) = encode_schedule(&bad);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn quantized_loader_rejects_non_positive_scales() {
        let quantized = tiny_quantized(12);
        let base = quantized.base();
        let mut bad = quantized.schedule().clone();
        bad.zhat_scale = 0.0;
        let mut sections = SectionWriter::new();
        *sections.section(TAG_FRONT) = encode_front(&base.front);
        *sections.section(TAG_TREE) = encode_tree(&base.tree);
        *sections.section(TAG_QUANT) = encode_schedule(&bad);
        let mut blob = Vec::new();
        sections.write_to(&mut blob).unwrap();
        let err = QuantizedStHybrid::load(blob.as_slice()).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn reloaded_quantized_engine_forwards_identically() {
        let quantized = tiny_quantized(13);
        let mut blob = Vec::new();
        quantized.save(None, &mut blob).unwrap();
        let (reloaded, _) = QuantizedStHybrid::load(blob.as_slice()).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let x = thnt_tensor::gaussian(&[3, 1, 49, 10], 0.0, 1.0, &mut rng);
        let a = quantized.forward(&x);
        let b = reloaded.forward(&x);
        let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }

    #[test]
    fn file_roundtrip() {
        let (_, engine) = tiny_engine(6);
        let path = std::env::temp_dir().join("thnt_artifact_test.thnt2");
        engine.save_file(Some(&paper_meta()), &path).unwrap();
        let (reloaded, meta) = PackedStHybrid::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded, engine);
        assert_eq!(meta.unwrap().mfcc, MfccConfig::paper());
    }
}
