//! The packed add-only inference engine — the deployment form of a trained
//! [`StHybridNet`].
//!
//! Training keeps every strassenified layer's ternary matrices as `f32`
//! tensors so the straight-through estimator can update their
//! full-precision shadows. At deployment none of that machinery is needed:
//! once a model is **frozen** (phase 3), its `W_b`/`W_c` matrices are
//! genuinely ternary, and this module compiles them into
//! [`thnt_strassen::PackedTernary`] bitplanes executed with the word-level
//! add-only kernels:
//!
//! * [`PackedDense`] / [`PackedConv2d`] / [`PackedDepthwise2d`] — compiled
//!   strassenified layers: a packed `W_b` application, the `r` true
//!   multiplications by `â`, and a packed `W_c` combination,
//! * [`PackedStStack`] — a compiled front-end: batch-norm layers fold into
//!   per-channel affines, ReLU and global-average-pool carry over,
//! * [`PackedBonsai`] — the compiled tree head: every node SPN packed,
//!   routing identical to the trained [`thnt_bonsai::StrassenBonsai`],
//! * [`PackedStHybrid`] — the whole model: [`PackedStHybrid::compile`] takes
//!   a frozen [`StHybridNet`] and serves batched inference through
//!   [`PackedStHybrid::forward`], matching the dense forward path to ~1e-4
//!   while storing ternary weights at 2 bits each.
//!
//! The engine compiles the *unquantized* evaluation path: activation
//! fake-quantization knobs ([`StHybridNet::set_activation_bits`] and
//! friends) must be off when compiling.

use std::borrow::Cow;

use thnt_bonsai::{StrassenBonsai, TreeTopology};
use thnt_nn::BatchNorm2d;
use thnt_strassen::{
    KernelDispatch, PackedTernary, QuantMode, StLayer, StStack, StrassenConv2d, StrassenDense,
    StrassenDepthwise2d, Strassenified,
};
use thnt_tensor::{global_avg_pool, im2col, parallel_zip_chunks, Conv2dSpec, Tensor};

use crate::st_hybrid::StHybridNet;

/// A compiled strassenified dense layer:
/// `y = W_c · (â ⊙ (W_b · x)) + bias` with both ternary matrices packed.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedDense<'a> {
    pub(crate) wb: PackedTernary<'a>,
    pub(crate) a_hat: Cow<'a, [f32]>,
    pub(crate) wc: PackedTernary<'a>,
    pub(crate) bias: Cow<'a, [f32]>,
}

impl<'a> PackedDense<'a> {
    /// Compiles a frozen [`StrassenDense`].
    ///
    /// # Panics
    ///
    /// Panics if the layer's weights are not ternary-valued (i.e. it was
    /// never frozen).
    pub fn compile(layer: &StrassenDense) -> PackedDense<'static> {
        PackedDense {
            wb: PackedTernary::from_tensor(layer.wb_values()),
            a_hat: Cow::Owned(layer.a_hat_values().data().to_vec()),
            wc: PackedTernary::from_tensor(layer.wc_values()),
            bias: Cow::Owned(layer.bias_values().data().to_vec()),
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.bias.len()
    }

    /// Batched forward: `[n, in] → [n, out]`. The only multiplications are
    /// the `r` per-sample products with `â`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in_dim]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        let r = self.a_hat.len();
        let mut hidden = self.wb.matmul(x);
        {
            let hd = hidden.data_mut();
            for s in 0..n {
                for (k, &a) in self.a_hat.iter().enumerate() {
                    hd[s * r + k] *= a;
                }
            }
        }
        let mut y = self.wc.matmul(&hidden);
        {
            let out = self.bias.len();
            let yd = y.data_mut();
            for s in 0..n {
                for (o, &b) in self.bias.iter().enumerate() {
                    yd[s * out + o] += b;
                }
            }
        }
        y
    }

    /// Additions/subtractions executed per input sample.
    pub fn adds_per_sample(&self) -> usize {
        self.wb.add_count() + self.wc.add_count()
    }

    /// Packed weight storage in bytes (bitplanes + `â` + bias as f32).
    pub fn packed_bytes(&self) -> usize {
        self.wb.packed_bytes() + self.wc.packed_bytes() + (self.a_hat.len() + self.bias.len()) * 4
    }
}

/// A compiled strassenified standard convolution.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedConv2d<'a> {
    /// Packed `[r, ic·kh·kw]` ternary conv weights applied to im2col patches.
    pub(crate) wb: PackedTernary<'a>,
    pub(crate) a_hat: Cow<'a, [f32]>,
    /// Packed `[oc, r]` ternary 1×1 combination.
    pub(crate) wc: PackedTernary<'a>,
    pub(crate) bias: Cow<'a, [f32]>,
    pub(crate) spec: Conv2dSpec,
}

impl<'a> PackedConv2d<'a> {
    /// Compiles a frozen [`StrassenConv2d`].
    ///
    /// # Panics
    ///
    /// Panics if the layer's weights are not ternary-valued, or if its
    /// hidden-activation fake-quantization is enabled (the engine compiles
    /// the unquantized evaluation path).
    pub fn compile(layer: &StrassenConv2d) -> PackedConv2d<'static> {
        assert!(
            layer.hidden_bits().is_none(),
            "packed engine compiles the unquantized path; disable hidden_bits first"
        );
        let wb = layer.wb_values();
        let r = wb.dims()[0];
        let k = wb.numel() / r;
        PackedConv2d {
            wb: PackedTernary::from_tensor(&wb.reshape(&[r, k])),
            a_hat: Cow::Owned(layer.a_hat_values().data().to_vec()),
            wc: PackedTernary::from_tensor(layer.wc_values()),
            bias: Cow::Owned(layer.bias_values().data().to_vec()),
            spec: *layer.spec(),
        }
    }

    /// Forward: `[n, ic, h, w] → [n, oc, oh, ow]` via packed
    /// `W_b · im2col(x)`, the `â` channel scale, and packed `W_c`.
    ///
    /// A single sample parallelises inside the word-level kernels; a batch
    /// parallelises across samples instead (each worker runs the serial
    /// kernels into its disjoint slice of `y`), which is how the serving
    /// layer's cross-session batches scale. Both paths produce bitwise
    /// identical outputs.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, _, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let r = self.a_hat.len();
        let oc = self.bias.len();
        let mut y = Tensor::zeros(&[n, oc, oh, ow]);
        if n == 0 || oc * spatial == 0 {
            return y;
        }
        if n == 1 {
            let mut hidden = Tensor::zeros(&[r, spatial]);
            self.forward_sample(x, 0, spatial, &mut hidden, y.data_mut(), false);
        } else {
            parallel_zip_chunks(y.data_mut(), oc * spatial, |s0, chunk| {
                // The hidden buffer is reused across this worker's samples;
                // each sample's output is written directly into its slice.
                let mut hidden = Tensor::zeros(&[r, spatial]);
                for (ds, dst) in chunk.chunks_mut(oc * spatial).enumerate() {
                    self.forward_sample(x, s0 + ds, spatial, &mut hidden, dst, true);
                }
            });
        }
        y
    }

    /// One sample of [`Self::forward`] into `dst` (`oc × spatial` floats).
    /// `serial` selects the non-parallel kernels for use inside a
    /// batch-parallel worker.
    fn forward_sample(
        &self,
        x: &Tensor,
        s: usize,
        spatial: usize,
        hidden: &mut Tensor,
        dst: &mut [f32],
        serial: bool,
    ) {
        let cols = im2col(&x.slice_batch(s), &self.spec);
        if serial {
            self.wb.matmul_rhs_into_serial(&cols, hidden.data_mut());
        } else {
            self.wb.matmul_rhs_into(&cols, hidden.data_mut());
        }
        {
            let hd = hidden.data_mut();
            for (kk, &a) in self.a_hat.iter().enumerate() {
                for v in &mut hd[kk * spatial..(kk + 1) * spatial] {
                    *v *= a;
                }
            }
        }
        if serial {
            self.wc.matmul_rhs_into_serial(hidden, dst);
        } else {
            self.wc.matmul_rhs_into(hidden, dst);
        }
        for (ch, &b) in self.bias.iter().enumerate() {
            for v in &mut dst[ch * spatial..(ch + 1) * spatial] {
                *v += b;
            }
        }
    }

    /// Additions/subtractions per input sample for an `h × w` input.
    pub fn adds_per_sample(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.spec.out_dims(h, w);
        (self.wb.add_count() + self.wc.add_count()) * oh * ow
    }

    /// Packed weight storage in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.wb.packed_bytes() + self.wc.packed_bytes() + (self.a_hat.len() + self.bias.len()) * 4
    }
}

/// A compiled strassenified depthwise convolution. The per-channel kernels
/// are tiny (`kh·kw` taps), so entries are stored as signs and executed with
/// an add/subtract tap loop that skips zeros — still multiplication-free.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedDepthwise2d<'a> {
    /// Ternary signs of `W_b`, flattened `[c·m·kh·kw]`. Like the
    /// bitplanes of [`PackedTernary`], the sign vectors are [`Cow`] slices
    /// so a zero-copy load can alias them straight out of an artifact
    /// buffer (`i8` has alignment 1, so borrowing never needs padding).
    pub(crate) wb_signs: Cow<'a, [i8]>,
    pub(crate) a_hat: Cow<'a, [f32]>,
    /// Ternary signs of the grouped `W_c`, flattened `[c·m]`.
    pub(crate) wc_signs: Cow<'a, [i8]>,
    pub(crate) bias: Cow<'a, [f32]>,
    pub(crate) spec: Conv2dSpec,
    pub(crate) channels: usize,
    pub(crate) multiplier: usize,
}

fn ternary_signs(t: &Tensor) -> Vec<i8> {
    t.data()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if v == 0.0 {
                0i8
            } else if v == 1.0 {
                1
            } else if v == -1.0 {
                -1
            } else {
                panic!("non-ternary value {v} at index {i}");
            }
        })
        .collect()
}

impl<'a> PackedDepthwise2d<'a> {
    /// Compiles a frozen [`StrassenDepthwise2d`].
    ///
    /// # Panics
    ///
    /// Panics if the layer's weights are not ternary-valued, or if its
    /// hidden-activation fake-quantization is enabled.
    pub fn compile(layer: &StrassenDepthwise2d) -> PackedDepthwise2d<'static> {
        assert!(
            layer.hidden_bits().is_none(),
            "packed engine compiles the unquantized path; disable hidden_bits first"
        );
        PackedDepthwise2d {
            wb_signs: Cow::Owned(ternary_signs(layer.wb_values())),
            a_hat: Cow::Owned(layer.a_hat_values().data().to_vec()),
            wc_signs: Cow::Owned(ternary_signs(layer.wc_values())),
            bias: Cow::Owned(layer.bias_values().data().to_vec()),
            spec: *layer.spec(),
            channels: layer.channels(),
            multiplier: layer.multiplier(),
        }
    }

    /// Copies the sign vectors into owned storage, detaching the layer from
    /// any borrowed artifact buffer.
    pub fn to_static(&self) -> PackedDepthwise2d<'static> {
        PackedDepthwise2d {
            wb_signs: Cow::Owned(self.wb_signs.to_vec()),
            a_hat: Cow::Owned(self.a_hat.to_vec()),
            wc_signs: Cow::Owned(self.wc_signs.to_vec()),
            bias: Cow::Owned(self.bias.to_vec()),
            spec: self.spec,
            channels: self.channels,
            multiplier: self.multiplier,
        }
    }

    /// Forward: `[n, c, h, w] → [n, c, oh, ow]`, additions only plus the
    /// `c·m` true multiplications by `â` per output position. Batches
    /// parallelise across samples (each worker writes its disjoint slice of
    /// the output); the per-sample arithmetic is identical either way.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (c, m) = (self.channels, self.multiplier);
        assert_eq!(x.dims()[1], c, "PackedDepthwise channel mismatch");
        let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let xd = x.data();
        let mut y = Tensor::zeros(&[n, c, oh, ow]);
        if n == 0 || c * spatial == 0 {
            return y;
        }
        if n == 1 {
            let mut hidden = vec![0.0f32; spatial];
            self.forward_sample(xd, (h, w), m, &mut hidden, y.data_mut());
        } else {
            parallel_zip_chunks(y.data_mut(), c * spatial, |s0, chunk| {
                let mut hidden = vec![0.0f32; spatial];
                for (ds, dst) in chunk.chunks_mut(c * spatial).enumerate() {
                    let s = s0 + ds;
                    let img = &xd[s * c * h * w..(s + 1) * c * h * w];
                    self.forward_sample(img, (h, w), m, &mut hidden, dst);
                }
            });
        }
        y
    }

    /// One sample of [`Self::forward`]: `img` is `[c, h, w]` flattened,
    /// `dst` its `c × spatial` output slice, `hidden` a reusable
    /// per-hidden-channel scratch.
    ///
    /// The tap loop runs through [`KernelDispatch`]'s element-wise slice
    /// family: at unit horizontal stride each tap's in-bounds output run is
    /// one contiguous `slice_add`/`slice_sub` of the input row, and the
    /// final `±â` group combine is a `slice_axpy`. Those ops are specified
    /// add-only (no FMA contraction), so every backend — and the strided
    /// scalar fallback — produces bitwise identical results.
    fn forward_sample(
        &self,
        img: &[f32],
        (h, w): (usize, usize),
        m: usize,
        hidden: &mut [f32],
        dst: &mut [f32],
    ) {
        let d = KernelDispatch::get();
        let (oh, ow) = self.spec.out_dims(h, w);
        let spatial = oh * ow;
        let (kh, kw) = (self.spec.kh, self.spec.kw);
        for ch in 0..self.channels {
            let img = &img[ch * h * w..(ch + 1) * h * w];
            let dst = &mut dst[ch * spatial..(ch + 1) * spatial];
            dst.fill(self.bias[ch]);
            for j in 0..m {
                let hc = ch * m + j;
                let wcv = self.wc_signs[hc];
                if wcv == 0 {
                    continue;
                }
                // Hidden channel: ternary depthwise taps, zeros skipped.
                hidden.fill(0.0);
                let taps = &self.wb_signs[hc * kh * kw..(hc + 1) * kh * kw];
                for ki in 0..kh {
                    for kj in 0..kw {
                        let sign = taps[ki * kw + kj];
                        if sign == 0 {
                            continue;
                        }
                        for oy in 0..oh {
                            let iy = (oy * self.spec.stride_h + ki) as isize
                                - self.spec.pad_top as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src_row = iy as usize * w;
                            if self.spec.stride_w == 1 {
                                // ix = ox + kj - pad_left must land in
                                // [0, w): one contiguous run of outputs.
                                let ox0 = self.spec.pad_left.saturating_sub(kj);
                                let ox1 = (w + self.spec.pad_left).saturating_sub(kj).min(ow);
                                if ox0 >= ox1 {
                                    continue;
                                }
                                let ix0 = ox0 + kj - self.spec.pad_left;
                                let run = ox1 - ox0;
                                let out = &mut hidden[oy * ow + ox0..oy * ow + ox1];
                                let src = &img[src_row + ix0..src_row + ix0 + run];
                                if sign > 0 {
                                    d.slice_add(out, src);
                                } else {
                                    d.slice_sub(out, src);
                                }
                            } else {
                                for ox in 0..ow {
                                    let ix = (ox * self.spec.stride_w + kj) as isize
                                        - self.spec.pad_left as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let v = img[src_row + ix as usize];
                                    if sign > 0 {
                                        hidden[oy * ow + ox] += v;
                                    } else {
                                        hidden[oy * ow + ox] -= v;
                                    }
                                }
                            }
                        }
                    }
                }
                // `â` scale folded into the ±1 group combine.
                let a = self.a_hat[hc];
                d.slice_axpy(dst, if wcv > 0 { a } else { -a }, hidden);
            }
        }
    }

    /// Additions/subtractions per input sample for an `h × w` input,
    /// counting exactly what [`Self::forward`] executes: hidden channels
    /// whose `W_c` sign is zero are skipped wholesale, and border-clipped
    /// taps contribute nothing.
    pub fn adds_per_sample(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.spec.out_dims(h, w);
        let (kh, kw) = (self.spec.kh, self.spec.kw);
        // Valid output positions per tap row/column offset.
        let valid_y: Vec<usize> = (0..kh)
            .map(|ki| {
                (0..oh)
                    .filter(|oy| {
                        let iy =
                            (oy * self.spec.stride_h + ki) as isize - self.spec.pad_top as isize;
                        iy >= 0 && iy < h as isize
                    })
                    .count()
            })
            .collect();
        let valid_x: Vec<usize> = (0..kw)
            .map(|kj| {
                (0..ow)
                    .filter(|ox| {
                        let ix =
                            (ox * self.spec.stride_w + kj) as isize - self.spec.pad_left as isize;
                        ix >= 0 && ix < w as isize
                    })
                    .count()
            })
            .collect();
        let mut total = 0usize;
        for (hc, &wcv) in self.wc_signs.iter().enumerate() {
            if wcv == 0 {
                continue;
            }
            let taps = &self.wb_signs[hc * kh * kw..(hc + 1) * kh * kw];
            for ki in 0..kh {
                for kj in 0..kw {
                    if taps[ki * kw + kj] != 0 {
                        total += valid_y[ki] * valid_x[kj];
                    }
                }
            }
            // The ±1 combine of this hidden channel into the output.
            total += oh * ow;
        }
        total
    }

    /// Packed weight storage in bytes, accounting signs at 2 bits each.
    pub fn packed_bytes(&self) -> usize {
        (self.wb_signs.len() + self.wc_signs.len()).div_ceil(4)
            + (self.a_hat.len() + self.bias.len()) * 4
    }
}

/// A folded batch-norm: per-channel `y = scale ⊙ x + shift` over
/// `[n, c, h, w]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelAffine {
    pub(crate) scale: Vec<f32>,
    pub(crate) shift: Vec<f32>,
}

impl ChannelAffine {
    /// Folds a [`BatchNorm2d`]'s running statistics into scale/shift form.
    pub fn from_batch_norm(bn: &BatchNorm2d) -> Self {
        let (scale, shift) = bn.fold_factors();
        Self { scale, shift }
    }

    /// Applies the affine in place.
    pub fn forward_in_place(&self, x: &mut Tensor) {
        let (n, c) = (x.dims()[0], x.dims()[1]);
        let plane = x.numel() / (n * c).max(1);
        let xd = x.data_mut();
        for s in 0..n {
            for ch in 0..c {
                let (sc, sh) = (self.scale[ch], self.shift[ch]);
                let start = (s * c + ch) * plane;
                for v in &mut xd[start..start + plane] {
                    *v = sc * *v + sh;
                }
            }
        }
    }
}

/// One compiled layer of the front-end stack.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedLayer<'a> {
    /// Compiled strassenified standard convolution.
    Conv(PackedConv2d<'a>),
    /// Compiled strassenified depthwise convolution.
    Depthwise(PackedDepthwise2d<'a>),
    /// Compiled strassenified dense layer.
    Dense(PackedDense<'a>),
    /// Folded batch normalisation.
    Affine(ChannelAffine),
    /// ReLU activation.
    Relu,
    /// Global average pooling `[n, c, h, w] → [n, c]`.
    GlobalAvgPool,
}

/// A compiled [`StStack`]: the deployable front-end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedStStack<'a> {
    pub(crate) layers: Vec<PackedLayer<'a>>,
}

impl<'a> PackedStStack<'a> {
    /// Compiles a frozen stack.
    ///
    /// # Panics
    ///
    /// Panics if any strassenified layer is not frozen-ternary, or if the
    /// stack's activation fake-quantization is enabled.
    pub fn compile(stack: &StStack) -> PackedStStack<'static> {
        assert!(
            stack.activation_bits().is_none(),
            "packed engine compiles the unquantized path; disable activation_bits first"
        );
        let layers = stack
            .layers()
            .iter()
            .map(|l| match l {
                StLayer::Conv(c) => PackedLayer::Conv(PackedConv2d::compile(c)),
                StLayer::Depthwise(d) => PackedLayer::Depthwise(PackedDepthwise2d::compile(d)),
                StLayer::Dense(f) => PackedLayer::Dense(PackedDense::compile(f)),
                StLayer::BatchNorm(bn) => PackedLayer::Affine(ChannelAffine::from_batch_norm(bn)),
                StLayer::Relu(_) => PackedLayer::Relu,
                StLayer::GlobalAvgPool(_) => PackedLayer::GlobalAvgPool,
            })
            .collect();
        PackedStStack { layers }
    }

    /// The compiled layers.
    pub fn layers(&self) -> &[PackedLayer<'a>] {
        &self.layers
    }

    /// Batched inference through the whole stack.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &self.layers {
            cur = match l {
                PackedLayer::Conv(c) => c.forward(&cur),
                PackedLayer::Depthwise(d) => d.forward(&cur),
                PackedLayer::Dense(f) => f.forward(&cur),
                PackedLayer::Affine(a) => {
                    a.forward_in_place(&mut cur);
                    cur
                }
                PackedLayer::Relu => {
                    cur.map_in_place(|v| v.max(0.0));
                    cur
                }
                PackedLayer::GlobalAvgPool => global_avg_pool(&cur),
            };
        }
        cur
    }
}

/// The compiled strassenified Bonsai tree head.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBonsai<'a> {
    pub(crate) z: PackedDense<'a>,
    pub(crate) theta: Vec<PackedDense<'a>>,
    pub(crate) w: Vec<PackedDense<'a>>,
    pub(crate) v: Vec<PackedDense<'a>>,
    pub(crate) topo: TreeTopology,
    pub(crate) sharpness: f32,
    pub(crate) sigma: f32,
    pub(crate) num_classes: usize,
}

impl<'a> PackedBonsai<'a> {
    /// Compiles a frozen [`StrassenBonsai`].
    ///
    /// # Panics
    ///
    /// Panics if any node SPN is not frozen-ternary.
    pub fn compile(tree: &StrassenBonsai) -> PackedBonsai<'static> {
        PackedBonsai {
            z: PackedDense::compile(tree.projection()),
            theta: tree.branch_nodes().iter().map(PackedDense::compile).collect(),
            w: tree.score_nodes().iter().map(PackedDense::compile).collect(),
            v: tree.gate_nodes().iter().map(PackedDense::compile).collect(),
            topo: *tree.topology(),
            sharpness: tree.branch_sharpness(),
            sigma: tree.config().sigma,
            num_classes: tree.config().num_classes,
        }
    }

    /// Batched inference: `[n, D] → [n, L]`, identical routing to the
    /// trained tree's evaluation path.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let n = x.dims()[0];
        let l = self.num_classes;
        let zhat = self.z.forward(x);
        let num_nodes = self.topo.num_nodes();
        let mut probs = vec![vec![0.0f32; n]; num_nodes];
        probs[0] = vec![1.0; n];
        for (j, theta) in self.theta.iter().enumerate() {
            let u = theta.forward(&zhat);
            let (lc, rc) = (self.topo.left(j), self.topo.right(j));
            for s in 0..n {
                let g = 1.0 / (1.0 + (-self.sharpness * u.data()[s]).exp());
                probs[lc][s] = probs[j][s] * (1.0 - g);
                probs[rc][s] = probs[j][s] * g;
            }
        }
        let mut y = Tensor::zeros(&[n, l]);
        for k in 0..num_nodes {
            let a = self.w[k].forward(&zhat);
            let t = self.v[k].forward(&zhat).map(|b| (self.sigma * b).tanh());
            let yd = y.data_mut();
            for s in 0..n {
                let p = probs[k][s];
                for c in 0..l {
                    yd[s * l + c] += p * a.data()[s * l + c] * t.data()[s * l + c];
                }
            }
        }
        y
    }

    /// Number of classification targets `L`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn sublayers(&self) -> impl Iterator<Item = &PackedDense<'a>> {
        std::iter::once(&self.z).chain(self.theta.iter()).chain(self.w.iter()).chain(self.v.iter())
    }
}

/// The whole compiled model: packed front-end plus packed tree.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use thnt_core::{engine::PackedStHybrid, HybridConfig, StHybridNet};
/// use thnt_nn::Model;
/// use thnt_strassen::Strassenified;
/// use thnt_tensor::Tensor;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let cfg = HybridConfig { ds_blocks: 1, width: 8, proj_dim: 6, tree_depth: 1,
///                          ..HybridConfig::paper() };
/// let mut net = StHybridNet::new(cfg, &mut rng);
/// net.activate_quantization();
/// net.freeze_ternary();
/// let engine = PackedStHybrid::compile(&net);
/// let x = Tensor::zeros(&[2, 1, 49, 10]);
/// let packed = engine.forward(&x);
/// let dense = net.forward(&x, false);
/// thnt_tensor::assert_close(packed.data(), dense.data(), 1e-4, 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedStHybrid<'a> {
    pub(crate) front: PackedStStack<'a>,
    pub(crate) tree: PackedBonsai<'a>,
}

impl<'a> PackedStHybrid<'a> {
    /// Compiles a **frozen** [`StHybridNet`] into its packed deployment
    /// form.
    ///
    /// # Panics
    ///
    /// Panics if the network is not in [`QuantMode::Frozen`] (earlier phases
    /// carry full-precision or scaled-ternary weights that cannot pack), or
    /// if any activation fake-quantization knob is enabled.
    pub fn compile(net: &StHybridNet) -> PackedStHybrid<'static> {
        assert_eq!(
            net.mode(),
            QuantMode::Frozen,
            "packed compilation requires a frozen network (run freeze_ternary first)"
        );
        PackedStHybrid {
            front: PackedStStack::compile(net.front()),
            tree: PackedBonsai::compile(net.tree()),
        }
    }

    /// Batched inference: `[n, 1, 49, 10] → [n, L]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.tree.forward(&self.front.forward(x))
    }

    /// The compiled front-end.
    pub fn front(&self) -> &PackedStStack<'a> {
        &self.front
    }

    /// The compiled tree head.
    pub fn tree(&self) -> &PackedBonsai<'a> {
        &self.tree
    }

    /// Exact additions/subtractions per sample for the paper's `49 × 10`
    /// MFCC input — the measured counterpart of the analytic
    /// [`StHybridNet::cost_report`].
    pub fn adds_per_sample(&self) -> usize {
        let (mut h, mut w) = (49usize, 10usize);
        let mut total = 0usize;
        for l in &self.front.layers {
            match l {
                PackedLayer::Conv(c) => {
                    total += c.adds_per_sample(h, w);
                    let (oh, ow) = c.spec.out_dims(h, w);
                    (h, w) = (oh, ow);
                }
                PackedLayer::Depthwise(d) => {
                    total += d.adds_per_sample(h, w);
                    let (oh, ow) = d.spec.out_dims(h, w);
                    (h, w) = (oh, ow);
                }
                PackedLayer::Dense(f) => total += f.adds_per_sample(),
                _ => {}
            }
        }
        total + self.tree.sublayers().map(PackedDense::adds_per_sample).sum::<usize>()
    }

    /// Packed model size in bytes (ternary weights at 2 bits plus the
    /// full-precision `â`/bias/affine vectors).
    pub fn packed_bytes(&self) -> usize {
        let front: usize = self
            .front
            .layers
            .iter()
            .map(|l| match l {
                PackedLayer::Conv(c) => c.packed_bytes(),
                PackedLayer::Depthwise(d) => d.packed_bytes(),
                PackedLayer::Dense(f) => f.packed_bytes(),
                PackedLayer::Affine(a) => (a.scale.len() + a.shift.len()) * 4,
                _ => 0,
            })
            .sum();
        front + self.tree.sublayers().map(PackedDense::packed_bytes).sum::<usize>()
    }

    /// Number of classification targets `L` (the logits width).
    pub fn num_classes(&self) -> usize {
        self.tree.num_classes
    }

    /// Serializes the engine as a `.thnt2` artifact (see [`crate::artifact`]
    /// for the format), optionally with the serving metadata needed to stand
    /// up a detector without the training stack.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use thnt_core::{engine::PackedStHybrid, HybridConfig, StHybridNet};
    /// use thnt_strassen::Strassenified;
    ///
    /// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    /// let cfg = HybridConfig { ds_blocks: 1, width: 8, proj_dim: 6, tree_depth: 1,
    ///                          ..HybridConfig::paper() };
    /// let mut net = StHybridNet::new(cfg, &mut rng);
    /// net.activate_quantization();
    /// net.freeze_ternary();
    /// let engine = PackedStHybrid::compile(&net);
    ///
    /// // Save to any `Write` sink; round-trips are bitwise-lossless.
    /// let mut blob = Vec::new();
    /// engine.save(None, &mut blob).unwrap();
    /// let (reloaded, meta) = PackedStHybrid::load(blob.as_slice()).unwrap();
    /// assert_eq!(reloaded, engine);
    /// assert!(meta.is_none());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: std::io::Write>(
        &self,
        meta: Option<&crate::artifact::InferenceMeta>,
        writer: W,
    ) -> std::io::Result<()> {
        crate::artifact::save_thnt2(self, meta, writer)
    }

    /// Reconstructs a packed engine (and any embedded metadata) from a
    /// `.thnt2` artifact — no `thnt-nn` model is built in the process.
    ///
    /// # Examples
    ///
    /// ```
    /// use thnt_core::engine::PackedStHybrid;
    ///
    /// // Corrupt input is an error, never a panic or a silently wrong model.
    /// assert!(PackedStHybrid::load(&b"not a thnt2 artifact"[..]).is_err());
    /// ```
    ///
    /// See [`Self::save`] for a full save → load round-trip.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformed, truncated or inconsistent
    /// artifact (the loader validates every structural invariant), or any
    /// I/O error from the reader.
    pub fn load<R: std::io::Read>(
        reader: R,
    ) -> std::io::Result<(PackedStHybrid<'static>, Option<crate::artifact::InferenceMeta>)> {
        crate::artifact::load_thnt2(reader)
    }

    /// Zero-copy counterpart of [`Self::load`]: reconstructs an engine that
    /// *borrows* its bitplanes straight out of `buf` whenever `buf` is
    /// 8-byte aligned (see [`crate::artifact::load_thnt2_ref`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::load`].
    pub fn load_ref(
        buf: &[u8],
    ) -> std::io::Result<(PackedStHybrid<'_>, Option<crate::artifact::InferenceMeta>)> {
        crate::artifact::load_thnt2_ref(buf)
    }

    /// [`Self::save`] to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save_file(
        &self,
        meta: Option<&crate::artifact::InferenceMeta>,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        self.save(meta, std::fs::File::create(path)?)
    }

    /// [`Self::load`] from a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-open/read errors and format violations.
    pub fn load_file(
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(PackedStHybrid<'static>, Option<crate::artifact::InferenceMeta>)> {
        PackedStHybrid::load(std::fs::File::open(path)?)
    }

    /// `true` iff **every** packed bitplane pair in the model borrows its
    /// words from an external buffer — i.e. the engine came out of a
    /// zero-copy [`Self::load_ref`] on an aligned buffer and no plane was
    /// copied. A compiled or [`Self::into_owned`]-converted engine returns
    /// `false`. (Depthwise sign vectors and `f32` vectors are always owned
    /// and not counted.)
    pub fn bitplanes_borrowed(&self) -> bool {
        let dense_borrowed = |d: &PackedDense<'_>| d.wb.is_borrowed() && d.wc.is_borrowed();
        self.front.layers.iter().all(|l| match l {
            PackedLayer::Conv(c) => c.wb.is_borrowed() && c.wc.is_borrowed(),
            PackedLayer::Dense(d) => dense_borrowed(d),
            _ => true,
        }) && self.tree.sublayers().all(dense_borrowed)
    }

    /// Converts into an engine that owns every weight buffer (`'static`),
    /// copying any plane that borrowed from an artifact buffer. This is how
    /// the owning loader ([`Self::load`]) detaches from its scratch buffer.
    pub fn into_owned(self) -> PackedStHybrid<'static> {
        let dense = |d: PackedDense<'a>| PackedDense {
            wb: d.wb.into_owned(),
            a_hat: Cow::Owned(d.a_hat.into_owned()),
            wc: d.wc.into_owned(),
            bias: Cow::Owned(d.bias.into_owned()),
        };
        PackedStHybrid {
            front: PackedStStack {
                layers: self
                    .front
                    .layers
                    .into_iter()
                    .map(|l| match l {
                        PackedLayer::Conv(c) => PackedLayer::Conv(PackedConv2d {
                            wb: c.wb.into_owned(),
                            a_hat: Cow::Owned(c.a_hat.into_owned()),
                            wc: c.wc.into_owned(),
                            bias: Cow::Owned(c.bias.into_owned()),
                            spec: c.spec,
                        }),
                        PackedLayer::Depthwise(d) => PackedLayer::Depthwise(PackedDepthwise2d {
                            wb_signs: Cow::Owned(d.wb_signs.into_owned()),
                            a_hat: Cow::Owned(d.a_hat.into_owned()),
                            wc_signs: Cow::Owned(d.wc_signs.into_owned()),
                            bias: Cow::Owned(d.bias.into_owned()),
                            spec: d.spec,
                            channels: d.channels,
                            multiplier: d.multiplier,
                        }),
                        PackedLayer::Dense(d) => PackedLayer::Dense(dense(d)),
                        PackedLayer::Affine(a) => PackedLayer::Affine(a),
                        PackedLayer::Relu => PackedLayer::Relu,
                        PackedLayer::GlobalAvgPool => PackedLayer::GlobalAvgPool,
                    })
                    .collect(),
            },
            tree: PackedBonsai {
                z: dense(self.tree.z),
                theta: self.tree.theta.into_iter().map(dense).collect(),
                w: self.tree.w.into_iter().map(dense).collect(),
                v: self.tree.v.into_iter().map(dense).collect(),
                topo: self.tree.topo,
                sharpness: self.tree.sharpness,
                sigma: self.tree.sigma,
                num_classes: self.tree.num_classes,
            },
        }
    }

    /// Clones into an owning (`'static`) engine without consuming `self`.
    pub fn to_static(&self) -> PackedStHybrid<'static> {
        self.clone().into_owned()
    }
}

impl thnt_nn::InferenceBackend for PackedStHybrid<'_> {
    fn infer(&self, x: &Tensor) -> Tensor {
        self.forward(x)
    }

    fn num_classes(&self) -> usize {
        PackedStHybrid::num_classes(self)
    }

    fn adds_per_sample(&self) -> u64 {
        PackedStHybrid::adds_per_sample(self) as u64
    }

    fn model_bytes(&self) -> usize {
        self.packed_bytes()
    }

    fn backend_name(&self) -> &'static str {
        "packed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HybridConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use thnt_nn::Model;

    fn frozen_net(seed: u64) -> StHybridNet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = StHybridNet::new(
            HybridConfig {
                ds_blocks: 1,
                width: 8,
                proj_dim: 6,
                tree_depth: 1,
                ..HybridConfig::paper()
            },
            &mut rng,
        );
        net.activate_quantization();
        net.freeze_ternary();
        net
    }

    #[test]
    fn packed_dense_matches_dense_layer() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut layer = StrassenDense::new(10, 7, 5, &mut rng);
        layer.activate_quantization();
        layer.freeze_ternary();
        let x = thnt_tensor::gaussian(&[3, 10], 0.0, 1.0, &mut rng);
        let want = thnt_nn::Layer::forward(&mut layer, &x, false);
        let got = PackedDense::compile(&layer).forward(&x);
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn packed_conv_matches_dense_layer() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = Conv2dSpec::same(9, 6, 3, 3, 2, 1);
        let mut layer = StrassenConv2d::new(2, 4, 5, spec, &mut rng);
        layer.activate_quantization();
        layer.freeze_ternary();
        let x = thnt_tensor::gaussian(&[2, 2, 9, 6], 0.0, 1.0, &mut rng);
        let want = thnt_nn::Layer::forward(&mut layer, &x, false);
        let got = PackedConv2d::compile(&layer).forward(&x);
        assert_eq!(got.dims(), want.dims());
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn packed_depthwise_matches_dense_layer() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = Conv2dSpec::same(6, 5, 3, 3, 1, 1);
        let mut layer = StrassenDepthwise2d::new(3, 2, spec, &mut rng);
        layer.activate_quantization();
        layer.freeze_ternary();
        let x = thnt_tensor::gaussian(&[2, 3, 6, 5], 0.0, 1.0, &mut rng);
        let want = thnt_nn::Layer::forward(&mut layer, &x, false);
        let got = PackedDepthwise2d::compile(&layer).forward(&x);
        assert_eq!(got.dims(), want.dims());
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    /// The pre-SIMD tap loop, kept verbatim as the bitwise reference for
    /// the slice-op restructuring of [`PackedDepthwise2d::forward_sample`].
    fn reference_depthwise(layer: &PackedDepthwise2d<'_>, x: &Tensor) -> Tensor {
        let (c, m) = (layer.channels, layer.multiplier);
        let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let (oh, ow) = layer.spec.out_dims(h, w);
        let spatial = oh * ow;
        let (kh, kw) = (layer.spec.kh, layer.spec.kw);
        let mut y = Tensor::zeros(&[n, c, oh, ow]);
        for s in 0..n {
            for ch in 0..c {
                let img = &x.data()[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
                let dst = &mut y.data_mut()[(s * c + ch) * spatial..(s * c + ch + 1) * spatial];
                dst.fill(layer.bias[ch]);
                for j in 0..m {
                    let hc = ch * m + j;
                    let wcv = layer.wc_signs[hc];
                    if wcv == 0 {
                        continue;
                    }
                    let mut hidden = vec![0.0f32; spatial];
                    let taps = &layer.wb_signs[hc * kh * kw..(hc + 1) * kh * kw];
                    for ki in 0..kh {
                        for kj in 0..kw {
                            let sign = taps[ki * kw + kj];
                            if sign == 0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let iy = (oy * layer.spec.stride_h + ki) as isize
                                    - layer.spec.pad_top as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for ox in 0..ow {
                                    let ix = (ox * layer.spec.stride_w + kj) as isize
                                        - layer.spec.pad_left as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let v = img[iy as usize * w + ix as usize];
                                    if sign > 0 {
                                        hidden[oy * ow + ox] += v;
                                    } else {
                                        hidden[oy * ow + ox] -= v;
                                    }
                                }
                            }
                        }
                    }
                    let a = layer.a_hat[hc];
                    for (d, &v) in dst.iter_mut().zip(hidden.iter()) {
                        *d += if wcv > 0 { a } else { -a } * v;
                    }
                }
            }
        }
        y
    }

    #[test]
    fn depthwise_slice_ops_are_bitwise_equal_to_the_tap_loop() {
        // Unit and non-unit horizontal stride, asymmetric padding, several
        // channels/multipliers: the dispatched slice-op path must reproduce
        // the original scalar tap loop bit for bit.
        let mut rng = SmallRng::seed_from_u64(17);
        for (stride_w, pad_left) in [(1usize, 1usize), (1, 0), (2, 1), (3, 2)] {
            let spec = Conv2dSpec {
                kh: 3,
                kw: 3,
                stride_h: 2,
                stride_w,
                pad_top: 1,
                pad_bottom: 0,
                pad_left,
                pad_right: 1,
            };
            let (c, m) = (3usize, 2usize);
            let layer = PackedDepthwise2d {
                wb_signs: Cow::Owned((0..c * m * 9).map(|_| rng.gen_range(-1i8..=1)).collect()),
                a_hat: (0..c * m).map(|_| rng.gen_range(0.2f32..1.5)).collect(),
                wc_signs: Cow::Owned((0..c * m).map(|_| rng.gen_range(-1i8..=1)).collect()),
                bias: (0..c).map(|_| rng.gen_range(-0.5f32..0.5)).collect(),
                spec,
                channels: c,
                multiplier: m,
            };
            let x = thnt_tensor::gaussian(&[2, c, 9, 7], 0.0, 1.0, &mut rng);
            let got = layer.forward(&x);
            let want = reference_depthwise(&layer, &x);
            assert_eq!(got.dims(), want.dims());
            let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "stride_w={stride_w} pad_left={pad_left}");
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn packed_depthwise_rejects_channel_mismatch() {
        let mut rng = SmallRng::seed_from_u64(11);
        let spec = Conv2dSpec::same(6, 5, 3, 3, 1, 1);
        let mut layer = StrassenDepthwise2d::new(3, 2, spec, &mut rng);
        layer.activate_quantization();
        layer.freeze_ternary();
        PackedDepthwise2d::compile(&layer).forward(&Tensor::zeros(&[1, 4, 6, 5]));
    }

    #[test]
    fn depthwise_adds_count_only_executed_taps() {
        // One channel, multiplier 1, 3×3 kernel with same-padding on a 4×4
        // input: a wc of 0 must zero the count; a corner tap only fires on
        // the positions where it is in bounds.
        let spec = Conv2dSpec::same(4, 4, 3, 3, 1, 1);
        let layer = PackedDepthwise2d {
            wb_signs: Cow::Owned(vec![1, 0, 0, 0, 0, 0, 0, 0, 0]), // top-left tap only
            a_hat: Cow::Owned(vec![1.0]),
            wc_signs: Cow::Owned(vec![1]),
            bias: Cow::Owned(vec![0.0]),
            spec,
            channels: 1,
            multiplier: 1,
        };
        // Tap (0,0) with pad 1 is valid on 3 of 4 rows and 3 of 4 cols,
        // plus 16 combine adds for the active hidden channel.
        assert_eq!(layer.adds_per_sample(4, 4), 3 * 3 + 16);
        let zeroed = PackedDepthwise2d { wc_signs: Cow::Owned(vec![0]), ..layer };
        assert_eq!(zeroed.adds_per_sample(4, 4), 0);
    }

    #[test]
    fn compiled_hybrid_matches_dense_forward() {
        let mut net = frozen_net(3);
        let engine = PackedStHybrid::compile(&net);
        let mut rng = SmallRng::seed_from_u64(4);
        let x = thnt_tensor::gaussian(&[3, 1, 49, 10], 0.0, 1.0, &mut rng);
        let want = net.forward(&x, false);
        let got = engine.forward(&x);
        assert_eq!(got.dims(), want.dims());
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn compiled_paper_config_matches_dense_forward() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
        net.activate_quantization();
        net.freeze_ternary();
        let engine = PackedStHybrid::compile(&net);
        let x = thnt_tensor::gaussian(&[2, 1, 49, 10], 0.0, 1.0, &mut rng);
        let want = net.forward(&x, false);
        let got = engine.forward(&x);
        thnt_tensor::assert_close(got.data(), want.data(), 1e-4, 1e-4);
    }

    #[test]
    fn compile_rejects_unfrozen_network() {
        let mut rng = SmallRng::seed_from_u64(6);
        let net = StHybridNet::new(
            HybridConfig { ds_blocks: 1, width: 8, proj_dim: 6, ..HybridConfig::paper() },
            &mut rng,
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PackedStHybrid::compile(&net)
        }));
        assert!(r.is_err(), "compile must reject a full-precision network");
    }

    #[test]
    fn add_count_stays_within_analytic_budget() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
        net.activate_quantization();
        net.freeze_ternary();
        let engine = PackedStHybrid::compile(&net);
        let measured = engine.adds_per_sample() as u64;
        let analytic = net.cost_report().adds;
        // The analytic model is a dense upper bound (it counts every ternary
        // entry as an addition); the measured count skips zeros.
        assert!(measured <= analytic, "measured {measured} > analytic {analytic}");
        assert!(measured * 4 > analytic, "measured {measured} implausibly low vs {analytic}");
    }

    #[test]
    fn packed_model_is_smaller_than_f32() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut net = StHybridNet::new(HybridConfig::paper(), &mut rng);
        net.activate_quantization();
        net.freeze_ternary();
        let engine = PackedStHybrid::compile(&net);
        let packed_kb = engine.packed_bytes() as f64 / 1024.0;
        // Paper Table 4 territory: ~15KB packed vs ~60KB dense f32.
        assert!(packed_kb < 25.0, "packed model {packed_kb:.2} KB");
    }

    #[test]
    fn batch_inference_is_consistent_with_single_sample() {
        let net = frozen_net(9);
        let engine = PackedStHybrid::compile(&net);
        let mut rng = SmallRng::seed_from_u64(10);
        let batch = thnt_tensor::gaussian(&[4, 1, 49, 10], 0.0, 1.0, &mut rng);
        let all = engine.forward(&batch);
        for s in 0..4 {
            let one = batch.slice_batch(s);
            let single =
                engine.forward(&one.reshape(&[1, one.dims()[0], one.dims()[1], one.dims()[2]]));
            thnt_tensor::assert_close(
                single.data(),
                &all.data()[s * all.dims()[1]..(s + 1) * all.dims()[1]],
                1e-5,
                1e-5,
            );
        }
    }
}
