//! Serving accounting: the exactly-reconciled [`ServerStats`] ledger,
//! per-call [`FeedReceipt`]s, per-tick [`TickReport`]s, demuxed
//! [`ServedDetection`]s, and the log₂-bucketed [`LatencyHistogram`] behind
//! the p50/p99 window-latency figures.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use crate::serve::error::SessionId;
use crate::streaming::Detection;

/// Monotonic counters over everything a server has done, exposed via
/// [`StreamServer::stats`](crate::serve::StreamServer::stats) and, per
/// model × shard cell, via
/// [`ShardedStreamServer::stats_matrix`](crate::serve::ShardedStreamServer::stats_matrix).
///
/// The counters **reconcile exactly**: every window a feed ever made due is
/// either still pending or in exactly one terminal counter, so
/// `windows_fed == windows_accounted() + pending_windows()` at every
/// quiescent point (the overload proptests assert it after every call). On
/// the sharded server the identity holds independently in every
/// model × shard cell, so summing cells along either axis — or both —
/// yields ledgers that reconcile too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Windows that became due across all feeds (before admission control).
    pub windows_fed: u64,
    /// Windows that went through inference and voted.
    pub windows_served: u64,
    /// Windows discarded by a drop policy: a
    /// [`OverflowPolicy::DropOldest`](crate::serve::OverflowPolicy::DropOldest)
    /// eviction or a
    /// [`OverflowPolicy::DropNewest`](crate::serve::OverflowPolicy::DropNewest)
    /// refusal.
    pub windows_dropped: u64,
    /// Windows discarded under
    /// [`OverflowPolicy::Reject`](crate::serve::OverflowPolicy::Reject)
    /// because the queue filled mid-call.
    pub windows_rejected: u64,
    /// Windows shed by the
    /// [`StreamServer::tick_budget`](crate::serve::StreamServer::tick_budget)
    /// latency budget.
    pub windows_shed: u64,
    /// Windows dropped because their session closed before the tick.
    pub windows_closed: u64,
    /// Windows whose logits were unusable (backend panic, wrong arity, or
    /// non-finite values): no vote, no detection, session survives.
    pub windows_quarantined: u64,
    /// Whole feed calls refused with no audio consumed
    /// ([`ServeError::NonFiniteAudio`](crate::serve::ServeError::NonFiniteAudio)
    /// or up-front
    /// [`ServeError::Backpressure`](crate::serve::ServeError::Backpressure)).
    pub rejected_feeds: u64,
    /// Backend calls that panicked or returned malformed logits, including
    /// failed single-row retries (from [`thnt_nn::IsolatedBatch`]).
    pub faulted_calls: u64,
}

impl ServerStats {
    /// Windows with a terminal fate: served, dropped, rejected, shed,
    /// closed, or quarantined. `windows_fed − windows_accounted()` is
    /// exactly the server's current pending-queue depth.
    pub fn windows_accounted(&self) -> u64 {
        self.windows_served
            + self.windows_dropped
            + self.windows_rejected
            + self.windows_shed
            + self.windows_closed
            + self.windows_quarantined
    }

    /// Adds another ledger's counters into this one — the marginalisation
    /// step that folds per-model × per-shard cells into per-shard,
    /// per-model, and aggregate ledgers. Because every counter is a
    /// monotonic sum and no window ever crosses cells, merged ledgers
    /// reconcile whenever their parts do.
    pub fn merge(&mut self, other: &ServerStats) {
        self.windows_fed += other.windows_fed;
        self.windows_served += other.windows_served;
        self.windows_dropped += other.windows_dropped;
        self.windows_rejected += other.windows_rejected;
        self.windows_shed += other.windows_shed;
        self.windows_closed += other.windows_closed;
        self.windows_quarantined += other.windows_quarantined;
        self.rejected_feeds += other.rejected_feeds;
        self.faulted_calls += other.faulted_calls;
    }
}

/// Per-call admission summary returned by
/// [`StreamServer::try_feed`](crate::serve::StreamServer::try_feed): how
/// the windows this call made due were handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedReceipt {
    /// Windows admitted to the pending queue.
    pub queued: usize,
    /// Windows discarded by the drop policies (this session's oldest under
    /// [`OverflowPolicy::DropOldest`](crate::serve::OverflowPolicy::DropOldest),
    /// the new one under
    /// [`OverflowPolicy::DropNewest`](crate::serve::OverflowPolicy::DropNewest)).
    pub dropped: usize,
    /// New windows discarded under
    /// [`OverflowPolicy::Reject`](crate::serve::OverflowPolicy::Reject)
    /// after the queue filled mid-call.
    pub rejected: usize,
}

/// Outcome of one
/// [`StreamServer::tick_report`](crate::serve::StreamServer::tick_report):
/// the detections plus the tick's share of the [`ServerStats`] movement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    /// Detections demuxed per session, in window arrival order.
    pub detections: Vec<ServedDetection>,
    /// Windows inferred and voted this tick.
    pub served: u64,
    /// Oldest windows shed up-front by the latency budget.
    pub shed: u64,
    /// Windows dropped because their session had closed.
    pub closed: u64,
    /// Windows whose logits were unusable and cast no vote.
    pub quarantined: u64,
    /// Backend calls that panicked or returned malformed logits this tick.
    pub faulted_calls: u64,
}

/// A detection demuxed back to the session that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedDetection {
    /// The session whose stream triggered the detection.
    pub session: SessionId,
    /// The detection itself, positioned in that session's stream.
    pub detection: Detection,
}

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds, so bucket 39 tops out above 9 minutes — far beyond any
/// plausible window latency.
const LATENCY_BUCKETS: usize = 40;

/// A fixed-footprint log₂ histogram of window latencies (feed-to-vote), the
/// store behind the per-shard p50/p99 figures.
///
/// Each recorded duration lands in the bucket holding its nanosecond count;
/// quantiles are answered with the bucket's upper bound, i.e. within 2× of
/// the true value — the right fidelity for load shedding and dashboards at
/// 320 bytes per shard, no allocation, and O(1) record. Histograms from
/// different shards [`merge`](Self::merge) by bucket-wise addition, which is
/// exact: the aggregate histogram equals the histogram of the union of
/// samples, so aggregate quantiles are consistent with per-shard ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; LATENCY_BUCKETS], count: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // floor(log2(ns)) for ns >= 1; 0 ns shares bucket 0 with 1 ns.
        (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds every sample of `other` into this histogram (exact: bucket-wise
    /// addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Upper bound (in ns) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 with no samples. The answer over-reports by
    /// at most 2×, never under-reports.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped to the sample count.
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) − 1 ns; the top bucket
                // is open-ended, so its bound saturates.
                return if i + 1 >= LATENCY_BUCKETS { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// The count / p50 / p99 summary served by the stats endpoints.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_ns: self.quantile_ns(0.50),
            p99_ns: self.quantile_ns(0.99),
        }
    }
}

/// Quantile summary of a [`LatencyHistogram`]: how long windows waited
/// between becoming due at feed time and casting their vote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Windows the summary covers (served windows only).
    pub count: u64,
    /// Median window latency in nanoseconds (bucket upper bound; ≤2× true).
    pub p50_ns: u64,
    /// 99th-percentile window latency in nanoseconds (bucket upper bound).
    pub p99_ns: u64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn quantiles_bound_true_values_within_2x() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(Duration::from_nanos(ns));
        }
        let p50 = h.quantile_ns(0.5);
        // True median is 400 ns; the answer must cover it without doubling
        // more than the bucket width.
        assert!((400..=799).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((100_000..200_000).contains(&p99), "p99 {p99}");
        // Quantiles are monotone in q.
        assert!(h.quantile_ns(0.1) <= p50 && p50 <= p99);
    }

    #[test]
    fn merge_equals_union_of_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for (i, ns) in [3u64, 17, 90, 1_000, 65_000, 2_000_000].iter().enumerate() {
            let d = Duration::from_nanos(*ns);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            union.record(d);
        }
        a.merge(&b);
        assert_eq!(a, union);
        assert_eq!(a.summary(), union.summary());
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_secs(3_600));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(0.0) >= 1);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn server_stats_merge_sums_every_counter() {
        let a = ServerStats {
            windows_fed: 10,
            windows_served: 4,
            windows_dropped: 1,
            windows_rejected: 1,
            windows_shed: 1,
            windows_closed: 1,
            windows_quarantined: 1,
            rejected_feeds: 2,
            faulted_calls: 3,
        };
        let mut sum = a;
        sum.merge(&a);
        assert_eq!(sum.windows_fed, 20);
        assert_eq!(sum.windows_accounted(), 2 * a.windows_accounted());
        assert_eq!(sum.rejected_feeds, 4);
        assert_eq!(sum.faulted_calls, 6);
    }
}
