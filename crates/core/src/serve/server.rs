//! The single-threaded serving core: [`StreamServer`] multiplexes many
//! audio sessions over shared backends with cross-session batched
//! inference, typed errors, bounded queues, and per-row fault isolation.
//! The sharded front-end ([`crate::serve::ShardedStreamServer`]) runs one
//! of these per worker shard.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use thnt_dsp::{Mfcc, MfccConfig};
use thnt_nn::{softmax, InferenceBackend};
use thnt_tensor::{parallel_zip_chunks, Tensor};

use crate::artifact::InferenceMeta;
use crate::serve::error::{ModelId, ServeError, SessionId};
use crate::serve::stats::{
    FeedReceipt, LatencyHistogram, LatencySummary, ServedDetection, ServerStats, TickReport,
};
use crate::streaming::{normalize_in_place, push_vote, Detection, SessionState, StreamingConfig};

/// What to do when a feed makes a window due but the session's
/// pending-window queue is already at [`StreamServer::queue_bound`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Evict the session's **oldest** queued window to admit the new one —
    /// real-time posture: fresh audio always wins, latency stays bounded.
    #[default]
    DropOldest,
    /// Discard the **new** window and keep the queue as-is — backlog
    /// posture: already-queued work is never thrown away.
    DropNewest,
    /// Refuse the whole feed call with [`ServeError::Backpressure`] when the
    /// queue is full on arrival, consuming no audio; a window that becomes
    /// due mid-call after the queue filled is discarded and counted
    /// `rejected`. The caller owns the retry. (On the sharded server
    /// admission runs on the worker thread, so the up-front refusal cannot
    /// be returned to the caller synchronously — it lands in
    /// `rejected_feeds` instead; see
    /// [`ServeConfig`](crate::serve::ServeConfig).)
    Reject,
}

/// Per-session serving state: the audio ring, the posterior vote, and the
/// session's share of the pending queue.
struct Session {
    state: SessionState,
    recent: VecDeque<Vec<f32>>,
    /// Windows this session currently has in the server's pending queue —
    /// the quantity [`StreamServer::queue_bound`] bounds.
    queued: usize,
    /// Index into the server's model registry; fixed at open.
    model: usize,
}

/// A due window snapshotted out of a session's ring, awaiting the next
/// [`StreamServer::tick`]. Carries its model index so per-model accounting
/// survives the session closing before the tick, and its due time so served
/// windows record feed-to-vote latency.
struct PendingWindow {
    session: u64,
    model: usize,
    at_sample: usize,
    queued_at: Instant,
    audio: Vec<f32>,
}

/// One registered model: the shared backend reference, its MFCC front-end
/// and normalisation statistics, the derived batch geometry, and the
/// model's own [`ServerStats`].
struct ModelEntry<'m, B: InferenceBackend + ?Sized> {
    backend: &'m B,
    mfcc: Mfcc,
    num_keywords: usize,
    norm_mean: Vec<f32>,
    norm_std: Vec<f32>,
    window_len: usize,
    frames: usize,
    coeffs: usize,
    stats: ServerStats,
}

impl<'m, B: InferenceBackend + ?Sized> ModelEntry<'m, B> {
    /// Validates and builds an entry; the panics here are the construction
    /// contract documented on [`StreamServer::new`] and
    /// [`StreamServer::register`].
    fn new(
        backend: &'m B,
        config: &StreamingConfig,
        mfcc_cfg: MfccConfig,
        norm_mean: Vec<f32>,
        norm_std: Vec<f32>,
    ) -> Self {
        assert_eq!(norm_mean.len(), mfcc_cfg.num_coeffs, "mean length mismatch");
        assert_eq!(norm_std.len(), mfcc_cfg.num_coeffs, "std length mismatch");
        let classes = backend.num_classes();
        assert!(
            classes > config.suppress_trailing,
            "backend has {classes} classes but {} are suppressed — nothing can be detected",
            config.suppress_trailing
        );
        let window_len = mfcc_cfg.sample_rate as usize;
        let frames = mfcc_cfg.num_frames(window_len);
        Self {
            backend,
            mfcc: Mfcc::new(mfcc_cfg),
            num_keywords: classes - config.suppress_trailing,
            norm_mean,
            norm_std,
            window_len,
            frames,
            coeffs: mfcc_cfg.num_coeffs,
            stats: ServerStats::default(),
        }
    }
}

/// Serves many concurrent audio sessions over one shared
/// [`InferenceBackend`] with cross-session batched inference, typed errors,
/// bounded queues, and per-row fault isolation.
///
/// # Example
///
/// ```
/// use thnt_core::serve::StreamServer;
/// use thnt_core::StreamingConfig;
/// use thnt_nn::InferenceBackend;
/// use thnt_tensor::Tensor;
///
/// struct Uniform;
/// impl InferenceBackend for Uniform {
///     fn infer(&self, x: &Tensor) -> Tensor {
///         Tensor::ones(&[x.dims()[0], 12])
///     }
///     fn num_classes(&self) -> usize { 12 }
///     fn adds_per_sample(&self) -> u64 { 0 }
///     fn model_bytes(&self) -> usize { 0 }
/// }
///
/// # fn main() -> Result<(), thnt_core::ServeError> {
/// let backend = Uniform;
/// let mut server = StreamServer::new(
///     &backend,
///     StreamingConfig::default(),
///     vec![0.0; 10],
///     vec![1.0; 10],
/// );
/// let a = server.try_open()?;
/// let b = server.try_open()?;
/// server.try_feed(a, &vec![0.0; 24_000])?;
/// server.try_feed(b, &vec![0.0; 24_000])?;
/// assert_eq!(server.pending_windows(), 4); // two due windows per session
/// let detections = server.tick(); // one batched infer for both
/// assert!(detections.is_empty()); // uniform posteriors stay sub-threshold
/// assert_eq!(server.pending_windows(), 0);
/// assert_eq!(server.stats().windows_served, 4);
/// # Ok(()) }
/// ```
pub struct StreamServer<'m, B: InferenceBackend + ?Sized> {
    /// The model registry; index 0 is the default model from construction.
    models: Vec<ModelEntry<'m, B>>,
    config: StreamingConfig,
    max_batch: usize,
    /// Per-session pending-window cap; `0` = unbounded.
    queue_bound: usize,
    overflow: OverflowPolicy,
    /// Max windows inferred per tick (the latency budget); `0` = unbounded.
    tick_budget: usize,
    /// Max concurrent sessions; `0` = unbounded.
    max_sessions: usize,
    /// Extract MFCC features across worker threads at tick time. On by
    /// default; a sharded worker turns it off so shards scale across cores
    /// instead of contending for one inner pool.
    parallel_extraction: bool,
    next_id: u64,
    sessions: HashMap<u64, Session>,
    /// Due windows in arrival order, raw audio; features are extracted at
    /// tick time.
    pending: Vec<PendingWindow>,
    stats: ServerStats,
    /// Feed-to-vote latency of served windows.
    latency: LatencyHistogram,
}

impl<'m, B: InferenceBackend + ?Sized> StreamServer<'m, B> {
    /// Creates a server around a shared backend with the paper's MFCC
    /// front-end and the training data's normalisation statistics.
    ///
    /// # Panics
    ///
    /// Panics if the statistics do not have one entry per MFCC coefficient,
    /// or if the backend's class count does not exceed
    /// [`StreamingConfig::suppress_trailing`]. (Construction validates its
    /// configuration loudly; every *serving* entry point past this is
    /// panic-free.)
    pub fn new(
        backend: &'m B,
        config: StreamingConfig,
        norm_mean: Vec<f32>,
        norm_std: Vec<f32>,
    ) -> Self {
        Self::with_mfcc(backend, config, MfccConfig::paper(), norm_mean, norm_std)
    }

    /// [`Self::new`] with an explicit MFCC configuration. The analysis
    /// window is one second of audio at the configured sample rate.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    pub fn with_mfcc(
        backend: &'m B,
        config: StreamingConfig,
        mfcc_cfg: MfccConfig,
        norm_mean: Vec<f32>,
        norm_std: Vec<f32>,
    ) -> Self {
        let entry = ModelEntry::new(backend, &config, mfcc_cfg, norm_mean, norm_std);
        Self {
            models: vec![entry],
            config,
            max_batch: 64,
            queue_bound: 0,
            overflow: OverflowPolicy::default(),
            tick_budget: 0,
            max_sessions: 0,
            parallel_extraction: true,
            next_id: 0,
            sessions: HashMap::new(),
            pending: Vec::new(),
            stats: ServerStats::default(),
            latency: LatencyHistogram::new(),
        }
    }

    /// Builds a server straight from the serving metadata embedded in a
    /// `.thnt2` artifact.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    pub fn from_meta(backend: &'m B, config: StreamingConfig, meta: &InferenceMeta) -> Self {
        Self::with_mfcc(backend, config, meta.mfcc, meta.norm_mean.clone(), meta.norm_std.clone())
    }

    /// Registers another model on this server and returns its handle.
    /// Sessions opened with [`Self::try_open_model`] against the handle are
    /// batched, inferred, and accounted separately from every other model,
    /// while sharing the server's session limits, queue bounds, and tick
    /// budget. The backend must have the same concrete type as the default
    /// model's (use `&dyn InferenceBackend` servers to mix types).
    ///
    /// # Panics
    ///
    /// Same construction contract as [`Self::new`]: the statistics must
    /// have one entry per MFCC coefficient and the backend's class count
    /// must exceed [`StreamingConfig::suppress_trailing`].
    pub fn register(
        &mut self,
        backend: &'m B,
        mfcc_cfg: MfccConfig,
        norm_mean: Vec<f32>,
        norm_std: Vec<f32>,
    ) -> ModelId {
        let entry = ModelEntry::new(backend, &self.config, mfcc_cfg, norm_mean, norm_std);
        self.models.push(entry);
        ModelId((self.models.len() - 1) as u32)
    }

    /// [`Self::register`] from the serving metadata embedded in a `.thnt2`
    /// artifact.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::register`].
    pub fn register_from_meta(&mut self, backend: &'m B, meta: &InferenceMeta) -> ModelId {
        self.register(backend, meta.mfcc, meta.norm_mean.clone(), meta.norm_std.clone())
    }

    /// The model passed at construction — the one [`Self::try_open`] binds
    /// sessions to.
    pub fn default_model(&self) -> ModelId {
        ModelId(0)
    }

    /// Number of registered models (at least one).
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Caps the number of windows per backend call in [`Self::tick`];
    /// larger pending sets are split into successive sub-batches. `0` means
    /// unbounded. Default: 64.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Caps each session's share of the pending queue at `bound` windows;
    /// overflow is resolved by the configured [`OverflowPolicy`]. `0` means
    /// unbounded (the default, matching the unhardened server).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Sets the policy applied when a due window meets a full session queue.
    /// Default: [`OverflowPolicy::DropOldest`].
    pub fn overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Caps the windows one [`Self::tick`] will infer — the deterministic
    /// latency budget. When more are pending, the **oldest** windows are
    /// shed before any feature extraction and counted in
    /// [`ServerStats::windows_shed`]. `0` means unbounded (default).
    pub fn tick_budget(mut self, budget: usize) -> Self {
        self.tick_budget = budget;
        self
    }

    /// Caps concurrent sessions; [`Self::try_open`] beyond the cap returns
    /// [`ServeError::SessionLimit`]. `0` means unbounded (default).
    pub fn max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = limit;
        self
    }

    /// Whether [`Self::tick`] extracts MFCC features across the inner
    /// worker-thread pool (the default) or serially on the calling thread.
    /// Results are bitwise identical either way — each window is extracted
    /// independently — so this is purely a scheduling choice: a
    /// [`ShardedStreamServer`](crate::serve::ShardedStreamServer) worker
    /// runs serial extraction, because its parallelism axis is shards, not
    /// windows, and N shards each spawning an inner pool would oversubscribe
    /// the cores they are meant to share.
    pub fn parallel_extraction(mut self, on: bool) -> Self {
        self.parallel_extraction = on;
        self
    }

    /// Opens a new session; its stream starts empty.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`] when a [`Self::max_sessions`] cap is set
    /// and reached.
    ///
    /// # Examples
    ///
    /// ```
    /// use thnt_core::{StreamServer, StreamingConfig};
    /// use thnt_nn::InferenceBackend;
    /// use thnt_tensor::Tensor;
    ///
    /// struct Uniform;
    /// impl InferenceBackend for Uniform {
    ///     fn infer(&self, x: &Tensor) -> Tensor { Tensor::ones(&[x.dims()[0], 12]) }
    ///     fn num_classes(&self) -> usize { 12 }
    ///     fn adds_per_sample(&self) -> u64 { 0 }
    ///     fn model_bytes(&self) -> usize { 0 }
    /// }
    ///
    /// # fn main() -> Result<(), thnt_core::ServeError> {
    /// let backend = Uniform;
    /// let mut server = StreamServer::new(
    ///     &backend, StreamingConfig::default(), vec![0.0; 10], vec![1.0; 10]);
    /// // Sessions join (and leave) freely; each gets an opaque id to feed
    /// // audio under and to match detections against.
    /// let a = server.try_open()?;
    /// let b = server.try_open()?;
    /// assert_ne!(a, b);
    /// assert_eq!(server.num_sessions(), 2);
    /// assert!(server.close(a));
    /// # Ok(()) }
    /// ```
    pub fn try_open(&mut self) -> Result<SessionId, ServeError> {
        self.try_open_model(ModelId(0))
    }

    /// Opens a new session bound to a registered model: its windows are
    /// extracted with that model's MFCC geometry, inferred by that model's
    /// backend, and accounted in that model's [`Self::stats_for`].
    /// [`Self::try_open`] is this on the [`Self::default_model`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownModel`] — `model` was never registered here.
    /// * [`ServeError::SessionLimit`] — a [`Self::max_sessions`] cap is set
    ///   and reached (the cap spans all models).
    pub fn try_open_model(&mut self, model: ModelId) -> Result<SessionId, ServeError> {
        if self.max_sessions > 0 && self.sessions.len() >= self.max_sessions {
            return Err(ServeError::SessionLimit { limit: self.max_sessions });
        }
        let id = self.next_id;
        self.admit_session(id, model)
    }

    /// Opens a session under a caller-chosen id — the sharded front-end's
    /// entry point, which assigns ids so `id % shards` names the owning
    /// shard. Fails on an unknown model or an id already in use; advances
    /// the internal id counter past `id` so mixed use with
    /// [`Self::try_open_model`] never collides.
    pub(crate) fn admit_session(
        &mut self,
        id: u64,
        model: ModelId,
    ) -> Result<SessionId, ServeError> {
        let Some(entry) = self.models.get(model.0 as usize) else {
            return Err(ServeError::UnknownModel(model));
        };
        if self.sessions.contains_key(&id) {
            return Err(ServeError::UnknownSession(SessionId(id)));
        }
        self.next_id = self.next_id.max(id + 1);
        self.sessions.insert(
            id,
            Session {
                state: SessionState::new(entry.window_len),
                recent: VecDeque::new(),
                queued: 0,
                model: model.0 as usize,
            },
        );
        Ok(SessionId(id))
    }

    /// Closes a session, dropping its buffered audio and any pending
    /// windows it had queued. Returns whether the session existed.
    pub fn close(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id.0).is_some()
    }

    /// Number of currently open sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Windows queued for the next [`Self::tick`].
    pub fn pending_windows(&self) -> usize {
        self.pending.len()
    }

    /// Number of detectable keyword classes on the default model.
    pub fn num_keywords(&self) -> usize {
        self.models[0].num_keywords
    }

    /// Number of detectable keyword classes on a registered model, or
    /// `None` for a handle this server never issued.
    pub fn num_keywords_for(&self, model: ModelId) -> Option<usize> {
        self.models.get(model.0 as usize).map(|m| m.num_keywords)
    }

    /// Lifetime counters: windows fed/served/dropped/rejected/shed/closed/
    /// quarantined, refused feeds, and faulted backend calls, aggregated
    /// over every model. See [`ServerStats`] for the exact reconciliation
    /// invariant.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// One model's share of the lifetime counters, or `None` for a handle
    /// this server never issued. Each model's stats reconcile on their own:
    /// `windows_fed == windows_accounted() + pending_windows_for(model)`,
    /// and summing every model's counters yields [`Self::stats`].
    pub fn stats_for(&self, model: ModelId) -> Option<ServerStats> {
        self.models.get(model.0 as usize).map(|m| m.stats)
    }

    /// Every model's ledger, indexed like the registry (the sharded
    /// snapshot path reads all cells at once).
    pub(crate) fn model_stats_vec(&self) -> Vec<ServerStats> {
        self.models.iter().map(|m| m.stats).collect()
    }

    /// Windows a registered model has queued for the next [`Self::tick`]
    /// (0 for a handle this server never issued).
    pub fn pending_windows_for(&self, model: ModelId) -> usize {
        self.pending.iter().filter(|w| w.model == model.0 as usize).count()
    }

    /// Feed-to-vote latency quantiles over every window this server has
    /// served: the time from a window becoming due at feed time to its vote
    /// completing in a tick.
    pub fn latency(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// The underlying latency histogram (the sharded snapshot path merges
    /// shard histograms bucket-wise).
    pub(crate) fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Feeds audio into `id`'s stream. Every window that becomes due is
    /// snapshotted and queued for the next [`Self::tick`], subject to
    /// [`Self::queue_bound`] and the [`OverflowPolicy`]; the returned
    /// [`FeedReceipt`] reports how many windows were queued, dropped, and
    /// rejected. Feeding is cheap — all feature extraction and inference
    /// happens batched in `tick`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownSession`] — `id` was never opened or is
    ///   closed.
    /// * [`ServeError::NonFiniteAudio`] — `samples` contains `NaN`/`±inf`.
    /// * [`ServeError::Backpressure`] — the policy is
    ///   [`OverflowPolicy::Reject`] and the session's queue is already full.
    ///
    /// On any error **no audio is consumed**: the session's ring and hop
    /// phase are exactly as before the call, so the caller can fix the
    /// problem and re-submit the same buffer without losing alignment.
    pub fn try_feed(&mut self, id: SessionId, samples: &[f32]) -> Result<FeedReceipt, ServeError> {
        let bound = self.queue_bound;
        let policy = self.overflow;
        let Self { config, sessions, pending, stats, models, .. } = self;
        let Some(session) = sessions.get_mut(&id.0) else {
            return Err(ServeError::UnknownSession(id));
        };
        let model = session.model;
        let mstats = &mut models[model].stats;
        if let Some(offset) = samples.iter().position(|v| !v.is_finite()) {
            stats.rejected_feeds += 1;
            mstats.rejected_feeds += 1;
            return Err(ServeError::NonFiniteAudio { session: id, offset });
        }
        if policy == OverflowPolicy::Reject && bound > 0 && session.queued >= bound {
            stats.rejected_feeds += 1;
            mstats.rejected_feeds += 1;
            return Err(ServeError::Backpressure { session: id, queued: session.queued });
        }
        let now = Instant::now();
        let mut receipt = FeedReceipt::default();
        let Session { state, queued, .. } = session;
        state.feed(samples, config.hop, |window, at_sample| {
            stats.windows_fed += 1;
            mstats.windows_fed += 1;
            if bound > 0 && *queued >= bound {
                match policy {
                    OverflowPolicy::DropOldest => {
                        // Evict this session's oldest queued window, then
                        // admit the new one: freshest audio wins.
                        if let Some(pos) = pending.iter().position(|w| w.session == id.0) {
                            pending.remove(pos);
                            *queued = queued.saturating_sub(1);
                            stats.windows_dropped += 1;
                            mstats.windows_dropped += 1;
                            receipt.dropped += 1;
                        }
                    }
                    OverflowPolicy::DropNewest => {
                        stats.windows_dropped += 1;
                        mstats.windows_dropped += 1;
                        receipt.dropped += 1;
                        return;
                    }
                    OverflowPolicy::Reject => {
                        // The queue filled mid-call (the up-front check
                        // passed); the audio is already in the ring, so the
                        // window is discarded rather than the whole call.
                        stats.windows_rejected += 1;
                        mstats.windows_rejected += 1;
                        receipt.rejected += 1;
                        return;
                    }
                }
            }
            pending.push(PendingWindow {
                session: id.0,
                model,
                at_sample,
                queued_at: now,
                audio: window.to_vec(),
            });
            *queued += 1;
            receipt.queued += 1;
        });
        Ok(receipt)
    }

    /// [`Self::tick_report`], returning just the detections. Convenient when
    /// the caller does not track overload/fault accounting per tick (the
    /// lifetime [`Self::stats`] still move).
    pub fn tick(&mut self) -> Vec<ServedDetection> {
        self.tick_report().detections
    }

    /// Serves the pending windows: sheds down to the [`Self::tick_budget`]
    /// (oldest first, before any feature extraction), extracts MFCC features
    /// (in parallel across windows unless [`Self::parallel_extraction`] is
    /// off), runs batched inference through
    /// [`InferenceBackend::infer_isolated`] (respecting [`Self::max_batch`]),
    /// quarantines windows whose logits are unusable, applies each surviving
    /// session's smoothing vote in arrival order, and returns the detections
    /// demuxed per session plus this tick's accounting.
    ///
    /// Windows whose session was closed after queueing are dropped. A
    /// backend call that panics or returns malformed logits is contained at
    /// the batch boundary: its healthy rows are recovered individually and
    /// produce exactly the logits a fault-free run would, so healthy
    /// sessions' detections are byte-identical. With no pending windows this
    /// is free and returns an empty report.
    pub fn tick_report(&mut self) -> TickReport {
        let mut report = TickReport::default();
        if self.pending.is_empty() {
            return report;
        }
        let mut pending = std::mem::take(&mut self.pending);
        // Every taken window leaves its session's queue, whatever its fate.
        for window in &pending {
            if let Some(session) = self.sessions.get_mut(&window.session) {
                session.queued = session.queued.saturating_sub(1);
            }
        }
        // A session closed between feed and tick drops its windows —
        // before extraction, so closed streams cost nothing.
        let before = pending.len();
        for window in &pending {
            if !self.sessions.contains_key(&window.session) {
                self.models[window.model].stats.windows_closed += 1;
            }
        }
        pending.retain(|w| self.sessions.contains_key(&w.session));
        report.closed = (before - pending.len()) as u64;
        self.stats.windows_closed += report.closed;
        // Latency budget: infer at most `tick_budget` windows, shedding the
        // globally oldest first — stale audio is the cheapest to lose, and
        // shedding happens before the MFCC work it saves.
        if self.tick_budget > 0 && pending.len() > self.tick_budget {
            let shed = pending.len() - self.tick_budget;
            for window in &pending[..shed] {
                self.models[window.model].stats.windows_shed += 1;
            }
            pending.drain(..shed);
            report.shed = shed as u64;
            self.stats.windows_shed += report.shed;
        }
        if pending.is_empty() {
            return report;
        }
        let k = pending.len();
        // Group the surviving windows per model, preserving arrival order
        // within each group. With one registered model (the constructor
        // default) this is the identity grouping: one batch, same
        // composition and order as the single-model server — which is why
        // the serve-equivalence and fault-injection properties carry over
        // unchanged.
        let mut order: Vec<Vec<usize>> = vec![Vec::new(); self.models.len()];
        for (w, window) in pending.iter().enumerate() {
            order[window.model].push(w);
        }
        // Per-window posterior rows, indexed like `pending`; voting below
        // runs in original arrival order across all models.
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); k];
        let mut ok = vec![false; k];
        for (m, idxs) in order.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let isolated = {
                let model = &self.models[m];
                let per = model.frames * model.coeffs;
                let mut batch = Tensor::zeros(&[idxs.len(), 1, model.frames, model.coeffs]);
                // One shared plan, one scratch per worker: each window is
                // extracted serially (the parallelism, when on, is across
                // windows) with features written straight into the batch
                // tensor. Serial and parallel extraction are bitwise
                // identical by construction — same plan, same per-window
                // arithmetic — so a sharded worker may run serial without
                // perturbing equivalence.
                let (plan, mean, std) = (model.mfcc.plan(), &model.norm_mean, &model.norm_std);
                if self.parallel_extraction {
                    parallel_zip_chunks(batch.data_mut(), per, |w0, chunk| {
                        let mut scratch = plan.scratch();
                        for (dw, row) in chunk.chunks_mut(per).enumerate() {
                            plan.compute_into(&mut scratch, &pending[idxs[w0 + dw]].audio, row);
                            normalize_in_place(row, mean, std);
                        }
                    });
                } else {
                    let mut scratch = plan.scratch();
                    for (dw, row) in batch.data_mut().chunks_mut(per).enumerate() {
                        plan.compute_into(&mut scratch, &pending[idxs[dw]].audio, row);
                        normalize_in_place(row, mean, std);
                    }
                }
                // Fault-isolated inference: a panicking / wrong-arity /
                // NaN-emitting backend call quarantines only its own rows.
                // With a healthy backend this chunks exactly like
                // `infer_chunked` and, because every row is computed
                // independently, yields byte-identical logits.
                model.backend.infer_isolated(&batch, self.max_batch)
            };
            report.faulted_calls += isolated.faulted_calls;
            self.stats.faulted_calls += isolated.faulted_calls;
            self.models[m].stats.faulted_calls += isolated.faulted_calls;
            let probs = softmax(&isolated.logits);
            for (j, &w) in idxs.iter().enumerate() {
                if isolated.ok.get(j).copied().unwrap_or(false) {
                    ok[w] = true;
                    rows[w] = probs.row(j).to_vec();
                }
            }
        }
        for (w, window) in pending.iter().enumerate() {
            if !ok[w] {
                // Unusable logits: the window casts no vote — its session's
                // smoothing history and its batch siblings are untouched.
                report.quarantined += 1;
                self.stats.windows_quarantined += 1;
                self.models[window.model].stats.windows_quarantined += 1;
                continue;
            }
            let Some(session) = self.sessions.get_mut(&window.session) else { continue };
            report.served += 1;
            self.stats.windows_served += 1;
            self.models[window.model].stats.windows_served += 1;
            self.latency.record(window.queued_at.elapsed());
            let vote = push_vote(&mut session.recent, &rows[w], self.config.smoothing);
            if let Some((best, confidence)) = vote {
                if best < self.models[window.model].num_keywords
                    && confidence >= self.config.threshold
                {
                    report.detections.push(ServedDetection {
                        session: SessionId(window.session),
                        detection: Detection {
                            class: best,
                            confidence,
                            at_sample: window.at_sample,
                        },
                    });
                }
            }
        }
        report
    }
}

impl<B: InferenceBackend + ?Sized> std::fmt::Debug for StreamServer<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamServer")
            .field("backend", &self.models[0].backend.backend_name())
            .field("models", &self.models.len())
            .field("config", &self.config)
            .field("sessions", &self.sessions.len())
            .field("pending_windows", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
// Tests may unwrap freely; the panic-free discipline covers the serving
// path above, not its assertions.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::streaming::StreamingDetector;

    /// A deterministic input-dependent stub: each logit is a fixed linear
    /// functional of the window's features, computed row by row so batching
    /// cannot change any value.
    #[derive(Debug)]
    struct Probe {
        classes: usize,
    }

    impl InferenceBackend for Probe {
        fn infer(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.numel() / n.max(1);
            let mut out = Tensor::zeros(&[n, self.classes]);
            for s in 0..n {
                let row = &x.data()[s * per..(s + 1) * per];
                for c in 0..self.classes {
                    let mut acc = 0.0f32;
                    for (i, &v) in row.iter().enumerate() {
                        // A fixed pseudo-random ±1/0 weight pattern.
                        acc += v * (((i * 31 + c * 17) % 7) as f32 - 3.0);
                    }
                    out.data_mut()[s * self.classes + c] = acc;
                }
            }
            out
        }
        fn num_classes(&self) -> usize {
            self.classes
        }
        fn adds_per_sample(&self) -> u64 {
            0
        }
        fn model_bytes(&self) -> usize {
            0
        }
    }

    /// Small MFCC config so tests stay fast in debug builds: a 2000-sample
    /// window of 8 frames.
    fn small_mfcc() -> MfccConfig {
        MfccConfig {
            sample_rate: 2_000.0,
            frame_len: 256,
            hop: 256,
            fft_size: 256,
            num_mel: 20,
            num_coeffs: 10,
            f_lo: 20.0,
            f_hi: 950.0,
            preemphasis: 0.97,
        }
    }

    fn small_config() -> StreamingConfig {
        StreamingConfig { hop: 500, smoothing: 2, threshold: 0.05, suppress_trailing: 2 }
    }

    fn small_server(backend: &Probe) -> StreamServer<'_, Probe> {
        StreamServer::with_mfcc(backend, small_config(), small_mfcc(), vec![0.0; 10], vec![1.0; 10])
    }

    fn tone(freq: f32, len: usize) -> Vec<f32> {
        (0..len).map(|t| (2.0 * std::f32::consts::PI * freq * t as f32 / 2_000.0).sin()).collect()
    }

    /// The stats invariant every test can lean on.
    fn assert_reconciled(server: &StreamServer<'_, Probe>) {
        let stats = server.stats();
        assert_eq!(
            stats.windows_fed,
            stats.windows_accounted() + server.pending_windows() as u64,
            "stats must reconcile: {stats:?}, pending {}",
            server.pending_windows()
        );
    }

    #[test]
    fn sessions_are_independent_and_match_a_detector() {
        let backend = Probe { classes: 6 };
        let cfg = small_config();
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        let b = server.try_open().unwrap();
        let stream_a = tone(130.0, 6_000);
        let stream_b = tone(400.0, 6_000);
        // Interleave uneven chunks across the two sessions.
        let mut served: HashMap<SessionId, Vec<Detection>> = HashMap::new();
        for (ca, cb) in stream_a.chunks(333).zip(stream_b.chunks(333)) {
            server.try_feed(a, ca).unwrap();
            server.try_feed(b, cb).unwrap();
            for d in server.tick() {
                served.entry(d.session).or_default().push(d.detection);
            }
        }
        for (id, stream) in [(a, &stream_a), (b, &stream_b)] {
            let mut det = StreamingDetector::with_mfcc(
                &backend,
                cfg,
                small_mfcc(),
                vec![0.0; 10],
                vec![1.0; 10],
            );
            let want = det.push(stream);
            assert_eq!(served.remove(&id).unwrap_or_default(), want, "{id}");
        }
        assert_reconciled(&server);
    }

    #[test]
    fn tick_batches_all_pending_windows() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let ids: Vec<SessionId> = (0..4).map(|_| server.try_open().unwrap()).collect();
        for &id in &ids {
            // 3000 samples: ring fills at 2000, next window at 2500, 3000.
            assert_eq!(server.try_feed(id, &tone(200.0, 3_000)).unwrap().queued, 3);
        }
        assert_eq!(server.pending_windows(), 12);
        let report = server.tick_report();
        assert_eq!(report.served, 12);
        assert_eq!(report.faulted_calls, 0);
        assert_eq!(server.pending_windows(), 0);
        assert_reconciled(&server);
    }

    #[test]
    fn closing_a_session_drops_its_pending_windows() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        let b = server.try_open().unwrap();
        server.try_feed(a, &tone(150.0, 2_500)).unwrap();
        server.try_feed(b, &tone(150.0, 2_500)).unwrap();
        assert_eq!(server.pending_windows(), 4);
        assert!(server.close(a));
        assert!(!server.close(a), "double close reports absence");
        let report = server.tick_report();
        assert!(report.detections.iter().all(|d| d.session == b), "closed session must not detect");
        assert_eq!(report.closed, 2);
        assert_eq!(server.num_sessions(), 1);
        assert_reconciled(&server);
    }

    #[test]
    fn max_batch_splits_do_not_change_results() {
        let backend = Probe { classes: 6 };
        let run = |max_batch: usize| {
            let mut server = small_server(&backend).max_batch(max_batch);
            let ids: Vec<SessionId> = (0..3).map(|_| server.try_open().unwrap()).collect();
            for (k, &id) in ids.iter().enumerate() {
                server.try_feed(id, &tone(120.0 + 90.0 * k as f32, 4_000)).unwrap();
            }
            server.tick()
        };
        let unbounded = run(0);
        assert_eq!(run(2), unbounded);
        assert_eq!(run(1), unbounded);
    }

    #[test]
    fn serial_extraction_matches_parallel_exactly() {
        let backend = Probe { classes: 6 };
        let run = |parallel: bool| {
            let mut server = small_server(&backend).parallel_extraction(parallel);
            let ids: Vec<SessionId> = (0..3).map(|_| server.try_open().unwrap()).collect();
            for (k, &id) in ids.iter().enumerate() {
                server.try_feed(id, &tone(120.0 + 90.0 * k as f32, 4_000)).unwrap();
            }
            server.tick()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn served_windows_record_latency() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        server.try_feed(a, &tone(200.0, 3_000)).unwrap();
        assert_eq!(server.latency().count, 0, "latency is recorded at vote, not feed");
        server.tick();
        let lat = server.latency();
        assert_eq!(lat.count, 3);
        assert!(lat.p50_ns > 0 && lat.p50_ns <= lat.p99_ns, "{lat:?}");
    }

    #[test]
    fn admit_session_rejects_duplicates_and_advances_ids() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let picked = server.admit_session(7, ModelId(0)).unwrap();
        assert_eq!(format!("{picked}"), "session#7");
        assert!(server.admit_session(7, ModelId(0)).is_err(), "id already in use");
        assert!(server.admit_session(3, ModelId(9)).is_err(), "unknown model");
        // try_open continues past the admitted id rather than colliding.
        let next = server.try_open().unwrap();
        assert_eq!(format!("{next}"), "session#8");
        assert_eq!(server.num_sessions(), 2);
    }

    #[test]
    fn feeding_a_closed_session_is_a_typed_error() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        server.close(a);
        assert_eq!(server.try_feed(a, &[0.0; 100]), Err(ServeError::UnknownSession(a)));
        assert_reconciled(&server);
    }

    #[test]
    fn non_finite_audio_is_rejected_without_consuming_anything() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        let mut dirty = tone(200.0, 1_000);
        dirty[700] = f32::NAN;
        assert_eq!(
            server.try_feed(a, &dirty),
            Err(ServeError::NonFiniteAudio { session: a, offset: 700 })
        );
        let mut dirty = tone(200.0, 10);
        dirty[3] = f32::INFINITY;
        assert!(server.try_feed(a, &dirty).is_err());
        assert_eq!(server.stats().rejected_feeds, 2);
        // Nothing was consumed: the clean stream that follows lines up
        // exactly as if the dirty buffers had never been offered.
        let receipt = server.try_feed(a, &tone(200.0, 2_500)).unwrap();
        assert_eq!(receipt.queued, 2); // windows at 2000 and 2500
        assert_reconciled(&server);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_windows() {
        let backend = Probe { classes: 6 };
        let mut server =
            small_server(&backend).queue_bound(2).overflow_policy(OverflowPolicy::DropOldest);
        let a = server.try_open().unwrap();
        // 4000 samples make 5 windows due (2000, 2500, 3000, 3500, 4000).
        let receipt = server.try_feed(a, &tone(180.0, 4_000)).unwrap();
        assert_eq!(receipt.queued, 5, "every window is admitted under DropOldest");
        assert_eq!(receipt.dropped, 3, "the three oldest were evicted");
        assert_eq!(server.pending_windows(), 2);
        assert_reconciled(&server);
        let report = server.tick_report();
        assert_eq!(report.served, 2);
        assert_reconciled(&server);
    }

    #[test]
    fn drop_newest_preserves_the_backlog() {
        let backend = Probe { classes: 6 };
        let mut server =
            small_server(&backend).queue_bound(2).overflow_policy(OverflowPolicy::DropNewest);
        let a = server.try_open().unwrap();
        let receipt = server.try_feed(a, &tone(180.0, 4_000)).unwrap();
        assert_eq!(receipt.queued, 2, "first two windows fill the queue");
        assert_eq!(receipt.dropped, 3, "later windows are discarded");
        assert_eq!(server.pending_windows(), 2);
        assert_reconciled(&server);
    }

    #[test]
    fn reject_refuses_up_front_and_discards_mid_call() {
        let backend = Probe { classes: 6 };
        let mut server =
            small_server(&backend).queue_bound(2).overflow_policy(OverflowPolicy::Reject);
        let a = server.try_open().unwrap();
        // The queue has space at call start, then fills mid-call: the two
        // admitted windows stand, the remaining three are rejected.
        let receipt = server.try_feed(a, &tone(180.0, 4_000)).unwrap();
        assert_eq!(receipt, FeedReceipt { queued: 2, dropped: 0, rejected: 3 });
        // Now the queue is full on arrival: the whole call is refused and
        // no audio is consumed.
        assert_eq!(
            server.try_feed(a, &tone(180.0, 500)),
            Err(ServeError::Backpressure { session: a, queued: 2 })
        );
        assert_reconciled(&server);
        // Draining the queue restores service; the refused buffer can be
        // re-submitted with the stream still aligned.
        server.tick();
        let receipt = server.try_feed(a, &tone(180.0, 500)).unwrap();
        assert_eq!(receipt.queued, 1);
        assert_reconciled(&server);
    }

    #[test]
    fn tick_budget_sheds_the_oldest_windows_first() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend).tick_budget(3);
        let a = server.try_open().unwrap();
        let b = server.try_open().unwrap();
        server.try_feed(a, &tone(180.0, 3_000)).unwrap(); // 3 windows
        server.try_feed(b, &tone(300.0, 3_000)).unwrap(); // 3 windows
        let report = server.tick_report();
        assert_eq!(report.shed, 3, "budget 3 sheds the 3 oldest of 6");
        assert_eq!(report.served, 3);
        assert_reconciled(&server);
        // The shed windows were a's entire backlog (fed first == oldest).
        let stats = server.stats();
        assert_eq!(stats.windows_shed, 3);
        assert_eq!(stats.windows_served, 3);
    }

    #[test]
    fn session_limit_bounds_try_open() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend).max_sessions(2);
        let a = server.try_open().unwrap();
        let _b = server.try_open().unwrap();
        assert_eq!(server.try_open(), Err(ServeError::SessionLimit { limit: 2 }));
        // Closing makes room again.
        server.close(a);
        assert!(server.try_open().is_ok());
    }

    #[test]
    fn serve_errors_display_their_context() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        let a = server.try_open().unwrap();
        server.close(a);
        let err = server.try_feed(a, &[0.0]).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("session#0"), "{msg}");
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let backend = Probe { classes: 6 };
        let mut server = small_server(&backend);
        assert_eq!(server.num_models(), 1);
        let err = server.try_open_model(ModelId(7)).unwrap_err();
        assert_eq!(err, ServeError::UnknownModel(ModelId(7)));
        assert!(format!("{err}").contains("model#7"), "{err}");
        assert_eq!(server.num_keywords_for(ModelId(7)), None);
        assert_eq!(server.stats_for(ModelId(7)), None);
    }

    /// Two models hosted on one server must serve exactly what two
    /// independent single-model servers would — same detections, same
    /// order per session — even with sessions interleaved at feed time.
    #[test]
    fn registry_of_two_matches_two_single_model_servers() {
        let backend_a = Probe { classes: 6 };
        let backend_b = Probe { classes: 4 };
        let mut server = small_server(&backend_a);
        let mb = server.register(&backend_b, small_mfcc(), vec![0.1; 10], vec![2.0; 10]);
        assert_eq!(server.num_models(), 2);
        assert_ne!(mb, server.default_model());
        let a = server.try_open().unwrap();
        let b = server.try_open_model(mb).unwrap();
        let stream_a = tone(130.0, 6_000);
        let stream_b = tone(400.0, 6_000);
        let mut served: HashMap<SessionId, Vec<Detection>> = HashMap::new();
        for (ca, cb) in stream_a.chunks(333).zip(stream_b.chunks(333)) {
            server.try_feed(a, ca).unwrap();
            server.try_feed(b, cb).unwrap();
            for d in server.tick() {
                served.entry(d.session).or_default().push(d.detection);
            }
        }
        let mut solo_a = small_server(&backend_a);
        let sa = solo_a.try_open().unwrap();
        let mut solo_b = StreamServer::with_mfcc(
            &backend_b,
            small_config(),
            small_mfcc(),
            vec![0.1; 10],
            vec![2.0; 10],
        );
        let sb = solo_b.try_open().unwrap();
        for (id, solo, sess, stream) in
            [(a, &mut solo_a, sa, &stream_a), (b, &mut solo_b, sb, &stream_b)]
        {
            let mut want = Vec::new();
            for chunk in stream.chunks(333) {
                solo.try_feed(sess, chunk).unwrap();
                want.extend(solo.tick().into_iter().map(|d| d.detection));
            }
            assert_eq!(served.remove(&id).unwrap_or_default(), want, "{id}");
        }
        assert_reconciled(&server);
    }

    /// The aggregate counters are exactly the sum of the per-model ones,
    /// and each model's ledger reconciles against its own pending depth.
    #[test]
    fn per_model_stats_sum_to_the_aggregate() {
        let backend_a = Probe { classes: 6 };
        let backend_b = Probe { classes: 4 };
        let mut server = small_server(&backend_a).queue_bound(2).tick_budget(3);
        let mb = server.register(&backend_b, small_mfcc(), vec![0.0; 10], vec![1.0; 10]);
        let a = server.try_open().unwrap();
        let b = server.try_open_model(mb).unwrap();
        // Overfeed both sessions so drops, sheds, and serves all occur.
        for _ in 0..3 {
            let _ = server.try_feed(a, &tone(180.0, 3_000));
            let _ = server.try_feed(b, &tone(300.0, 3_000));
            server.tick();
        }
        // Close b with windows still queued so closed-window accounting
        // lands on the right model.
        let _ = server.try_feed(b, &tone(300.0, 2_500));
        server.close(b);
        server.tick();
        let agg = server.stats();
        let pa = server.stats_for(server.default_model()).unwrap();
        let pb = server.stats_for(mb).unwrap();
        for (what, total, ma, mbv) in [
            ("fed", agg.windows_fed, pa.windows_fed, pb.windows_fed),
            ("served", agg.windows_served, pa.windows_served, pb.windows_served),
            ("dropped", agg.windows_dropped, pa.windows_dropped, pb.windows_dropped),
            ("rejected", agg.windows_rejected, pa.windows_rejected, pb.windows_rejected),
            ("shed", agg.windows_shed, pa.windows_shed, pb.windows_shed),
            ("closed", agg.windows_closed, pa.windows_closed, pb.windows_closed),
            (
                "quarantined",
                agg.windows_quarantined,
                pa.windows_quarantined,
                pb.windows_quarantined,
            ),
            ("rejected_feeds", agg.rejected_feeds, pa.rejected_feeds, pb.rejected_feeds),
            ("faulted", agg.faulted_calls, pa.faulted_calls, pb.faulted_calls),
        ] {
            assert_eq!(total, ma + mbv, "{what}: aggregate vs per-model sum");
        }
        assert!(pb.windows_closed > 0, "closing b must account its queued windows to b");
        for model in [server.default_model(), mb] {
            let s = server.stats_for(model).unwrap();
            assert_eq!(
                s.windows_fed,
                s.windows_accounted() + server.pending_windows_for(model) as u64,
                "{model} ledger must reconcile: {s:?}"
            );
        }
        assert_reconciled(&server);
    }

    /// Models with different MFCC geometries (and hence different feature
    /// widths) batch independently in one tick without interfering.
    #[test]
    fn models_with_different_geometries_batch_independently() {
        let backend_a = Probe { classes: 6 };
        let backend_b = Probe { classes: 6 };
        let mut server = small_server(&backend_a);
        let wide = MfccConfig { num_coeffs: 16, ..small_mfcc() };
        let mb = server.register(&backend_b, wide, vec![0.0; 16], vec![1.0; 16]);
        let a = server.try_open().unwrap();
        let b = server.try_open_model(mb).unwrap();
        server.try_feed(a, &tone(180.0, 2_000)).unwrap();
        server.try_feed(b, &tone(300.0, 2_000)).unwrap();
        assert_eq!(server.pending_windows_for(server.default_model()), 1);
        assert_eq!(server.pending_windows_for(mb), 1);
        let report = server.tick_report();
        assert_eq!(report.served, 2);
        assert_eq!(server.stats_for(server.default_model()).unwrap().windows_served, 1);
        assert_eq!(server.stats_for(mb).unwrap().windows_served, 1);
        assert_reconciled(&server);
    }
}
