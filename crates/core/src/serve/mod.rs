//! Multi-session batched serving: many concurrent audio streams, shared
//! inference backends — hardened to survive hostile inputs, overload, and a
//! misbehaving model, and sharded across worker threads for multi-core
//! throughput.
//!
//! [`StreamingDetector`](crate::streaming::StreamingDetector) serves one
//! stream; a deployment serves thousands. Two layers sit in between:
//!
//! * [`StreamServer`] — the single-threaded core. It owns shared
//!   [`InferenceBackend`](thnt_nn::InferenceBackend) references and
//!   multiplexes any number of independent audio **sessions** over them.
//!   Each session keeps only the cheap per-stream state
//!   ([`SessionState`](crate::streaming::SessionState) ring + posterior
//!   history); the expensive shared pieces — the MFCC extractor and the
//!   models — exist once. Feeding snapshots due windows; [`StreamServer::
//!   tick`] extracts features, runs one batched inference call per model,
//!   and demuxes detections.
//! * [`ShardedStreamServer`] — N worker threads, each owning a shard-local
//!   `StreamServer` (its slice of ring buffers and pending-window queues),
//!   fed through bounded [`crossbeam::channel`]s. Sessions pin to shards
//!   (`shard = session_id % shards`), a shard flushes a batch when it
//!   reaches [`ServeConfig::max_batch`] **or** when
//!   [`ServeConfig::flush_deadline`] elapses on a partial batch (adaptive
//!   deadline batching), and per-shard × per-model stats reconcile exactly
//!   to every marginal.
//!
//! Batching and sharding never change results: every backend row is
//! computed independently of its batch neighbours and every session is
//! served in feed order by exactly one shard, so a session served through
//! either server produces exactly the detections an independent
//! `StreamingDetector` would over the same stream — for **any** shard
//! count, batch size, or flush timing (enforced by the equivalence
//! proptests in `crates/core/tests/serve_equivalence.rs`).
//!
//! # Fault tolerance
//!
//! A multiplexed server must not be killable by one bad client, one bad
//! buffer, or one bad model call, so every entry point is **panic-free**
//! past construction:
//!
//! * **Typed errors, not panics.** Feeds and opens return [`ServeError`]
//!   for unknown/closed sessions, non-finite audio, backpressure, session
//!   limits, and unknown models.
//! * **Input hardening.** A feed buffer containing `NaN`/`±inf` is rejected
//!   atomically — no sample of it reaches the ring, the shared MFCC plan, or
//!   a batched inference that healthy sessions share.
//! * **Bounded queues.** Per-session pending-window queues are capped
//!   ([`StreamServer::queue_bound`]) with an explicit [`OverflowPolicy`];
//!   the sharded ingestion channels are bounded too
//!   ([`ServeConfig::channel_capacity`]), so overload backpressures the
//!   producer instead of growing memory.
//! * **Degraded-mode ticks.** A per-tick latency budget
//!   ([`StreamServer::tick_budget`]) deterministically sheds the oldest
//!   pending windows *before* feature extraction.
//! * **Fault isolation.** Inference runs through
//!   [`InferenceBackend::infer_isolated`](thnt_nn::InferenceBackend::infer_isolated):
//!   a backend call that panics, returns wrong-arity logits, or emits
//!   non-finite rows quarantines only the affected windows — their healthy
//!   batch siblings are recovered row-by-row and produce byte-identical
//!   detections, and on the sharded server the blast radius is further
//!   confined to the one shard that issued the call (enforced by
//!   `crates/core/tests/fault_injection.rs` and
//!   `crates/core/tests/shard_stress.rs` against `thnt_nn::FaultyBackend`).
//!
//! Every outcome is accounted: [`StreamServer::stats`] reconciles exactly —
//! `windows_fed == windows_accounted() + pending_windows()` always holds —
//! and on the sharded server the same identity holds **per model × per
//! shard cell**, so both marginals and the grand total reconcile too.

// Serving hot path: failures must surface as `ServeError` values or stats
// counters, never as panics — one bad stream must not take down the server.
// CI additionally greps every serve/*.rs non-test region for unwrap/expect/
// panic-family calls.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod error;
mod server;
mod sharded;
mod stats;

pub use error::{ModelId, ServeError, SessionId};
pub use server::{OverflowPolicy, StreamServer};
pub use sharded::{ModelSpec, ServeConfig, ShardSnapshot, ShardedStreamServer};
pub use stats::{
    FeedReceipt, LatencyHistogram, LatencySummary, ServedDetection, ServerStats, TickReport,
};
