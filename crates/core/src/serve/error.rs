//! Handles and typed errors for the serving layer: [`SessionId`],
//! [`ModelId`], and [`ServeError`] — every refusal is a recoverable value
//! scoped to one call on one session, never a panic.

#![deny(clippy::unwrap_used, clippy::expect_used)]

/// Opaque handle of one audio session on a
/// [`StreamServer`](crate::serve::StreamServer) or
/// [`ShardedStreamServer`](crate::serve::ShardedStreamServer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// Rebuilds a handle from its numeric form (crate-internal: the sharded
    /// front-end assigns ids so that `id % shards` names the owning shard).
    pub(crate) fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The numeric form of this handle (crate-internal).
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Opaque handle of one registered model on a
/// [`StreamServer`](crate::serve::StreamServer). The model passed at
/// construction is [`StreamServer::default_model`](crate::serve::StreamServer::default_model);
/// more are added with [`StreamServer::register`](crate::serve::StreamServer::register),
/// and sessions bind to one model for life via
/// [`StreamServer::try_open_model`](crate::serve::StreamServer::try_open_model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub(crate) u32);

impl ModelId {
    /// Reconstructs a handle from its wire form. Model handles cross
    /// process boundaries in multi-tenant deployments (a client names the
    /// model it wants in its open request); an id that does not name a
    /// registered model is answered with [`ServeError::UnknownModel`] by
    /// every server entry point, so forging one is safe.
    pub fn new(raw: u32) -> Self {
        ModelId(raw)
    }

    /// The wire form of this handle (inverse of [`Self::new`]).
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model#{}", self.0)
    }
}

/// Why a serving call was refused. Every variant is a recoverable
/// condition scoped to one call on one session; the server itself stays
/// fully serviceable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The session was never opened, or has been closed.
    UnknownSession(SessionId),
    /// The feed buffer contains a non-finite sample (`NaN` or `±inf`) at
    /// `offset`. The call consumed nothing: no sample reached the session's
    /// ring, so the caller may clean the buffer and re-submit it whole.
    NonFiniteAudio {
        /// The session whose feed was refused.
        session: SessionId,
        /// Index of the first non-finite sample in the submitted buffer.
        offset: usize,
    },
    /// The session's pending-window queue is full and the overflow policy is
    /// [`OverflowPolicy::Reject`](crate::serve::OverflowPolicy::Reject). The
    /// call consumed nothing; retry after a tick drains the queue.
    Backpressure {
        /// The session whose feed was refused.
        session: SessionId,
        /// Windows the session had queued when the feed arrived.
        queued: usize,
    },
    /// An open call was refused because the server is at its configured
    /// session limit.
    SessionLimit {
        /// The configured maximum number of concurrent sessions.
        limit: usize,
    },
    /// An open call named a model that was never registered on this server.
    UnknownModel(ModelId),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownSession(id) => write!(f, "{id} is unknown or closed"),
            Self::NonFiniteAudio { session, offset } => {
                write!(f, "{session}: non-finite sample at offset {offset} in feed buffer")
            }
            Self::Backpressure { session, queued } => {
                write!(f, "{session}: pending-window queue full ({queued} queued)")
            }
            Self::SessionLimit { limit } => {
                write!(f, "session limit reached ({limit} concurrent sessions)")
            }
            Self::UnknownModel(id) => write!(f, "{id} is not registered on this server"),
        }
    }
}

impl std::error::Error for ServeError {}
